"""Unified serving: one update stream, three live query types.

Run with::

    python examples/unified_service.py

The scenario the session API exists for: a service ingests one stream
of edge churn (links appearing and disappearing) while three different
consumer teams query three different maintained solutions --

* *routing* asks connectivity questions (``connected``, spanning
  forest),
* *integrity monitoring* watches bipartiteness (an odd cycle means a
  conflict in the two-sided assignment),
* *capacity planning* reads an O(alpha)-approximate maximum matching.

Without the session each team would stand up its own cluster, backend
worker fleet, and stream validator, and re-validate/re-route every
batch.  With it: one ``GraphSession``, one shared substrate, one
``ingest`` call per tick -- and a mid-stream ``checkpoint`` the service
can restore from (on any execution backend) after a restart.
"""

import os
import tempfile

from repro import GraphSession, dele, ins
from repro.analysis import print_table
from repro.streams import ChurnStream


def main() -> None:
    # Vertices 0..127 carry organic churn; 128..159 hold the curated
    # two-sided assignment the integrity monitor watches (the churn
    # generator owns its range, so the two streams never conflict).
    n, churn_n = 160, 128
    session = GraphSession(
        n,
        tasks=("connectivity", "bipartiteness", "matching"),
        seed=7,
        batch_size=16,
    )
    print(session.config.describe())
    print(f"tasks: {session.tasks}; "
          f"backend: {session.cluster.backend.describe()}\n")

    # Curated structure: links only between even and odd vertices, so
    # this part of the graph starts bipartite.
    session.ingest([(128 + 2 * i, 129 + 2 * i) for i in range(12)])
    session.ingest([(128 + 2 * i, 131 + 2 * i) for i in range(10)])
    print(f"tick 1: {session.num_edges} edges, "
          f"{session.num_components()} components, "
          f"bipartite={session.is_bipartite()}, "
          f"matching size={session.matching().size}")

    # An odd triangle among spare vertices flips the monitor; deleting
    # one triangle edge repairs it.
    session.ingest([ins(152, 153), ins(153, 154), ins(152, 154)])
    print(f"after odd triangle: bipartite={session.is_bipartite()}")
    session.ingest([dele(152, 154)])
    print(f"after repair:       bipartite={session.is_bipartite()}\n")
    assert session.is_bipartite()

    # Live churn from a generator -- ingest consumes it lazily.  As
    # organic links accumulate, the monitor eventually reports the
    # inevitable odd cycle while routing and capacity stay live.
    churn = ChurnStream(churn_n, seed=11, delete_fraction=0.35,
                        target_edges=2 * churn_n)
    for tick in range(2, 5):
        for batch in churn.batches(3, 12):
            session.ingest(batch)
        print(f"tick {tick}: {session.num_edges} edges, "
              f"{session.num_components()} components, "
              f"bipartite={session.is_bipartite()}, "
              f"matching size={session.matching().size}")

    # Operational snapshot: checkpoint, simulate a restart, restore,
    # and verify the maintained answers carried over exactly.
    path = os.path.join(tempfile.mkdtemp(prefix="repro-session-"),
                        "service.ckpt")
    session.checkpoint(path)
    restored = GraphSession.restore(path)
    assert restored.spanning_forest().edges == session.spanning_forest().edges
    assert restored.is_bipartite() == session.is_bipartite()
    assert restored.matching().size == session.matching().size
    print(f"\ncheckpoint -> restore OK ({os.path.getsize(path)} bytes, "
          f"answers identical)")

    # The merged resource view the experiment harness consumes.
    print_table(session.summary(),
                title="per-task summary (shared cluster and validator)")

    # Fleet health: zeros on the sequential backend; under
    # shared_memory it counts worker respawns / dispatch retries /
    # degrades the supervisor performed (also in report()'s "fleet"
    # column, per phase).
    health = session.fleet_health()
    print(f"fleet health: {health or 'no supervised fleet'}")

    session.close()
    restored.close()
    print(f"closed: {session!r}")


if __name__ == "__main__":
    main()
