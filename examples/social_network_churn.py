"""Scenario: friendship churn in a social network.

The paper's motivating workload (Section 1): a graph with heavy-tailed
degrees where millions of edges appear and disappear, processed in
batches.  We stream a power-law graph with churn through the paper's
connectivity algorithm and through the prior-work full-graph baseline,
and print the trade-off the paper proves: identical component tracking,
constant rounds for both, but ~O(n) vs Theta(n + m) total memory.

Run with::

    python examples/social_network_churn.py
"""

from repro.analysis import print_table
from repro.baselines import FullGraphConnectivity
from repro.core import MPCConnectivity
from repro.mpc import MPCConfig
from repro.streams import ChurnStream, as_batches, power_law_insertions


def main() -> None:
    n = 256
    config = MPCConfig(n=n, phi=0.5, seed=1)
    ours = MPCConnectivity(config)
    baseline = FullGraphConnectivity(MPCConfig(n=n, phi=0.5, seed=2))

    # Bootstrap: a power-law friendship graph (hubs + long tail).
    bootstrap = power_law_insertions(n, 4 * n, exponent=2.2, seed=3)
    for batch in as_batches(bootstrap, 16):
        ours.apply_batch(batch)
        baseline.apply_batch(batch)

    # Steady state: follow/unfollow churn, batched.
    churn = ChurnStream(n, seed=4, delete_fraction=0.45,
                        target_edges=4 * n)
    churn.live = set()
    # Seed the stream's view of live edges with the bootstrap graph.
    for up in bootstrap:
        churn.live.add(up.edge)

    rows = []
    for step, batch in enumerate(churn.batches(30, 12)):
        ours.apply_batch(batch)
        baseline.apply_batch(batch)
        if step % 10 == 9:
            rows.append({
                "phase": step + 1,
                "live edges": ours.num_edges,
                "components": ours.num_components(),
                "ours rounds": ours.phases[-1].rounds,
                "ours memory": ours.total_memory_words(),
                "full-graph memory": baseline.total_memory_words(),
            })
        assert ours.num_components() == baseline.num_components()

    print_table(rows, title="social churn: ours vs full-graph baseline")
    per_edge = (rows[-1]["full-graph memory"] - rows[0]["full-graph memory"]
                ) / max(1, rows[-1]["live edges"] - rows[0]["live edges"])
    print(
        "note: identical answers every phase.  Our footprint is flat in "
        "m (the polylog sketch overhead dominates at this small n), "
        f"while the baseline pays ~{per_edge:.1f} words per live edge "
        "-- at the paper's scale (trillions of edges) that linear term "
        "is the whole cost.  EXP-2 sweeps the density and shows the "
        "crossover."
    )


if __name__ == "__main__":
    main()
