"""Quickstart: a GraphSession serving three query types from one stream.

Run with::

    python examples/quickstart.py

The one-stop entry point is :class:`repro.GraphSession`: pick the
algorithms to maintain (here connectivity, exact MSF, and
bipartiteness), stream updates through ``ingest`` -- raw ``(u, v)``
pairs, ``(u, v, weight)`` triples, ``Update`` objects, or lazy
generators; batching to the model's per-phase bound is automatic --
and query any maintained solution at any time.  One simulated MPC
cluster, one execution backend, and one stream validator serve all
tasks, and every answer is bit-identical to running the standalone
algorithm classes side by side.

Choosing a backend
------------------
The simulator always *charges* MPC rounds the same way, but the sketch
work can execute on two backends (see :mod:`repro.mpc.backend`):

* ``sequential`` (default) -- everything in-process.  The right choice
  for small graphs and for this quickstart.
* ``shared_memory`` -- persistent worker processes scatter/query shards
  of the sketch pools in POSIX shared memory.  Bit-identical results;
  pays off when batches carry thousands of updates, ``n`` is large, and
  real cores are available (EXP-14 tracks the crossover).

Select it per session::

    GraphSession(n, tasks=..., backend="shared_memory",
                 backend_workers=4)

or globally via the environment (how CI runs the whole tier-1 suite on
the cluster backend)::

    REPRO_BACKEND=shared_memory REPRO_BACKEND_WORKERS=2 python ...

Six ``REPRO_BACKEND*`` knobs exist, all validated at read time -- a
garbage value raises a clear error naming the variable instead of
failing deep inside backend startup:

* ``REPRO_BACKEND`` -- backend name (``sequential`` / ``shared_memory``
  / ``shm``); unknown names raise ``ConfigurationError``.
* ``REPRO_BACKEND_WORKERS`` -- worker-process count, an integer >= 1;
  anything else (``abc``, ``-1``, ``""``) raises ``SketchError``.
* ``REPRO_BACKEND_TIMEOUT`` -- per-call deadline in seconds (positive
  number, default 120): a deadlocked or dead worker is *detected*
  within this bound instead of hanging the phase.
* ``REPRO_BACKEND_RETRIES`` -- how many times a dispatch that lost a
  worker is retried after respawning it (integer >= 0, default 2).
* ``REPRO_BACKEND_BACKOFF`` -- exponential-backoff base between those
  retries, in seconds (positive number, default 0.05).
* ``REPRO_BACKEND_FAULTS`` -- deterministic fault-injection plan for
  the worker fleet (see :mod:`repro.mpc.faults`), e.g.
  ``kill:w=1:n=3:op=apply`` or ``chaos:kill:every=400:seed=0`` -- how
  the CI chaos job proves recovery keeps the suite green.

Worker loss is no longer fatal: the supervisor respawns the dead
process, re-attaches its shard state (the shared-memory segments
survive the child), and retries the in-flight call.  If retries are
exhausted the backend *degrades* -- every later op runs in-process
through the same one-source-of-truth cores, so answers stay
bit-identical and the session keeps working; only the parallelism is
lost.  ``session.fleet_health()`` exposes the cumulative respawn /
retry / degrade counters, the ``fleet`` column of
``session.report()`` shows the per-phase deltas, and
``backend.describe()`` appends the nonzero counters (plus a
``degraded`` flag) to its summary.

On the shared-memory backend, small batches ship through preallocated
per-worker ring buffers (only a tiny ``(seq, offset, length)`` token
crosses the pipe), so fan-out latency stays flat as batches shrink --
see the wire protocol in :mod:`repro.mpc.backend`.

Choosing a kernel tier
----------------------
The sketch inner loops (field arithmetic, scatter, decode, group
merge) run on a runtime-selectable kernel tier -- see
``docs/kernels.md`` for the full grammar, the profiling hooks, and
how to add a kernel:

* ``REPRO_KERNELS`` -- ``auto`` (default: numba-compiled when numba is
  importable, else pure numpy, silently), ``numpy`` (force the
  always-available reference tier), or ``numba`` (require the compiled
  tier; raises ``SketchError`` naming the variable when numba is
  missing).  Anything else raises at read time, like the backend
  knobs.  Both tiers are bit-identical; workers re-resolve the tier
  independently at spawn.
* ``REPRO_KERNELS_PROFILE`` -- set to ``1`` to wrap every kernel and
  the parent-side dispatch sections in nanosecond accumulators,
  surfaced per phase through ``session.report()``'s backend events
  and :func:`repro.kernels.profile.counters`.
* ``REPRO_KERNELS_CHECK`` -- set to ``1`` to wrap every kernel in
  runtime dtype/range asserts generated from its
  ``@kernel_contract`` -- the dynamic twin of the static interval
  proofs (``docs/numeric-analysis.md``); a violation raises
  ``SketchError`` naming the kernel, argument, and declared bound.

The conventions above (validated env reads, segment lifecycle, status
brackets, charge accounting, ``@hot_path`` vectorization) are enforced
mechanically by ``python -m repro.lint src`` -- see
``docs/lint-rules.md`` for the rule pack and how to suppress a finding
with a justification.  The backend's crash-recovery wire protocol goes
one step further: the lint run extracts its state machine from the
source and exhaustively model-checks it against injected worker faults
(``docs/protocol-model.md``).  The kernel tiers get the same
treatment: an abstract interpreter proves every ``@kernel_contract``
overflow-free and residue-canonical per tier
(``docs/numeric-analysis.md``).
"""

from repro import GraphSession, dele, ins
from repro.analysis import connectivity_total_memory_bound, print_table


def main() -> None:
    n = 64
    with GraphSession(n, tasks=("connectivity", "msf", "bipartiteness"),
                      phi=0.5, seed=0) as session:
        print(session.config.describe())

        # Phase 1: one batch builds two separate weighted paths.  Raw
        # (u, v, weight) triples are coerced to insertions.
        session.ingest([(i, i + 1, 1.0 + i % 3) for i in range(0, 10)])
        session.ingest([(i, i + 1, 2.0) for i in range(20, 30)])

        # Phase 2: bridge them, and add a spare (non-tree) edge.
        session.ingest([(10, 20, 5.0), (0, 30, 4.0)])
        assert session.connected(0, 30)

        # Deletions (and anything non-default) use Update objects.  The
        # exact-MSF task maintains an insertion-only theorem, so queries
        # keep answering but the deletion stream must not reach it --
        # a production split would run it in its own session:
        print(f"\nbipartite so far? {session.is_bipartite()}")
        print(f"MSF weight: {session.msf_weight():.1f}")
        forest = session.spanning_forest()
        print(f"spanning forest: {len(forest.edges)} edges, "
              f"{forest.num_components} components")

        # The merged report: per-task, per-phase resources on the one
        # shared cluster ('(route)' rows are the once-per-phase shared
        # batch-routing charge).
        session.print_report()

        print_table(session.summary(),
                    title="per-task summary (one cluster, one backend)")

        conn = session.query("connectivity")
        print(f"connectivity memory: {conn.registered_memory_words()} "
              f"words (~O(n) bound at n={n}: "
              f"{int(connectivity_total_memory_bound(n))})")


def under_the_hood() -> None:
    """The low-level path the session drives for you.

    Each algorithm class can still be used standalone -- it builds its
    own cluster, validates its own stream, and exposes the same queries.
    This is the PR-3-era API, kept for single-task tools and tests.
    """
    from repro.core import MPCConnectivity
    from repro.mpc import MPCConfig

    config = MPCConfig(n=64, phi=0.5, seed=0)
    alg = MPCConnectivity(config)
    alg.apply_batch([ins(i, i + 1) for i in range(0, 10)])
    alg.apply_batch([ins(0, 5), dele(3, 4)])  # deletion -> sketch recovery
    assert alg.connected(0, 10), "the 0-5 edge bridges the split"
    print_table([m.row() for m in alg.phases],
                title="standalone connectivity (same numbers, one task)")
    print(f"execution backend: {alg.cluster.backend.describe()}")


if __name__ == "__main__":
    main()
    under_the_hood()
