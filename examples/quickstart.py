"""Quickstart: batch-dynamic connectivity on a simulated MPC cluster.

Run with::

    python examples/quickstart.py

Builds a cluster in the paper's model (local memory n^phi, ~O(n) total
memory), streams a few batches of edge insertions and deletions, and
shows the three quantities the paper is about: rounds per batch, total
memory, and the maintained spanning forest.

Choosing a backend
------------------
The simulator always *charges* MPC rounds the same way, but the sketch
work can execute on two backends (see :mod:`repro.mpc.backend`):

* ``sequential`` (default) -- everything in-process.  The right choice
  for small graphs and for this quickstart.
* ``shared_memory`` -- persistent worker processes scatter/query shards
  of the sketch pools in POSIX shared memory.  Bit-identical results;
  pays off when batches carry thousands of updates, ``n`` is large, and
  real cores are available (EXP-14 tracks the crossover).

Select it per run::

    config = MPCConfig(n=4096, backend="shared_memory",
                       backend_workers=4)
    alg = MPCConnectivity(config)   # same code, parallel execution

or globally via the environment (how CI runs the whole tier-1 suite on
the cluster backend)::

    REPRO_BACKEND=shared_memory REPRO_BACKEND_WORKERS=2 python ...
"""

from repro.analysis import connectivity_total_memory_bound, print_table
from repro.core import MPCConnectivity
from repro.mpc import MPCConfig
from repro.types import dele, ins


def main() -> None:
    n = 64
    config = MPCConfig(n=n, phi=0.5, seed=0)
    print(config.describe())

    alg = MPCConnectivity(config)

    # Phase 1: one batch builds two separate paths.
    batch1 = [ins(i, i + 1) for i in range(0, 10)]
    batch1 += [ins(i, i + 1) for i in range(20, 30)]
    metrics1 = alg.apply_batch(batch1)

    # Phase 2: bridge them, and add a spare (non-tree) edge.
    metrics2 = alg.apply_batch([ins(10, 20), ins(0, 30)])
    assert alg.connected(0, 30)

    # Phase 3: delete the bridge -- the spare edge is recovered from the
    # AGM sketches and keeps the component together.
    metrics3 = alg.apply_batch([dele(10, 20)])
    assert alg.connected(0, 30), "replacement edge reconnects the split"

    print_table(
        [m.row() for m in (metrics1, metrics2, metrics3)],
        title="per-phase resources (note: constant rounds per batch)",
    )

    forest = alg.query_spanning_forest()
    print(f"spanning forest: {len(forest.edges)} edges, "
          f"{forest.num_components} components")
    print(f"total memory: {alg.total_memory_words()} words "
          f"(~O(n) bound at n={n}: "
          f"{int(connectivity_total_memory_bound(n))})")
    print(f"deletion stats: {alg.stats}")
    print(f"execution backend: {alg.cluster.backend.describe()} "
          f"(set REPRO_BACKEND=shared_memory for worker processes)")


if __name__ == "__main__":
    main()
