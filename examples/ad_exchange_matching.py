"""Scenario: matching advertisers to slots on a streaming ad exchange.

Edges (advertiser, slot compatibilities) arrive and expire in batches;
the exchange wants a large matching at all times plus a cheap running
estimate of how large the best matching could be.  This drives all
three matching components of Section 8: greedy (insertion-only phase),
the AKLY sparsifier matcher (dynamic phase), and the Tester-based size
estimator, with the exact optimum from the blossom algorithm as the
yardstick.

Run with::

    python examples/ad_exchange_matching.py
"""

from repro.analysis import print_table
from repro.baselines import maximum_matching_size
from repro.core import (
    AKLYMatching,
    GreedyMatchingInsertOnly,
    MatchingSizeEstimator,
)
from repro.mpc import MPCConfig
from repro.streams import as_batches, planted_matching_insertions
from repro.types import dele


def main() -> None:
    n = 128
    alpha = 4.0

    # Morning: campaigns only launch (insertion-only).  A planted
    # matching of 32 pairs guarantees OPT >= 32.
    launches = planted_matching_insertions(n, size=32, noise=96, seed=1)
    greedy = GreedyMatchingInsertOnly(MPCConfig(n=n, phi=0.5, seed=2),
                                      alpha=alpha)
    estimator = MatchingSizeEstimator(MPCConfig(n=n, phi=0.5, seed=3),
                                      alpha=2.0, dynamic=False)
    matcher = AKLYMatching(MPCConfig(n=n, phi=0.5, seed=4), alpha=alpha)
    for batch in as_batches(launches, 16):
        greedy.apply_batch(batch)
        estimator.apply_batch(batch)
        matcher.apply_batch(batch)

    opt = maximum_matching_size(n, [u.edge for u in launches])
    rows = [{
        "time": "morning (insert-only)",
        "OPT": opt,
        "greedy": greedy.matching_size(),
        "AKLY": matcher.matching_size(),
        "size estimate": estimator.estimate(),
        "greedy memory": greedy.total_memory_words(),
        "AKLY memory": matcher.total_memory_words(),
    }]

    # Afternoon: a third of the campaigns expire (dynamic stream; the
    # greedy matcher cannot follow, the AKLY sparsifier can).
    expirations = [dele(u.u, u.v) for u in launches[::3]]
    for batch in as_batches(expirations, 16):
        matcher.apply_batch(batch)
    remaining = {u.edge for u in launches} - {d.edge
                                              for d in expirations}
    opt_after = maximum_matching_size(n, remaining)
    rows.append({
        "time": "afternoon (after expiry)",
        "OPT": opt_after,
        "greedy": "n/a (ins-only)",
        "AKLY": matcher.matching_size(),
        "size estimate": "n/a",
        "greedy memory": "-",
        "AKLY memory": matcher.total_memory_words(),
    })

    print_table(rows, title=f"ad exchange matching (n={n}, "
                            f"alpha={alpha})")
    matched = matcher.matching().edges
    assert all(edge in remaining for edge in matched), \
        "every reported pair must still be live"
    print(f"AKLY matching after expiry is valid: {len(matched)} pairs, "
          f"all live; OPT/alg = "
          f"{opt_after / max(1, len(matched)):.2f} (O(alpha) bound).")


if __name__ == "__main__":
    main()
