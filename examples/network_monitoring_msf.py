"""Scenario: backbone-network monitoring with spanning-forest weight.

A network operator watches link latencies evolve and wants the weight
of the minimum spanning forest -- the cost of the cheapest backbone --
continuously, without storing every link.  Insertion-only build-out
uses the exact MSF (Theorem 1.2(i)); live reweighting/decommissioning
is modelled as a dynamic stream fed to the (1+eps) approximation
(Theorem 1.2(ii)), cross-checked against the offline optimum.

Run with::

    python examples/network_monitoring_msf.py
"""

from repro.analysis import print_table
from repro.baselines import msf_weight
from repro.core import ApproxMSF, ExactMSFInsertOnly
from repro.mpc import MPCConfig
from repro.streams import ChurnStream, as_batches, weighted_insertions


def main() -> None:
    n = 96
    eps = 0.25

    # Build-out phase: links are only added; track the exact MSF.
    exact = ExactMSFInsertOnly(MPCConfig(n=n, phi=0.5, seed=1))
    build = weighted_insertions(n, 3 * n, max_weight=64, seed=2)
    for batch in as_batches(build, 12):
        exact.apply_batch(batch)
    offline = msf_weight(n, [(u.u, u.v, u.weight) for u in build])
    print(f"build-out: exact MSF weight {exact.msf_weight():.0f} "
          f"(offline optimum {offline:.0f}) -- exact, "
          f"{exact.stats['swaps']} swaps over "
          f"{len(exact.phases)} batches")

    # Live phase: links churn; track the (1+eps)-approximate weight.
    approx = ApproxMSF(MPCConfig(n=n, phi=0.5, seed=3), eps=eps,
                       max_weight=64)
    live = {}
    stream = ChurnStream(n, seed=4, delete_fraction=0.3,
                         target_edges=3 * n, weights=(1, 64))
    rows = []
    for step, batch in enumerate(stream.batches(24, 8)):
        approx.apply_batch(batch)
        for up in batch:
            if up.is_insert:
                live[up.edge] = up.weight
            else:
                live.pop(up.edge, None)
        if step % 6 == 5:
            true = msf_weight(n, [(u, v, w)
                                  for (u, v), w in live.items()])
            est = approx.weight_estimate()
            rows.append({
                "phase": step + 1,
                "links": len(live),
                "true MSF": round(true, 1),
                "estimate": round(est, 1),
                "ratio": est / true if true else 1.0,
                "rounds": approx.phases[-1].rounds,
            })
    print_table(rows, title=f"live monitoring ((1+{eps})-approx weight)")
    worst = max(row["ratio"] for row in rows)
    print(f"worst ratio {worst:.3f} <= 1+eps = {1 + eps} -- as proven.")
    forest = approx.query_forest()
    print(f"reported approximate backbone: {len(forest.edges)} links, "
          f"weight {forest.total_weight:.0f}")


if __name__ == "__main__":
    main()
