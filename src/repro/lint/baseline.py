"""Baseline files: accepted pre-existing findings that must not grow.

A baseline is a JSON file mapping finding fingerprints (rule + path +
message, line-independent) to a human note.  ``--baseline FILE``
filters matching findings out of the report; ``--write-baseline``
regenerates the file from the current run.  The repo's checked-in
``lint-baseline.json`` is empty by policy -- ``tests/test_lint.py``
asserts its entry count never grows, so new debt must be fixed or
justified inline, not baselined away silently.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Set

from repro.lint import RULE_PACK_VERSION
from repro.lint.engine import Finding


def load_baseline(path: str) -> Set[str]:
    """Fingerprints accepted by ``path`` (empty set if absent)."""
    file = Path(path)
    if not file.is_file():
        return set()
    payload = json.loads(file.read_text(encoding="utf-8"))
    return {entry["fingerprint"] for entry in payload.get("findings", [])}


def write_baseline(path: str, findings: Iterable[Finding]) -> int:
    """Write ``findings`` as the new baseline; returns the entry count."""
    entries = [
        {
            "fingerprint": f.fingerprint,
            "rule": f.rule,
            "path": f.path,
            "message": f.message,
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.rule))
    ]
    payload = {"rule_pack": RULE_PACK_VERSION, "findings": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return len(entries)
