"""A cached repo-level lint verdict for harnesses to embed.

The benchmark harness stamps every ``BENCH_ingest.json`` write with the
rule-pack version and finding count, so a perf trajectory entry also
records that the tree it measured obeyed the MPC conventions (a number
measured on a tree with unjustified hot-path loops or uncharged bulk
ops is not comparable to one that wasn't).
"""

from __future__ import annotations

from functools import lru_cache
from pathlib import Path
from typing import Dict


@lru_cache(maxsize=1)
def lint_stamp() -> Dict[str, object]:
    """Lint ``src/`` against the checked-in baseline, once per process.

    Returns ``{"rule_pack", "findings", "suppressed", "errors"}`` where
    ``findings`` is the unsuppressed/unbaselined count and ``errors``
    renders each one -- callers that gate (the benchmark conftest)
    fail fast when ``findings`` is nonzero.
    """
    from repro.lint import RULE_PACK_VERSION
    from repro.lint.engine import find_project_root, run_paths

    root = find_project_root(Path(__file__))
    baseline = root / "lint-baseline.json"
    report = run_paths(
        [str(root / "src")],
        baseline_path=str(baseline) if baseline.exists() else None,
    )
    return {
        "rule_pack": RULE_PACK_VERSION,
        "findings": len(report.findings),
        "suppressed": len(report.suppressed),
        "errors": [f.render() for f in report.findings],
    }


@lru_cache(maxsize=1)
def numeric_stamp() -> Dict[str, object]:
    """The RL013-RL016 numeric verdicts over the real kernel set.

    Returns ``{"rule_pack", "verdicts", "findings", "errors"}`` where
    ``verdicts`` counts kernel-tier proof statuses (all ``proved`` on
    a healthy tree) -- the provenance that a benchmark number was
    measured on kernels whose overflow-freedom and residue
    canonicality actually verified.
    """
    from repro.lint import RULE_PACK_VERSION
    from repro.lint.engine import find_project_root
    from repro.lint.numeric import analyze_paths

    root = find_project_root(Path(__file__))
    analysis = analyze_paths([str(root / "src" / "repro" / "kernels")])
    return {
        "rule_pack": RULE_PACK_VERSION,
        "verdicts": analysis.verdicts(),
        "findings": len(analysis.findings),
        "errors": [f.render() for f in analysis.findings],
    }
