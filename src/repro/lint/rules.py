"""The rule pack: RL000 + RL001..RL007.

Each rule is a pragmatic approximation of an invariant the repo relies
on (``docs/lint-rules.md`` spells out what it catches, why the MPC
model cares, and when to suppress).  The checks are keyed to the
patterns this codebase actually writes -- they are convention
enforcers, not general program analysis.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.lint.engine import FileContext, Finding, Rule

#: Names that count as "cleanup" when RL001 looks for a reachable
#: release on failure paths.
_CLEANUP_HINTS = ("close", "unlink", "release")

#: Backend bulk-op / query_groups-family methods RL005 requires to be
#: charged.  Kept in sync with SketchFamily's routed surface.
BULK_OPS = frozenset({
    "apply_edges_bulk", "apply_updates_bulk", "query_bulk",
    "cuts_empty_bulk", "query_iteration_bulk", "query_iteration_groups",
    "cuts_empty_groups", "scan_group", "query_groups", "update_grouped",
})

_ENV_NAME_RE = re.compile(r"\AREPRO_[A-Z][A-Z0-9_]*\Z")


def _func_name(node: ast.AST) -> Optional[str]:
    """Dotted tail of a call target: ``a.b.c(...)`` -> ``c`` etc."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _decorator_names(node) -> Set[str]:
    out: Set[str] = set()
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        name = _func_name(target)
        if name:
            out.add(name)
    return out


def _walk_functions(tree: ast.Module):
    """Yield every function/method definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _own_walk(func):
    """Walk ``func`` excluding the bodies of nested function defs, so
    findings attach to the innermost enclosing function only."""
    nested = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                and node is not func:
            for sub in ast.walk(node):
                nested.add(id(sub))
    for node in ast.walk(func):
        if id(node) not in nested:
            yield node


def _in_src(ctx: FileContext) -> bool:
    path = ctx.path
    return path.startswith("src/") or "/src/" in path


# ---------------------------------------------------------------------------
# RL000: suppression hygiene (meta rule)
# ---------------------------------------------------------------------------

class SuppressionHygiene(Rule):
    id = "RL000"
    title = "suppression-hygiene"
    rationale = ("every `# repro-lint: disable=` must carry a "
                 "`-- justification`")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for sup in ctx.suppressions:
            if sup.bare:
                yield Finding(
                    rule=self.id, path=ctx.path, line=sup.line, col=1,
                    message=("suppression without a justification; "
                             "write `# repro-lint: disable=<RULE> -- "
                             "<why this is safe>`"),
                )


# ---------------------------------------------------------------------------
# RL001: shared-memory lifecycle
# ---------------------------------------------------------------------------

class ShmLifecycle(Rule):
    id = "RL001"
    title = "shm-lifecycle"
    rationale = ("SharedMemory(create=True) must be owner-registered "
                 "and unlinkable on every exit path")

    @staticmethod
    def _creates(func) -> List[ast.Call]:
        out = []
        for node in _own_walk(func):
            if isinstance(node, ast.Call) \
                    and _func_name(node.func) == "SharedMemory":
                for kw in node.keywords:
                    if kw.arg == "create" and isinstance(kw.value,
                                                         ast.Constant) \
                            and kw.value.value is True:
                        out.append(node)
        return out

    @staticmethod
    def _binding(func, call: ast.Call):
        """The Assign statement binding ``call``, if any."""
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and node.value is call:
                return node
        return None

    @staticmethod
    def _is_registered(func, name: str, after_line: int) -> bool:
        """Is local ``name`` later stored on a tracked owner?

        Registration = assigning it into an attribute/subscript (e.g.
        ``self._status = shm``, ``self._handles[token] = shm``) or
        passing it to an ``append``/``add``/``register`` call on a
        container (``self._rings.append(shm)``).
        """
        for node in ast.walk(func):
            if getattr(node, "lineno", 0) < after_line:
                continue
            if isinstance(node, ast.Assign):
                names = {n.id for n in ast.walk(node.value)
                         if isinstance(n, ast.Name)}
                if name in names and any(
                        isinstance(t, (ast.Attribute, ast.Subscript))
                        for t in node.targets):
                    return True
            if isinstance(node, ast.Call) \
                    and _func_name(node.func) in ("append", "add",
                                                  "register"):
                for arg in node.args:
                    if isinstance(arg, ast.Name) and arg.id == name:
                        return True
        return False

    @staticmethod
    def _has_cleanup(stmts) -> bool:
        for node in stmts:
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    fname = _func_name(sub.func) or ""
                    if any(h in fname for h in _CLEANUP_HINTS):
                        return True
                if isinstance(sub, ast.Raise):
                    continue
        return False

    def _is_guarded(self, func, call: ast.Call) -> bool:
        """Some try/except-or-finally with a cleanup call covers the
        code after the creation (same enclosing function)."""
        line = call.lineno
        for node in ast.walk(func):
            if not isinstance(node, ast.Try):
                continue
            handlers = [stmt for h in node.handlers for stmt in h.body]
            cleanup = (self._has_cleanup(handlers)
                       or self._has_cleanup(node.finalbody))
            if not cleanup:
                continue
            start = node.lineno
            end = max((getattr(n, "lineno", start)
                       for n in ast.walk(node)), default=start)
            # Creation inside the guarded try body, or a guard set up
            # right after the creation to cover the tail of the
            # function (the attach_pool shape).
            if start <= line <= end or start >= line:
                return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for func in _walk_functions(ctx.tree):
            for call in self._creates(func):
                binding = self._binding(func, call)
                if binding is None:
                    yield ctx.finding(self.id, call,
                                      "SharedMemory(create=True) result "
                                      "is discarded; bind it so close/"
                                      "unlink stay reachable")
                    continue
                target = binding.targets[0]
                registered = isinstance(target,
                                        (ast.Attribute, ast.Subscript))
                if not registered and isinstance(target, ast.Name):
                    registered = self._is_registered(
                        func, target.id, call.lineno)
                if not registered:
                    yield ctx.finding(
                        self.id, call,
                        "SharedMemory(create=True) segment is never "
                        "registered with a tracked owner (self "
                        "attribute / handle table / ring list)")
                if not self._is_guarded(func, call):
                    yield ctx.finding(
                        self.id, call,
                        "no close/unlink reachable on failure exit "
                        "paths: wrap the creation (or the statements "
                        "after it) in try/except-or-finally that "
                        "releases the segment")


# ---------------------------------------------------------------------------
# RL002: spawn safety
# ---------------------------------------------------------------------------

class SpawnSafety(Rule):
    id = "RL002"
    title = "spawn-safety"
    rationale = ("types crossing into worker processes must define "
                 "__reduce__ plus a from_params-style rebuild hook")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            methods = {
                item.name
                for item in node.body
                if isinstance(item, (ast.FunctionDef,
                                     ast.AsyncFunctionDef))
            }
            marked = "spawn_safe" in _decorator_names(node)
            has_reduce = "__reduce__" in methods
            has_rebuild = ("from_params" in methods
                           or ("__getstate__" in methods
                               and "__setstate__" in methods))
            if marked:
                if not has_reduce:
                    yield ctx.finding(
                        self.id, node,
                        f"@spawn_safe class {node.name} defines no "
                        f"__reduce__; a spawned worker cannot rebuild "
                        f"it from pipe payloads")
                if not has_rebuild:
                    yield ctx.finding(
                        self.id, node,
                        f"@spawn_safe class {node.name} defines no "
                        f"from_params (or __getstate__/__setstate__) "
                        f"reconstruction hook")
            elif "/sketch/" in ctx.path and "from_params" in methods \
                    and not has_reduce:
                yield ctx.finding(
                    self.id, node,
                    f"class {node.name} ships params (from_params) but "
                    f"defines no __reduce__: it will pickle parent "
                    f"state instead of parameters across spawn")


# ---------------------------------------------------------------------------
# RL003: wire-protocol discipline
# ---------------------------------------------------------------------------

class ProtocolDiscipline(Rule):
    id = "RL003"
    title = "protocol-discipline"
    rationale = ("routed ops must be bracketed -opid/+opid in the "
                 "status slot; never touch ring state after a seq "
                 "mismatch")

    def applies(self, ctx: FileContext) -> bool:
        return ctx.path.endswith("mpc/backend.py")

    @staticmethod
    def _status_writes(func):
        """(negative_lines, positive_lines) of status-slot writes."""
        neg, pos = [], []
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign):
                continue
            target = node.targets[0]
            if not (isinstance(target, ast.Subscript)
                    and "status" in (ast.unparse(target.value)
                                     if hasattr(ast, "unparse") else "")):
                continue
            if isinstance(node.value, ast.UnaryOp) \
                    and isinstance(node.value.op, ast.USub):
                neg.append(node.lineno)
            else:
                pos.append(node.lineno)
        return neg, pos

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for func in _walk_functions(ctx.tree):
            if func.name != "_worker_main":
                continue
            # 1. The routed-op execution must sit between a -opid and a
            #    +opid status write.
            op_calls = [
                node.lineno for node in _own_walk(func)
                if isinstance(node, ast.Call)
                and _func_name(node.func) in ("run_op", "_execute_op")
            ]
            neg, pos = self._status_writes(func)
            for line in op_calls:
                if not any(n < line for n in neg) \
                        or not any(p > line for p in pos):
                    yield Finding(
                        rule=self.id, path=ctx.path, line=line, col=1,
                        message=("routed-op execution is not bracketed "
                                 "with -opid (before) / +opid (after) "
                                 "status-slot writes; the supervisor "
                                 "cannot classify a crash as "
                                 "not-started/partial/completed"))
            # 2. A handler that reports a transport desync must give up
            #    on the record entirely (end in `continue`), never fall
            #    through into ring/op state.
            for node in ast.walk(func):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                sends_desync = any(
                    isinstance(sub, ast.Constant)
                    and sub.value == "desync"
                    for sub in ast.walk(ast.Module(body=node.body,
                                                   type_ignores=[]))
                )
                if sends_desync and not isinstance(node.body[-1],
                                                   ast.Continue):
                    yield Finding(
                        rule=self.id, path=ctx.path,
                        line=node.body[-1].lineno, col=1,
                        message=("desync handler falls through into "
                                 "ring state; it must end with "
                                 "`continue` so the parent respawns "
                                 "and replays"))


# ---------------------------------------------------------------------------
# RL004: env hygiene + doc drift
# ---------------------------------------------------------------------------

class EnvHygiene(Rule):
    id = "RL004"
    title = "env-hygiene"
    rationale = ("REPRO_* env reads go through mpc/config.py readers; "
                 "every knob must be documented")

    def applies(self, ctx: FileContext) -> bool:
        return _in_src(ctx)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.path.endswith("mpc/config.py"):
            return
        for node in ast.walk(ctx.tree):
            hit = None
            if isinstance(node, ast.Attribute) \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "os" \
                    and node.attr in ("environ", "getenv"):
                hit = node
            if hit is not None:
                yield ctx.finding(
                    self.id, hit,
                    "direct os.environ/os.getenv read; route it "
                    "through the validated readers in "
                    "repro.mpc.config (read_env/env_int/env_float) so "
                    "garbage raises SketchError naming the variable")

    # -- project phase: doc drift --------------------------------------
    @staticmethod
    def _doc_text(root) -> Optional[str]:
        chunks = []
        quickstart = root / "examples" / "quickstart.py"
        if quickstart.is_file():
            chunks.append(quickstart.read_text(encoding="utf-8"))
        kernels_doc = root / "docs" / "kernels.md"
        if kernels_doc.is_file():
            chunks.append(kernels_doc.read_text(encoding="utf-8"))
        backend = root / "src" / "repro" / "mpc" / "backend.py"
        if backend.is_file():
            try:
                doc = ast.get_docstring(
                    ast.parse(backend.read_text(encoding="utf-8")))
            except SyntaxError:
                doc = None
            if doc:
                chunks.append(doc)
        return "\n".join(chunks) if chunks else None

    def check_project(self, contexts: Sequence[FileContext],
                      root) -> Iterable[Finding]:
        doc_text = self._doc_text(root)
        if doc_text is None:
            return
        seen: Dict[str, Finding] = {}
        for ctx in contexts:
            if not _in_src(ctx):
                continue
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.Constant) \
                        and isinstance(node.value, str) \
                        and _ENV_NAME_RE.match(node.value) \
                        and node.value not in seen:
                    seen[node.value] = ctx.finding(
                        self.id, node,
                        f"env knob {node.value} is referenced in src/ "
                        f"but documented in neither the quickstart nor "
                        f"the backend docstring (doc drift)")
        for name, finding in sorted(seen.items()):
            if name not in doc_text:
                yield finding


# ---------------------------------------------------------------------------
# RL005: charge accounting
# ---------------------------------------------------------------------------

class ChargeAccounting(Rule):
    id = "RL005"
    title = "charge-accounting"
    rationale = ("bulk ops in core/baselines drivers must pair with a "
                 "charge_* call in the same phase scope")

    def applies(self, ctx: FileContext) -> bool:
        return _in_src(ctx) and ("/core/" in ctx.path
                                 or "/baselines/" in ctx.path)

    @staticmethod
    def _uses_cluster(cls: ast.ClassDef) -> bool:
        for node in ast.walk(cls):
            if isinstance(node, ast.Attribute) \
                    and node.attr == "cluster" \
                    and isinstance(node.value, ast.Name) \
                    and node.value.id == "self":
                return True
        return False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for cls in ast.walk(ctx.tree):
            if not isinstance(cls, ast.ClassDef) \
                    or not self._uses_cluster(cls):
                continue
            for func in cls.body:
                if not isinstance(func, (ast.FunctionDef,
                                         ast.AsyncFunctionDef)):
                    continue
                bulk_calls = [
                    node for node in ast.walk(func)
                    if isinstance(node, ast.Call)
                    and _func_name(node.func) in BULK_OPS
                ]
                if not bulk_calls:
                    continue
                charged = any(
                    isinstance(node, ast.Call)
                    and (_func_name(node.func) or "").startswith("charge_")
                    for node in ast.walk(func)
                )
                if charged:
                    continue
                for call in bulk_calls:
                    yield ctx.finding(
                        self.id, call,
                        f"{cls.name}.{func.name} routes a bulk op "
                        f"({_func_name(call.func)}) but charges no MPC "
                        f"rounds/words in the same scope; the model's "
                        f"sublinearity argument only counts charged "
                        f"work")


# ---------------------------------------------------------------------------
# RL006: hot-path purity
# ---------------------------------------------------------------------------

class HotPathPurity(Rule):
    id = "RL006"
    title = "hot-path-purity"
    rationale = ("@hot_path cores must stay vectorized: no pickle/"
                 "deepcopy, no per-element Python loops, no "
                 "list-materializing builds")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for func in _walk_functions(ctx.tree):
            if "hot_path" not in _decorator_names(func):
                continue
            for node in ast.walk(func):
                if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                    kind = ("while" if isinstance(node, ast.While)
                            else "for")
                    yield ctx.finding(
                        self.id, node,
                        f"per-element Python `{kind}` loop inside "
                        f"@hot_path {func.name}; vectorize it (or "
                        f"suppress with a justification that the loop "
                        f"is over a small bounded dimension)")
                elif isinstance(node, ast.ListComp):
                    yield ctx.finding(
                        self.id, node,
                        f"list comprehension materializes O(n) Python "
                        f"objects inside @hot_path {func.name}")
                elif isinstance(node, ast.Call):
                    name = _func_name(node.func)
                    owner = (node.func.value.id
                             if isinstance(node.func, ast.Attribute)
                             and isinstance(node.func.value, ast.Name)
                             else None)
                    if owner == "pickle" and name in ("dumps", "loads",
                                                      "dump", "load"):
                        yield ctx.finding(
                            self.id, node,
                            f"pickle.{name} inside @hot_path "
                            f"{func.name}: serialization belongs on "
                            f"the dispatch path, never in a core")
                    elif name == "deepcopy":
                        yield ctx.finding(
                            self.id, node,
                            f"deepcopy inside @hot_path {func.name}")
                    elif name == "tolist":
                        yield ctx.finding(
                            self.id, node,
                            f".tolist() materializes Python objects "
                            f"inside @hot_path {func.name}")


# ---------------------------------------------------------------------------
# RL007: kernel-tier parity
# ---------------------------------------------------------------------------

#: Tier-module basenames callers must never import directly.
_TIER_MODULES = ("numpy_tier", "compiled_tier")

#: Registration decorators -> the tier they register for.
_REGISTRARS = {"numpy_kernel": "numpy", "compiled_kernel": "compiled"}


def _kernel_registrations(ctx: FileContext):
    """``(tier, kernel_name, funcdef)`` for every registered kernel."""
    out = []
    for func in _walk_functions(ctx.tree):
        for dec in func.decorator_list:
            if not isinstance(dec, ast.Call) or not dec.args:
                continue
            tier = _REGISTRARS.get(_func_name(dec.func) or "")
            if tier is None:
                continue
            arg = dec.args[0]
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
                out.append((tier, arg.value, func))
    return out


def _kernel_signature(func) -> tuple:
    """Positional parameter names, in order (what the dispatcher swaps)."""
    args = func.args
    return tuple(a.arg for a in [*args.posonlyargs, *args.args])


class KernelTierParity(Rule):
    id = "RL007"
    title = "kernel-tier-parity"
    rationale = ("every registered kernel needs numpy and compiled "
                 "flavours with matching signatures; callers go through "
                 "the repro.kernels dispatcher, never a tier module")

    def applies(self, ctx: FileContext) -> bool:
        return _in_src(ctx)

    # -- per-file ------------------------------------------------------
    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if "repro/kernels/" not in ctx.path:
            yield from self._bypass_imports(ctx)
            return
        # Intra-file parity: only meaningful when one file registers
        # both flavours.  The real tier modules register one kind each;
        # cross-file drift between them is the project phase's job.
        regs = [(tier, name, func, ctx)
                for tier, name, func in _kernel_registrations(ctx)]
        if len({tier for tier, *_ in regs}) == 2:
            yield from self._parity_findings(regs)

    @staticmethod
    def _bypass_imports(ctx: FileContext) -> Iterable[Finding]:
        """Flag imports that freeze one tier behind ``set_tier``'s back."""
        why = ("; call through the repro.kernels dispatcher attributes "
               "so set_tier() re-binds apply to every caller")
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module.endswith(
                        tuple(f"kernels.{m}" for m in _TIER_MODULES)):
                    yield ctx.finding(
                        "RL007", node,
                        f"direct import from kernel tier module "
                        f"{module!r} bypasses the dispatcher{why}")
                    continue
                if module.split(".")[-1] == "kernels":
                    for alias in node.names:
                        if alias.name in _TIER_MODULES:
                            yield ctx.finding(
                                "RL007", node,
                                f"direct import of kernel tier module "
                                f"{alias.name!r} bypasses the "
                                f"dispatcher{why}")
            elif isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.endswith(
                            tuple(f"kernels.{m}" for m in _TIER_MODULES)):
                        yield ctx.finding(
                            "RL007", node,
                            f"direct import of kernel tier module "
                            f"{alias.name!r} bypasses the dispatcher{why}")

    # -- shared parity core --------------------------------------------
    @staticmethod
    def _parity_findings(regs) -> Iterable[Finding]:
        """Parity over ``(tier, name, func, ctx)`` registrations."""
        by_name: Dict[str, Dict[str, tuple]] = {}
        for tier, name, func, ctx in regs:
            by_name.setdefault(name, {}).setdefault(tier, (func, ctx))
        for name in sorted(by_name):
            flavours = by_name[name]
            if "compiled" not in flavours:
                func, ctx = flavours["numpy"]
                yield ctx.finding(
                    "RL007", func,
                    f"kernel {name!r} registers a numpy flavour but no "
                    f"compiled twin; the dispatcher refuses a tier with "
                    f"missing names -- register both (the compiled "
                    f"wrapper may just delegate)")
                continue
            if "numpy" not in flavours:
                func, ctx = flavours["compiled"]
                yield ctx.finding(
                    "RL007", func,
                    f"kernel {name!r} registers a compiled flavour but "
                    f"no numpy twin; numpy is the always-available "
                    f"fallback tier and must cover every name")
                continue
            np_sig = _kernel_signature(flavours["numpy"][0])
            c_sig = _kernel_signature(flavours["compiled"][0])
            if np_sig != c_sig:
                func, ctx = flavours["compiled"]
                yield ctx.finding(
                    "RL007", func,
                    f"kernel {name!r} tier signatures differ: "
                    f"numpy({', '.join(np_sig)}) vs "
                    f"compiled({', '.join(c_sig)}); set_tier swaps "
                    f"implementations freely, so parameter names and "
                    f"order must match exactly")

    # -- project phase: cross-file parity over the kernels package -----
    def check_project(self, contexts: Sequence[FileContext],
                      root) -> Iterable[Finding]:
        regs = []
        both_kinds_paths: Set[str] = set()
        for ctx in contexts:
            if not _in_src(ctx) or "repro/kernels/" not in ctx.path:
                continue
            file_regs = _kernel_registrations(ctx)
            if len({tier for tier, _, _ in file_regs}) == 2:
                # Per-file check already judged this file's parity.
                both_kinds_paths.add(ctx.path)
            regs.extend((tier, name, func, ctx)
                        for tier, name, func in file_regs)
        if len({tier for tier, *_ in regs}) < 2:
            return  # package absent or single-tier tree: nothing to hold
        cross = [r for r in regs if r[3].path not in both_kinds_paths]
        yield from self._parity_findings(cross)


#: The rule pack, in reporting order.  The interprocedural flow rules
#: (RL008-RL011) and the protocol model check (RL012) live in
#: :mod:`repro.lint.flow_rules`; the import sits at the bottom because
#: flow_rules imports helpers defined above.
from repro.lint.flow_rules import FLOW_RULES  # noqa: E402
from repro.lint.numeric import NUMERIC_RULES  # noqa: E402

ALL_RULES: List[Rule] = [
    SuppressionHygiene(),
    ShmLifecycle(),
    SpawnSafety(),
    ProtocolDiscipline(),
    EnvHygiene(),
    ChargeAccounting(),
    HotPathPurity(),
    KernelTierParity(),
    *FLOW_RULES,
    *NUMERIC_RULES,
]
