"""Rule engine: file walking, suppressions, baselines, rule driving.

The engine is deliberately simple -- plain :mod:`ast` walks, no type
inference -- because every rule in the pack is a *convention* check:
the patterns it looks for are the ones this repo actually writes (see
``docs/lint-rules.md`` for what each rule approximates and where it
stays silent).  Two phases:

1. **Per-file**: each ``.py`` file is parsed once; every rule whose
   ``applies()`` matches the path gets the parsed
   :class:`FileContext`.
2. **Project**: rules that need cross-file state (RL004's doc-drift
   check) run once over all contexts with the detected project root.
3. **Program**: rules that need whole-program flow (RL008's charge
   paths, RL012's protocol model) run once over a :class:`Program`,
   which lazily builds the shared :class:`repro.lint.flow.FlowGraph`.

Parsed contexts are cached per ``(path, mtime, size)`` across runs in
the same process, so repeated ``run_paths``/test invocations re-parse
nothing that did not change.

Suppressions
------------
A finding on line ``L`` is suppressed by a trailing comment on the
same line, or by a standalone comment directly above the statement::

    value = os.environ.get(name)  # repro-lint: disable=RL004 -- the one reader

    # repro-lint: disable=RL006 -- loop is over <= columns groups
    for i, members in enumerate(groups):

A justification after ``--`` is mandatory: a bare ``disable=`` is
itself reported (RL000), so every escape hatch carries its why.
"""

from __future__ import annotations

import ast
import hashlib
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.lint import RULE_PACK_VERSION

#: Rule id used for files that fail to parse (reported, exit code 1).
PARSE_ERROR_RULE = "RL998"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(\S.*?))?\s*$"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Stable id for baseline matching: rule + path + message.

        Line numbers are deliberately excluded so unrelated edits above
        a baselined finding do not un-baseline it.
        """
        raw = f"{self.rule}::{self.path}::{self.message}"
        return hashlib.sha1(raw.encode("utf-8")).hexdigest()[:16]

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass
class Suppression:
    """One ``# repro-lint: disable=...`` comment."""

    rules: frozenset
    justification: Optional[str]
    line: int          # line the comment sits on (1-based)
    covers: int        # line whose findings it suppresses

    @property
    def bare(self) -> bool:
        return not (self.justification and self.justification.strip())


@dataclass
class FileContext:
    """Everything a per-file rule gets to look at."""

    path: str               # path as reported in findings (posix-ish)
    tree: ast.Module
    source: str
    lines: List[str] = field(default_factory=list)
    suppressions: List[Suppression] = field(default_factory=list)

    def finding(self, rule: str, node, message: str) -> Finding:
        return Finding(rule=rule, path=self.path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0) + 1,
                       message=message)


@dataclass
class Program:
    """Whole-program view handed to ``check_program`` rules.

    The flow graph is built lazily on first access and shared by every
    program-phase rule in the run; ``protocol_results`` collects the
    RL012 model-check results keyed by backend path (the CLI's
    ``--protocol-report`` reads it back out).
    """

    contexts: Sequence[FileContext]
    root: Path
    protocol_results: Dict[str, object] = field(default_factory=dict)
    _flow: Optional[object] = field(default=None, repr=False)

    @property
    def flow(self):
        if self._flow is None:
            from repro.lint.flow import FlowGraph
            from repro.lint.rules import BULK_OPS

            self._flow = FlowGraph.build(self.contexts, BULK_OPS)
        return self._flow


class Rule:
    """Base class: subclasses set ``id``/``title`` and override checks."""

    id = "RL000"
    title = ""
    #: One-line rationale shown by ``--list-rules``.
    rationale = ""

    def applies(self, ctx: FileContext) -> bool:
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self, contexts: Sequence[FileContext],
                      root: Path) -> Iterable[Finding]:
        return ()

    def check_program(self, program: Program) -> Iterable[Finding]:
        return ()


@dataclass
class Report:
    """Outcome of one lint run."""

    findings: List[Finding]
    suppressed: List[Finding]
    baselined: int
    files: int
    rule_pack: str = RULE_PACK_VERSION
    #: Per-rule wall time in seconds across all phases (``--stats``).
    timings: Dict[str, float] = field(default_factory=dict)
    #: The program view of the run (``--graph``/``--protocol-report``).
    program: Optional[Program] = None

    @property
    def exit_code(self) -> int:
        return 1 if self.findings else 0

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return out


# ---------------------------------------------------------------------------
# Suppression parsing
# ---------------------------------------------------------------------------

def parse_suppressions(lines: List[str]) -> List[Suppression]:
    out: List[Suppression] = []
    for idx, line in enumerate(lines, start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        rules = frozenset(
            token.strip().upper()
            for token in match.group(1).split(",") if token.strip()
        )
        standalone = line[: match.start()].strip() == ""
        covers = idx
        if standalone:
            # A comment-only line covers the next code line below it.
            for nxt in range(idx + 1, len(lines) + 1):
                text = lines[nxt - 1].strip()
                if text and not text.startswith("#"):
                    covers = nxt
                    break
        out.append(Suppression(rules=rules,
                               justification=match.group(2),
                               line=idx, covers=covers))
    return out


def _is_suppressed(finding: Finding,
                   suppressions: List[Suppression]) -> bool:
    for sup in suppressions:
        if finding.line == sup.covers and finding.rule in sup.rules:
            return True
    return False


# ---------------------------------------------------------------------------
# File walking
# ---------------------------------------------------------------------------

def collect_files(paths: Sequence[str]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files.

    Only ``*.py`` is picked up, which is what keeps the known-bad
    corpus (``corpus/*.case``) out of production runs.
    """
    seen: Dict[str, Path] = {}
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                seen[str(sub)] = sub
        elif path.suffix == ".py" or path.is_file():
            seen[str(path)] = path
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
    return [seen[key] for key in sorted(seen)]


def find_project_root(start: Path) -> Path:
    """Walk up from ``start`` to the directory holding ``src/repro``."""
    probe = start.resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in [probe, *probe.parents]:
        if (candidate / "src" / "repro").is_dir() or \
                (candidate / ".git").exists():
            return candidate
    return Path.cwd()


def _display_path(path: Path, root: Path) -> str:
    try:
        rel = path.resolve().relative_to(root.resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def make_context(display_path: str, source: str) -> FileContext:
    """Parse one file into a context (raises SyntaxError on bad code)."""
    tree = ast.parse(source)
    lines = source.splitlines()
    return FileContext(path=display_path, tree=tree, source=source,
                       lines=lines,
                       suppressions=parse_suppressions(lines))


#: Parsed-context cache: resolved path -> ((mtime_ns, size), context).
#: Rules never mutate a context, so sharing across runs is safe; the
#: signature check invalidates on any on-disk change.
_CTX_CACHE: Dict[str, Tuple[Tuple[int, int], FileContext]] = {}


def _load_context(path: Path, display: str) -> FileContext:
    """Read + parse ``path``, reusing the cached AST when unchanged."""
    try:
        stat = path.stat()
        sig: Optional[Tuple[int, int]] = (stat.st_mtime_ns, stat.st_size)
    except OSError:  # pragma: no cover - racy delete
        sig = None
    key = str(path)
    if sig is not None:
        hit = _CTX_CACHE.get(key)
        if hit is not None and hit[0] == sig:
            cached = hit[1]
            if cached.path == display:
                return cached
            return FileContext(path=display, tree=cached.tree,
                               source=cached.source, lines=cached.lines,
                               suppressions=cached.suppressions)
    source = path.read_text(encoding="utf-8")
    ctx = make_context(display, source)
    if sig is not None:
        _CTX_CACHE[key] = (sig, ctx)
    return ctx


# ---------------------------------------------------------------------------
# Running
# ---------------------------------------------------------------------------

def _load_rules(select: Optional[Sequence[str]]) -> List[Rule]:
    from repro.lint.rules import ALL_RULES

    rules = list(ALL_RULES)
    if select:
        wanted = {token.strip().upper() for token in select}
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            raise ValueError(f"unknown rule ids: {sorted(unknown)}")
        rules = [rule for rule in rules if rule.id in wanted]
    return rules


def run_paths(paths: Sequence[str], *,
              select: Optional[Sequence[str]] = None,
              baseline_path: Optional[str] = None) -> Report:
    """Lint ``paths`` with the (optionally filtered) rule pack."""
    from repro.lint.baseline import load_baseline

    files = collect_files(paths)
    root = find_project_root(files[0] if files else Path.cwd())
    rules = _load_rules(select)

    contexts: List[FileContext] = []
    findings: List[Finding] = []
    suppressed: List[Finding] = []
    timings: Dict[str, float] = {rule.id: 0.0 for rule in rules}
    for path in files:
        display = _display_path(path, root)
        try:
            ctx = _load_context(path, display)
        except (SyntaxError, UnicodeDecodeError) as exc:
            findings.append(Finding(
                rule=PARSE_ERROR_RULE, path=display,
                line=getattr(exc, "lineno", 1) or 1, col=1,
                message=f"file does not parse: {exc.msg if isinstance(exc, SyntaxError) else exc}",
            ))
            continue
        contexts.append(ctx)

    for ctx in contexts:
        raw: List[Finding] = []
        for rule in rules:
            if rule.applies(ctx):
                start = time.perf_counter()
                raw.extend(rule.check(ctx))
                timings[rule.id] += time.perf_counter() - start
        for finding in raw:
            if _is_suppressed(finding, ctx.suppressions):
                suppressed.append(finding)
            else:
                findings.append(finding)

    ctx_by_path = {ctx.path: ctx for ctx in contexts}
    program = Program(contexts=contexts, root=root)

    def run_phase(produce) -> None:
        for rule in rules:
            start = time.perf_counter()
            raw = list(produce(rule))
            timings[rule.id] += time.perf_counter() - start
            for finding in raw:
                ctx = ctx_by_path.get(finding.path)
                if ctx is not None and _is_suppressed(finding,
                                                      ctx.suppressions):
                    suppressed.append(finding)
                else:
                    findings.append(finding)

    run_phase(lambda rule: rule.check_project(contexts, root))
    run_phase(lambda rule: rule.check_program(program))

    baselined = 0
    if baseline_path:
        known = load_baseline(baseline_path)
        kept: List[Finding] = []
        for finding in findings:
            if finding.fingerprint in known:
                baselined += 1
            else:
                kept.append(finding)
        findings = kept

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return Report(findings=findings, suppressed=suppressed,
                  baselined=baselined, files=len(files),
                  timings=timings, program=program)


def lint_source(source: str, virtual_path: str,
                select: Optional[Sequence[str]] = None) -> List[Finding]:
    """Run the per-file and program rules over in-memory ``source``.

    The self-test corpus uses this: ``virtual_path`` stands in for the
    real location, so path-scoped rules (RL003's ``mpc/backend.py``
    scope, RL004's ``src/`` scope) fire exactly as they would on disk.
    The program phase runs over a single-file program (so RL008-RL012
    corpus cases fire); project-phase checks (RL007's cross-file doc
    drift) are not run.
    """
    ctx = make_context(virtual_path, source)
    out: List[Finding] = []
    rules = _load_rules(select)
    for rule in rules:
        if rule.applies(ctx):
            for finding in rule.check(ctx):
                if not _is_suppressed(finding, ctx.suppressions):
                    out.append(finding)
    program = Program(contexts=[ctx], root=Path.cwd())
    for rule in rules:
        for finding in rule.check_program(program):
            if finding.path == ctx.path \
                    and _is_suppressed(finding, ctx.suppressions):
                continue
            out.append(finding)
    out.sort(key=lambda f: (f.line, f.rule))
    return out
