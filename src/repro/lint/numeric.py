"""Value-interval + dtype abstract interpreter for the kernel tiers.

Rules RL013-RL016 (rule pack 3.0).  Every kernel registered with
``@numpy_kernel``/``@compiled_kernel`` and annotated with
``@kernel_contract`` is evaluated symbolically: each argument starts
at its declared ``(dtype, [lo, hi])`` lattice point and the
interpreter pushes intervals through the numpy operations the kernels
actually use (``+ - * // % >> << & | ^ ~``, ``astype``/``asarray``
casts, ``np.where`` with branch refinement, ``np.add.at`` /
``np.add.reduceat`` / ``sum`` / ``cumsum`` reductions, indexing and
boolean-mask refinement, loops to fixpoint with widening).  Per kernel
and per tier it proves:

* **RL013** -- no intermediate exceeds its dtype's representable
  range (the 29/32-bit limb decomposition actually prevents
  uint64/int64 overflow), no division by a possibly-zero divisor;
* **RL014** -- the declared return interval holds (canonical residues
  stay in ``[0, p)``) and call-site arguments stay inside the callee
  kernel's declared argument intervals;
* **RL015** -- no *unmodeled* escape from the integer lattice: any op
  that leaves int64/uint64 (a float64 conversion, a true division)
  must be declared in the contract as a justified bounded-exact
  escape, and a declared escape that never fires on either tier is
  reported as stale;
* **RL016** -- both registered tiers of a kernel carry *identical*
  contracts (extending RL007's signature parity to semantics), the
  contract's argument names match the function signature, and -- in a
  file that has opted into contracts -- every registration carries
  one.

Findings are counterexample-style: the op, the derived interval, and
the bound it violates, so a seeded mutation (a dropped ``& _MASK32``,
a removed ``% MERSENNE_P``) reads back as an arithmetic fact.

The interpreter is deliberately modest (see
``docs/numeric-analysis.md`` for the modeled-op table and the trusted
assumptions): calls to sibling kernels use the callee's *declared*
contract, helper functions in the same module are analyzed
interprocedurally with memoized per-interval summaries, and the
``role="acc"`` / ``total=`` contract annotations inject the two
externally-argued facts (exact accumulator cells, bounded length
sums) the interval lattice cannot derive itself.

Entry points: the rule classes in ``NUMERIC_RULES`` (wired into
``repro.lint.rules.ALL_RULES``), :func:`analyze_program` /
:func:`analyze_paths` for embedding, and ``python -m
repro.lint.numeric`` with ``--intervals-report`` for CI.
"""

from __future__ import annotations

import ast
import importlib.util
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (Dict, Iterable, List, Mapping, Optional, Sequence,
                    Set, Tuple)

from repro.lint.engine import (FileContext, Finding, Program, Rule,
                               collect_files, find_project_root,
                               make_context)

# ---------------------------------------------------------------------------
# The contract vocabulary (loaded from repro.kernels.registry by file
# path so linting never imports numpy via the kernels package __init__)
# ---------------------------------------------------------------------------

_REGISTRY = None


def _registry():
    """The contract spec module (``repro.kernels.registry``).

    Loaded straight from its file so the (numpy-importing) kernels
    package ``__init__`` never runs inside the linter; falls back to a
    normal import when the source tree layout is unexpected.
    """
    global _REGISTRY
    if _REGISTRY is None:
        path = (Path(__file__).resolve().parent.parent
                / "kernels" / "registry.py")
        if path.is_file():
            import sys
            spec = importlib.util.spec_from_file_location(
                "_repro_lint_contract_registry", path)
            mod = importlib.util.module_from_spec(spec)
            # dataclasses resolves field types through sys.modules.
            sys.modules[spec.name] = mod
            spec.loader.exec_module(mod)
            _REGISTRY = mod
        else:  # pragma: no cover - installed-package layout
            from repro.kernels import registry as mod
            _REGISTRY = mod
    return _REGISTRY


#: Names a ``@kernel_contract`` decorator may call / reference.
_SPEC_NAMES = ("u64_residue", "i64_residue", "u64_range", "i64_range",
               "u64_any", "i64_any", "i64_acc", "bool_array",
               "scalar_int", "escape")

INF = 1 << 200
U64_MAX = (1 << 64) - 1
I64_MIN = -(1 << 63)
I64_MAX = (1 << 63) - 1

_KIND_BOUNDS = {
    "uint64": (0, U64_MAX),
    "int64": (I64_MIN, I64_MAX),
    "bool": (0, 1),
    "pyint": (-INF, INF),
}

_OP_SYM = {
    ast.Add: "+", ast.Sub: "-", ast.Mult: "*", ast.FloorDiv: "//",
    ast.Mod: "%", ast.LShift: "<<", ast.RShift: ">>",
    ast.BitAnd: "&", ast.BitOr: "|", ast.BitXor: "^", ast.Div: "/",
    ast.Pow: "**",
}

#: Registration decorators -> tier (local copy of the RL007 table so
#: this module stays importable standalone).
_REGISTRARS = {"numpy_kernel": "numpy", "compiled_kernel": "compiled"}


# ---------------------------------------------------------------------------
# Abstract values
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AVal:
    """One abstract value: a dtype kind plus an inclusive interval.

    Non-numeric kinds carry structure instead of bounds: ``tuple``
    (``elems``), ``cores`` (the compiled tier's jitted-core map),
    ``shape``/``range``/``float64``/``none``/``unknown``.  ``tcons`` /
    ``fcons`` on ``bool`` values record variable refinements valid
    where the mask is true / false; ``fb`` on ``float64`` carries the
    contract escape's declared result bounds through ``np.frexp``.
    """

    kind: str
    lo: int = 0
    hi: int = 0
    role: str = "value"
    total: Optional[int] = None
    nonzero: bool = False
    tcons: Tuple = ()
    fcons: Tuple = ()
    elems: Optional[Tuple["AVal", ...]] = None
    fb: Optional[Tuple[int, int]] = None

    @property
    def is_num(self) -> bool:
        return self.kind in _KIND_BOUNDS

    @property
    def is_empty(self) -> bool:
        return self.is_num and self.lo > self.hi

    def iv(self) -> str:
        return f"[{self.lo}, {self.hi}]"


UNKNOWN = AVal("unknown")
NONE = AVal("none")


def num(kind: str, lo: int, hi: int, **kw) -> AVal:
    lo = max(lo, -INF)
    hi = min(hi, INF)
    return AVal(kind, lo, hi, **kw)


def bot(kind: str) -> AVal:
    """The empty interval of ``kind`` (``np.empty`` before any store)."""
    return AVal(kind, 1, 0)


def kind_bounds(kind: str) -> Tuple[int, int]:
    return _KIND_BOUNDS[kind]


def _join_kind(a: str, b: str) -> Optional[str]:
    if a == b:
        return a
    if a == "pyint":
        return b
    if b == "pyint":
        return a
    if "bool" in (a, b):
        return a if b == "bool" else b
    return None


def join(a: Optional[AVal], b: Optional[AVal]) -> AVal:
    if a is None:
        return b if b is not None else UNKNOWN
    if b is None:
        return a
    if a == b:
        return a
    if a.is_num and b.is_num:
        if a.is_empty:
            return replace(b, tcons=(), fcons=())
        if b.is_empty:
            return replace(a, tcons=(), fcons=())
        kind = _join_kind(a.kind, b.kind)
        if kind is None:
            # uint64/int64 mix: track values only, drop dtype claims.
            kind = "pyint"
        role = "acc" if "acc" in (a.role, b.role) else (
            a.role if a.role == b.role else "value")
        return num(kind, min(a.lo, b.lo), max(a.hi, b.hi), role=role,
                   total=a.total if a.total == b.total else None,
                   nonzero=a.nonzero and b.nonzero)
    if a.kind == b.kind == "tuple" and a.elems and b.elems \
            and len(a.elems) == len(b.elems):
        return AVal("tuple", elems=tuple(
            join(x, y) for x, y in zip(a.elems, b.elems)))
    if a.kind == b.kind:
        return AVal(a.kind)
    return UNKNOWN


Env = Dict[str, AVal]


def join_envs(envs: Sequence[Env]) -> Env:
    envs = [e for e in envs if e is not None]
    if not envs:
        return None  # type: ignore[return-value]
    if len(envs) == 1:
        return dict(envs[0])
    keys = set()
    for e in envs:
        keys.update(e)
    out: Env = {}
    for k in keys:
        vals = [e[k] for e in envs if k in e]
        v = vals[0]
        for other in vals[1:]:
            v = join(v, other)
        out[k] = v
    return out


def _refine(env: Env, cons: Tuple) -> Env:
    if not cons:
        return env
    out = dict(env)
    for name, lo, hi, nz in cons:
        v = out.get(name)
        if v is None or not v.is_num:
            continue
        nlo = v.lo if lo is None else max(v.lo, lo)
        nhi = v.hi if hi is None else min(v.hi, hi)
        out[name] = replace(v, lo=nlo, hi=nhi,
                            nonzero=v.nonzero or nz, tcons=(), fcons=())
    return out


# ---------------------------------------------------------------------------
# Restricted contract-decorator evaluation
# ---------------------------------------------------------------------------

class ContractError(Exception):
    pass


def _ceval(node: ast.AST, names: Mapping[str, object]):
    """Evaluate a contract sub-expression over the spec whitelist."""
    if isinstance(node, ast.Constant):
        if node.value is None or isinstance(node.value, (int, str, bool)):
            return node.value
        raise ContractError(f"literal {node.value!r} not allowed")
    if isinstance(node, ast.Name):
        if node.id in names:
            val = names[node.id]
            if callable(val):
                raise ContractError(
                    f"{node.id} must be called, not referenced")
            return val
        raise ContractError(f"unknown name {node.id!r}")
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return -_ceval(node.operand, names)
    if isinstance(node, ast.BinOp):
        ops = {ast.Add: lambda a, b: a + b, ast.Sub: lambda a, b: a - b,
               ast.Mult: lambda a, b: a * b,
               ast.LShift: lambda a, b: a << b,
               ast.RShift: lambda a, b: a >> b,
               ast.Pow: lambda a, b: a ** b,
               ast.FloorDiv: lambda a, b: a // b,
               ast.Mod: lambda a, b: a % b}
        fn = ops.get(type(node.op))
        if fn is None:
            raise ContractError("operator not allowed in contract")
        return fn(_ceval(node.left, names), _ceval(node.right, names))
    if isinstance(node, (ast.Tuple, ast.List)):
        return tuple(_ceval(e, names) for e in node.elts)
    if isinstance(node, ast.Dict):
        out = {}
        for k, v in zip(node.keys, node.values):
            if k is None:
                raise ContractError("** not allowed in contract args")
            out[_ceval(k, names)] = _ceval(v, names)
        return out
    if isinstance(node, ast.Call):
        if not isinstance(node.func, ast.Name) \
                or node.func.id not in _SPEC_NAMES:
            raise ContractError(
                f"only the spec constructors {_SPEC_NAMES} may be "
                f"called in a contract")
        fn = names[node.func.id]
        args = [_ceval(a, names) for a in node.args]
        kwargs = {kw.arg: _ceval(kw.value, names)
                  for kw in node.keywords if kw.arg}
        try:
            return fn(*args, **kwargs)
        except (TypeError, ValueError) as exc:
            raise ContractError(str(exc))
    raise ContractError(
        f"{type(node).__name__} node not allowed in contract")


def eval_contract_decorator(dec: ast.Call):
    """``kernel_contract(...)`` decorator AST -> a Contract object."""
    reg = _registry()
    names = {n: getattr(reg, n) for n in _SPEC_NAMES}
    names["MERSENNE_P"] = reg.MERSENNE_P
    fields: Dict[str, object] = {}
    order = ("args", "returns", "shape", "escapes", "mutates")
    for idx, arg in enumerate(dec.args):
        if idx >= len(order):
            raise ContractError("too many positional contract fields")
        fields[order[idx]] = _ceval(arg, names)
    for kw in dec.keywords:
        if kw.arg not in order:
            raise ContractError(
                f"unknown contract field {kw.arg!r}")
        fields[kw.arg] = _ceval(kw.value, names)
    if "args" not in fields or not isinstance(fields["args"], dict):
        raise ContractError("contract needs an args={...} mapping")
    args = fields["args"]
    for name, spec in args.items():
        if not isinstance(spec, reg.ValueSpec):
            raise ContractError(
                f"args[{name!r}] is not a value spec")
    returns = fields.get("returns")
    if returns is not None and not isinstance(returns, reg.ValueSpec):
        raise ContractError("returns is not a value spec or None")
    escapes = tuple(fields.get("escapes", ()) or ())
    for esc in escapes:
        if not isinstance(esc, reg.Escape):
            raise ContractError("escapes entries must be escape(...)")
    mutates = fields.get("mutates")
    if mutates is not None and mutates not in args:
        raise ContractError(
            f"mutates={mutates!r} names no contract argument")
    return reg.Contract(args=dict(args), returns=returns,
                        shape=str(fields.get("shape", "elementwise")),
                        escapes=escapes, mutates=mutates)


def aval_from_spec(spec) -> AVal:
    lo, hi = spec.bounds()
    if spec.dtype == "pyint" and lo is None:
        lo, hi = -INF, INF
    return num(spec.dtype, lo, hi, role=spec.role, total=spec.total,
               nonzero=lo > 0 or hi < 0)


# ---------------------------------------------------------------------------
# Module scanning
# ---------------------------------------------------------------------------

@dataclass
class Registration:
    tier: str
    kernel: str
    func: ast.FunctionDef
    contract: Optional[object] = None      # registry.Contract
    contract_node: Optional[ast.AST] = None
    contract_error: Optional[str] = None


@dataclass
class ModuleInfo:
    ctx: FileContext
    consts: Env = field(default_factory=dict)
    functions: Dict[str, ast.FunctionDef] = field(default_factory=dict)
    skip_funcs: Set[str] = field(default_factory=set)
    cores_names: Set[str] = field(default_factory=set)
    cores: Dict[str, str] = field(default_factory=dict)
    registrations: List[Registration] = field(default_factory=list)
    func_contracts: Dict[str, object] = field(default_factory=dict)


def _const_aval(node: ast.AST, consts: Env) -> Optional[AVal]:
    """Evaluate a module-level constant expression to a singleton."""
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return num("pyint", node.value, node.value)
    if isinstance(node, ast.Name):
        v = consts.get(node.id)
        return v if v is not None and v.lo == v.hi else None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _const_aval(node.operand, consts)
        if inner is not None:
            return num(inner.kind, -inner.hi, -inner.lo)
        return None
    if isinstance(node, ast.BinOp):
        left = _const_aval(node.left, consts)
        right = _const_aval(node.right, consts)
        if left is None or right is None:
            return None
        ops = {ast.Add: lambda a, b: a + b, ast.Sub: lambda a, b: a - b,
               ast.Mult: lambda a, b: a * b,
               ast.LShift: lambda a, b: a << b,
               ast.RShift: lambda a, b: a >> b,
               ast.Mod: lambda a, b: a % b,
               ast.FloorDiv: lambda a, b: a // b,
               ast.Pow: lambda a, b: a ** b}
        fn = ops.get(type(node.op))
        if fn is None:
            return None
        try:
            v = fn(left.lo, right.lo)
        except (ValueError, ZeroDivisionError, OverflowError):
            return None
        return num("pyint", v, v)
    if isinstance(node, ast.Call):
        dotted = _dotted(node.func)
        kind = {"np.uint64": "uint64", "np.int64": "int64",
                "numpy.uint64": "uint64", "numpy.int64": "int64"}.get(
                    dotted or "")
        if kind and len(node.args) == 1:
            inner = _const_aval(node.args[0], consts)
            if inner is not None:
                return num(kind, inner.lo, inner.hi)
    return None


def _dotted(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = _dotted(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def scan_module(ctx: FileContext) -> ModuleInfo:
    mod = ModuleInfo(ctx=ctx)
    for stmt in ctx.tree.body:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (stmt.targets if isinstance(stmt, ast.Assign)
                       else [stmt.target])
            value = stmt.value
            if value is None or len(targets) != 1 \
                    or not isinstance(targets[0], ast.Name):
                continue
            name = targets[0].id
            if isinstance(value, ast.Dict) and not value.keys:
                mod.cores_names.add(name)
                continue
            aval = _const_aval(value, mod.consts)
            if aval is not None:
                mod.consts[name] = aval
        elif isinstance(stmt, ast.FunctionDef):
            mod.functions[stmt.name] = stmt
            if any(isinstance(sub, ast.Global)
                   for sub in ast.walk(stmt)):
                mod.skip_funcs.add(stmt.name)
    # Core-map wiring: _CORES.update(name=jit(func), ...) / _CORES[k]=f
    for func in mod.functions.values():
        for sub in ast.walk(func):
            if isinstance(sub, ast.Call) \
                    and isinstance(sub.func, ast.Attribute) \
                    and sub.func.attr == "update" \
                    and isinstance(sub.func.value, ast.Name) \
                    and sub.func.value.id in mod.cores_names:
                for kw in sub.keywords:
                    target = _unwrap_func_ref(kw.value)
                    if kw.arg and target:
                        mod.cores[kw.arg] = target
            elif isinstance(sub, ast.Assign) and len(sub.targets) == 1 \
                    and isinstance(sub.targets[0], ast.Subscript) \
                    and isinstance(sub.targets[0].value, ast.Name) \
                    and sub.targets[0].value.id in mod.cores_names:
                key = sub.targets[0].slice
                target = _unwrap_func_ref(sub.value)
                if isinstance(key, ast.Constant) and target:
                    mod.cores[str(key.value)] = target
    # Registrations + contracts.
    for func in mod.functions.values():
        tier = kernel = None
        contract_node = None
        for dec in func.decorator_list:
            if not isinstance(dec, ast.Call):
                continue
            dec_name = _dotted(dec.func)
            dec_name = dec_name.split(".")[-1] if dec_name else ""
            if dec_name in _REGISTRARS and dec.args \
                    and isinstance(dec.args[0], ast.Constant) \
                    and isinstance(dec.args[0].value, str):
                tier = _REGISTRARS[dec_name]
                kernel = dec.args[0].value
            elif dec_name == "kernel_contract":
                contract_node = dec
        if tier is None:
            continue
        reg = Registration(tier=tier, kernel=kernel, func=func,
                           contract_node=contract_node)
        if contract_node is not None:
            try:
                reg.contract = eval_contract_decorator(contract_node)
                mod.func_contracts[func.name] = reg.contract
            except ContractError as exc:
                reg.contract_error = str(exc)
        mod.registrations.append(reg)
    return mod


def _unwrap_func_ref(node: ast.AST) -> Optional[str]:
    """``jit(_core)`` / ``_core`` -> ``"_core"``."""
    while isinstance(node, ast.Call) and len(node.args) == 1:
        node = node.args[0]
    if isinstance(node, ast.Name):
        return node.id
    return None


# ---------------------------------------------------------------------------
# Interval arithmetic
# ---------------------------------------------------------------------------

def _mult_bounds(a: AVal, b: AVal) -> Tuple[int, int]:
    cands = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    return min(cands), max(cands)


def _shift_amount(b: AVal) -> Tuple[int, int]:
    return max(b.lo, 0), min(b.hi, 256)


def _div_points(d: AVal) -> List[int]:
    pts = []
    for p in (d.lo, d.hi, -1, 1):
        if d.lo <= p <= d.hi and p != 0:
            pts.append(p)
    if not pts:
        # Divisor interval is exactly {0}; caller reported already.
        pts = [1]
    return pts


def _floordiv_bounds(a: AVal, d: AVal) -> Tuple[int, int]:
    cands = []
    for x in (a.lo, a.hi):
        for p in _div_points(d):
            cands.append(x // p)
    return min(cands), max(cands)


def _mod_bounds(d: AVal) -> Tuple[int, int]:
    lo = hi = 0
    if d.hi > 0:
        hi = d.hi - 1
    if d.lo < 0:
        lo = d.lo + 1
    return lo, hi


def _bitlen(v: int) -> int:
    return max(v, 0).bit_length()


# ---------------------------------------------------------------------------
# The interpreter frame
# ---------------------------------------------------------------------------

class _Budget(Exception):
    pass


@dataclass
class LoopRec:
    breaks: List[Env] = field(default_factory=list)
    continues: List[Env] = field(default_factory=list)


class Frame:
    """Per-(kernel, tier) analysis state."""

    MAX_STEPS = 400_000

    def __init__(self, mod: ModuleInfo, kernel: str, tier: str,
                 contract) -> None:
        self.mod = mod
        self.kernel = kernel
        self.tier = tier
        self.contract = contract
        self.escapes = {e.kind: e for e in contract.escapes}
        self.used: Set[str] = set()
        self.findings: List[Finding] = []
        self._seen: Set[Tuple] = set()
        self.returns: List[AVal] = []
        self.loops: List[LoopRec] = []
        self.callstack: List[str] = []
        self.memo: Dict[Tuple, AVal] = {}
        self.quiet = 0
        self.steps = 0

    # -- reporting -----------------------------------------------------
    def where(self) -> str:
        return f"kernel {self.kernel!r} ({self.tier} tier)"

    def emit(self, rule: str, node: ast.AST, message: str) -> None:
        if self.quiet:
            return
        key = (rule, getattr(node, "lineno", 1), message)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(Finding(
            rule=rule, path=self.mod.ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1, message=message))

    def tick(self) -> None:
        self.steps += 1
        if self.steps > self.MAX_STEPS:
            raise _Budget()

    # -- expression evaluation -----------------------------------------
    def eval(self, node: ast.AST, env: Env) -> AVal:
        self.tick()
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool):
                return num("bool", int(v), int(v))
            if isinstance(v, int):
                return num("pyint", v, v, nonzero=v != 0)
            if v is None:
                return NONE
            return UNKNOWN
        if isinstance(node, ast.Name):
            return self._name(node, env)
        if isinstance(node, ast.Attribute):
            return self._attribute(node, env)
        if isinstance(node, ast.Tuple):
            return AVal("tuple", elems=tuple(
                self.eval(e, env) for e in node.elts))
        if isinstance(node, ast.List):
            return AVal("tuple", elems=tuple(
                self.eval(e, env) for e in node.elts))
        if isinstance(node, ast.BinOp):
            left = self.eval(node.left, env)
            right = self.eval(node.right, env)
            return self.arith(node, type(node.op), left, right)
        if isinstance(node, ast.UnaryOp):
            return self._unary(node, env)
        if isinstance(node, ast.BoolOp):
            return self._boolop(node, env)
        if isinstance(node, ast.Compare):
            return self._compare(node, env)
        if isinstance(node, ast.Call):
            return self._call(node, env)
        if isinstance(node, ast.Subscript):
            return self._subscript_load(node, env)
        if isinstance(node, ast.IfExp):
            cond = self.eval(node.test, env)
            t = self.eval(node.body, _refine(env, cond.tcons))
            f = self.eval(node.orelse, _refine(env, cond.fcons))
            return join(t, f)
        if isinstance(node, ast.Slice):
            return UNKNOWN
        return UNKNOWN

    def _name(self, node: ast.Name, env: Env) -> AVal:
        name = node.id
        if name in env:
            return env[name]
        if name in self.mod.consts:
            return self.mod.consts[name]
        if name in self.mod.cores_names:
            return AVal("cores")
        if name in self.mod.functions:
            return AVal("func", elems=None, fb=None,
                        role="value", total=None)
        if name in ("np", "numpy", "numba"):
            return AVal("module")
        self.emit("RL013", node,
                  f"name {name!r} in {self.where()} has no statically "
                  f"known interval (not a parameter, local, or "
                  f"evaluable module constant)")
        return UNKNOWN

    def _attribute(self, node: ast.Attribute, env: Env) -> AVal:
        if node.attr == "shape":
            self.eval(node.value, env)
            return AVal("shape")
        dotted = _dotted(node)
        if dotted and dotted.split(".")[0] in ("np", "numpy"):
            return AVal("npfunc")
        base = self.eval(node.value, env)
        if node.attr == "T":
            return base
        return UNKNOWN

    def _unary(self, node: ast.UnaryOp, env: Env) -> AVal:
        v = self.eval(node.operand, env)
        if isinstance(node.op, ast.Not):
            if v.kind == "bool":
                return replace(v, tcons=v.fcons, fcons=v.tcons)
            return num("bool", 0, 1)
        if isinstance(node.op, ast.Invert):
            if v.kind == "bool":
                return replace(v, tcons=v.fcons, fcons=v.tcons)
            if not v.is_num or v.is_empty:
                return v if v.is_num else UNKNOWN
            if v.kind == "uint64":
                return num("uint64", U64_MAX - v.hi, U64_MAX - v.lo)
            return num(v.kind, -v.hi - 1, -v.lo - 1)
        if isinstance(node.op, ast.USub):
            zero = num(v.kind if v.is_num else "pyint", 0, 0)
            return self.arith(node, ast.Sub, zero, v)
        if isinstance(node.op, ast.UAdd):
            return v
        return UNKNOWN

    def _boolop(self, node: ast.BoolOp, env: Env) -> AVal:
        vals = [self.eval(v, env) for v in node.values]
        tcons: Tuple = ()
        fcons: Tuple = ()
        if isinstance(node.op, ast.And):
            for v in vals:
                tcons = tcons + v.tcons
        else:
            for v in vals:
                fcons = fcons + v.fcons
        return num("bool", 0, 1, tcons=tcons, fcons=fcons)

    def _cons_for(self, opcls, name: str, other: AVal) -> Tuple[Tuple,
                                                                Tuple]:
        """(tcons, fcons) refining ``name`` from ``name <op> other``."""
        if not other.is_num or other.is_empty:
            return (), ()
        t: List = []
        f: List = []
        if opcls is ast.GtE:
            t.append((name, other.lo, None, False))
            f.append((name, None, other.hi - 1, False))
        elif opcls is ast.Gt:
            t.append((name, other.lo + 1, None, False))
            f.append((name, None, other.hi, False))
        elif opcls is ast.LtE:
            t.append((name, None, other.hi, False))
            f.append((name, other.lo + 1, None, False))
        elif opcls is ast.Lt:
            t.append((name, None, other.hi - 1, False))
            f.append((name, other.lo, None, False))
        elif opcls is ast.Eq:
            t.append((name, other.lo, other.hi, False))
            if other.lo == other.hi == 0:
                f.append((name, None, None, True))
        elif opcls is ast.NotEq:
            if other.lo == other.hi == 0:
                t.append((name, None, None, True))
            f.append((name, other.lo, other.hi, False))
        return tuple(t), tuple(f)

    _MIRROR = {ast.Lt: ast.Gt, ast.Gt: ast.Lt, ast.LtE: ast.GtE,
               ast.GtE: ast.LtE, ast.Eq: ast.Eq, ast.NotEq: ast.NotEq}

    def _compare(self, node: ast.Compare, env: Env) -> AVal:
        tcons: Tuple = ()
        fcons: Tuple = ()
        left_node = node.left
        left = self.eval(left_node, env)
        single = len(node.ops) == 1
        for opcls_obj, right_node in zip(node.ops, node.comparators):
            opcls = type(opcls_obj)
            right = self.eval(right_node, env)
            if opcls in self._MIRROR:
                if isinstance(left_node, ast.Name):
                    t, f = self._cons_for(opcls, left_node.id, right)
                    tcons += t
                    fcons += f
                if isinstance(right_node, ast.Name):
                    t, f = self._cons_for(self._MIRROR[opcls],
                                          right_node.id, left)
                    tcons += t
                    fcons += f
            left_node = right_node
            left = right
        if not single:
            fcons = ()  # chained comparisons: negation is a disjunction
        return num("bool", 0, 1, tcons=tcons, fcons=fcons)

    # -- arithmetic ----------------------------------------------------
    def arith(self, node: ast.AST, opcls, a: AVal, b: AVal) -> AVal:
        sym = _OP_SYM.get(opcls, "?")
        if a.kind in ("tuple", "shape") or b.kind in ("tuple", "shape"):
            if opcls is ast.Add:
                return AVal("shape")
            return UNKNOWN
        if a.kind == "unknown" or b.kind == "unknown":
            return UNKNOWN
        if a.kind == "float64" or b.kind == "float64":
            self.emit("RL015", node,
                      f"float64 arithmetic ({sym}) in {self.where()} "
                      f"is outside the exact int lattice; only the "
                      f"declared frexp exponent read is modeled")
            return AVal("float64")
        if a.kind == b.kind == "bool" and opcls in (ast.BitAnd,
                                                    ast.BitOr):
            if opcls is ast.BitAnd:
                return num("bool", 0, 1, tcons=a.tcons + b.tcons)
            return num("bool", 0, 1, fcons=a.fcons + b.fcons)
        if not (a.is_num and b.is_num):
            return UNKNOWN
        kind = _join_kind(a.kind, b.kind)
        if kind is None:
            self.emit("RL013", node,
                      f"mixed uint64/int64 operands for {sym!r} in "
                      f"{self.where()}: promotion is ambiguous; cast "
                      f"one side explicitly")
            return UNKNOWN
        if kind == "bool":
            kind = "pyint"
        if a.is_empty or b.is_empty:
            return bot(kind)
        acc_exempt = "acc" in (a.role, b.role) and opcls in (
            ast.Add, ast.Sub)
        if opcls is ast.Add:
            lo, hi = a.lo + b.lo, a.hi + b.hi
        elif opcls is ast.Sub:
            lo, hi = a.lo - b.hi, a.hi - b.lo
        elif opcls is ast.Mult:
            lo, hi = _mult_bounds(a, b)
        elif opcls is ast.FloorDiv:
            return self._floordiv(node, kind, a, b)
        elif opcls is ast.Mod:
            return self._mod(node, kind, a, b)
        elif opcls is ast.LShift:
            if b.lo < 0:
                self.emit("RL013", node,
                          f"shift amount {b.iv()} may be negative in "
                          f"{self.where()}")
            slo, shi = _shift_amount(b)
            cands = [a.lo << slo, a.lo << shi, a.hi << slo,
                     a.hi << shi]
            lo, hi = min(cands), max(cands)
        elif opcls is ast.RShift:
            if b.lo < 0:
                self.emit("RL013", node,
                          f"shift amount {b.iv()} may be negative in "
                          f"{self.where()}")
            slo, shi = _shift_amount(b)
            lo = min(a.lo >> slo, a.lo >> shi)
            hi = max(a.hi >> slo, a.hi >> shi)
        elif opcls is ast.BitAnd:
            if b.lo >= 0:
                lo, hi = 0, min(a.hi, b.hi) if a.lo >= 0 else b.hi
            elif a.lo >= 0:
                lo, hi = 0, a.hi
            else:
                lo, hi = kind_bounds(kind)
        elif opcls in (ast.BitOr, ast.BitXor):
            if a.lo >= 0 and b.lo >= 0:
                width = max(_bitlen(a.hi), _bitlen(b.hi))
                lo = max(a.lo, b.lo) if opcls is ast.BitOr else 0
                hi = (1 << width) - 1
            else:
                lo, hi = kind_bounds(kind)
        elif opcls is ast.Div:
            self.emit("RL015", node,
                      f"true division (/) in {self.where()} produces "
                      f"float64; the hot path is exact integer "
                      f"arithmetic (use // or a declared escape)")
            return AVal("float64")
        elif opcls is ast.Pow:
            if a.lo >= 0 and b.lo >= 0:
                lo = a.lo ** min(b.lo, 256)
                hi = a.hi ** min(b.hi, 256)
            else:
                lo, hi = kind_bounds(kind)
        else:
            return UNKNOWN
        role = "acc" if acc_exempt else "value"
        if kind != "pyint" and not acc_exempt:
            klo, khi = kind_bounds(kind)
            if lo < klo or hi > khi:
                return self._overflow(node, sym, kind, lo, hi)
        return num(kind, lo, hi, role=role)

    def _overflow(self, node: ast.AST, sym: str, kind: str,
                  lo: int, hi: int) -> AVal:
        klo, khi = kind_bounds(kind)
        if kind == "uint64" and "wrap" in self.escapes:
            self.used.add("wrap")
            esc = self.escapes["wrap"]
            if esc.result is not None:
                return aval_from_spec(esc.result)
            return num("uint64", 0, U64_MAX)
        self.emit("RL013", node,
                  f"{kind} {sym!r} in {self.where()} derives "
                  f"[{lo}, {hi}], which exceeds {kind} "
                  f"[{klo}, {khi}]; narrow the operands (limb split) "
                  f"or declare a contract escape")
        return num(kind, klo, khi)

    def _floordiv(self, node: ast.AST, kind: str, a: AVal,
                  b: AVal) -> AVal:
        if b.lo <= 0 <= b.hi and not b.nonzero:
            self.emit("RL013", node,
                      f"floor division in {self.where()} by divisor "
                      f"{b.iv()} which may be zero")
            return num(kind, *kind_bounds(kind))
        if kind == "int64" and a.lo <= I64_MIN and b.lo <= -1 <= b.hi:
            if "divide" in self.escapes:
                self.used.add("divide")
                esc = self.escapes["divide"]
                if esc.result is not None:
                    return aval_from_spec(esc.result)
                return num("int64", I64_MIN, I64_MAX)
            self.emit("RL013", node,
                      f"floor division in {self.where()}: dividend "
                      f"{a.iv()} and divisor {b.iv()} admit the "
                      f"INT64_MIN // -1 overflow corner; exclude it "
                      f"or declare a 'divide' escape")
            return num(kind, *kind_bounds(kind))
        lo, hi = _floordiv_bounds(a, b)
        if kind != "pyint":
            klo, khi = kind_bounds(kind)
            lo, hi = max(lo, klo), min(hi, khi)
        return num(kind, lo, hi)

    def _mod(self, node: ast.AST, kind: str, a: AVal,
             b: AVal) -> AVal:
        if b.lo <= 0 <= b.hi and not b.nonzero:
            self.emit("RL013", node,
                      f"modulo in {self.where()} by divisor {b.iv()} "
                      f"which may be zero")
            return num(kind, *kind_bounds(kind))
        lo, hi = _mod_bounds(b)
        if a.lo >= 0 and b.lo > 0 and a.hi < b.lo:
            lo, hi = a.lo, a.hi  # dividend already reduced
        return num(kind, lo, hi)

    # -- calls ---------------------------------------------------------
    def _call(self, node: ast.Call, env: Env) -> AVal:
        func = node.func
        dotted = _dotted(func)
        if dotted and dotted.split(".")[0] in ("np", "numpy"):
            tail = dotted.split(".", 1)[1]
            return self._np_call(node, tail, env)
        if isinstance(func, ast.Name):
            return self._plain_call(node, func.id, env)
        if isinstance(func, ast.Subscript):
            base = self.eval(func.value, env)
            if base.kind == "cores" \
                    and isinstance(func.slice, ast.Constant):
                target = self.mod.cores.get(str(func.slice.value))
                if target:
                    args = [self.eval(a, env) for a in node.args]
                    return self._local_call(node, target, args)
            return UNKNOWN
        if isinstance(func, ast.Attribute):
            return self._method_call(node, func, env)
        return UNKNOWN

    def _plain_call(self, node: ast.Call, name: str,
                    env: Env) -> AVal:
        if name == "int":
            v = self.eval(node.args[0], env) if node.args else UNKNOWN
            if v.is_num:
                return num("pyint", v.lo, v.hi, nonzero=v.nonzero)
            return UNKNOWN
        if name == "range":
            return self._range(node, env)
        if name == "len":
            if node.args:
                self.eval(node.args[0], env)
            return num("pyint", 0, INF)
        if name in self.mod.func_contracts:
            return self._contract_call(node, name, env)
        if name in self.mod.skip_funcs:
            for a in node.args:
                self.eval(a, env)
            return UNKNOWN
        if name in self.mod.functions:
            args = [self.eval(a, env) for a in node.args]
            return self._local_call(node, name, args)
        self.emit("RL013", node,
                  f"call to {name!r} in {self.where()} cannot be "
                  f"resolved to a module function, sibling kernel, or "
                  f"modeled builtin; its result interval is unknown")
        return UNKNOWN

    def _range(self, node: ast.Call, env: Env) -> AVal:
        args = [self.eval(a, env) for a in node.args]
        if not args or not all(a.is_num for a in args):
            return AVal("range", 0, INF)
        if len(args) == 1:
            return AVal("range", 0, max(args[0].hi - 1, 0))
        start, stop = args[0], args[1]
        step_neg = False
        if len(args) > 2:
            step = args[2]
            step_neg = step.hi < 0
        if step_neg:
            return AVal("range", stop.lo + 1, max(start.hi,
                                                  stop.lo + 1))
        return AVal("range", start.lo, max(stop.hi - 1, start.lo))

    def _contract_call(self, node: ast.Call, name: str,
                       env: Env) -> AVal:
        contract = self.mod.func_contracts[name]
        funcdef = self.mod.functions[name]
        params = [a.arg for a in funcdef.args.args]
        supplied: Dict[str, AVal] = {}
        for param, argnode in zip(params, node.args):
            supplied[param] = self.eval(argnode, env)
        for kw in node.keywords:
            if kw.arg:
                supplied[kw.arg] = self.eval(kw.value, env)
        for param, val in supplied.items():
            spec = contract.args.get(param)
            if spec is None:
                continue
            slo, shi = spec.bounds()
            if slo is None:
                continue
            if val.kind == "unknown":
                self.emit("RL014", node,
                          f"argument {param!r} of sibling kernel "
                          f"{name!r} called from {self.where()} has "
                          f"an unknown interval; declared "
                          f"{spec.describe()}")
            elif val.is_num and not val.is_empty \
                    and (val.lo < slo or val.hi > shi):
                self.emit("RL014", node,
                          f"argument {param!r} of sibling kernel "
                          f"{name!r} called from {self.where()} "
                          f"derives {val.iv()}, outside the declared "
                          f"{spec.describe()}")
        if contract.returns is None:
            return NONE
        return aval_from_spec(contract.returns)

    def _local_call(self, node: ast.AST, name: str,
                    args: List[AVal]) -> AVal:
        if name in self.callstack or len(self.callstack) > 12:
            return UNKNOWN
        funcdef = self.mod.functions.get(name)
        if funcdef is None:
            return UNKNOWN
        key = (name, tuple((a.kind, a.lo, a.hi, a.role, a.total,
                            a.nonzero) for a in args))
        if key in self.memo:
            return self.memo[key]
        params = [a.arg for a in funcdef.args.args]
        callee_env: Env = {}
        for param, val in zip(params, args):
            callee_env[param] = replace(val, tcons=(), fcons=()) \
                if val.is_num else val
        for param in params[len(args):]:
            callee_env[param] = UNKNOWN
        saved = (self.returns, self.loops)
        self.returns, self.loops = [], []
        self.callstack.append(name)
        try:
            fell = self.exec_block(funcdef.body, callee_env)
            rets = [r for r in self.returns if r.kind != "none"]
            if rets:
                out = rets[0]
                for r in rets[1:]:
                    out = join(out, r)
            else:
                out = NONE
        finally:
            self.callstack.pop()
            self.returns, self.loops = saved
        del fell
        self.memo[key] = out
        return out

    # -- numpy model ---------------------------------------------------
    def _dtype_kind(self, node: Optional[ast.AST]) -> Optional[str]:
        if node is None:
            return None
        try:
            text = ast.unparse(node)
        except Exception:  # pragma: no cover - defensive
            return None
        if "uint64" in text:
            return "uint64"
        if "int64" in text:
            return "int64"
        if "float" in text:
            return "float64"
        if "bool" in text:
            return "bool"
        return None

    def _kw(self, node: ast.Call, name: str) -> Optional[ast.AST]:
        for kw in node.keywords:
            if kw.arg == name:
                return kw.value
        return None

    def _cast(self, node: ast.AST, val: AVal, target: str) -> AVal:
        if target == "float64":
            if "float64" in self.escapes:
                self.used.add("float64")
                esc = self.escapes["float64"]
                fb = None
                if esc.result is not None:
                    fb = esc.result.bounds()
                return AVal("float64", fb=fb)
            self.emit("RL015", node,
                      f"conversion to float64 in {self.where()} "
                      f"leaves the exact int lattice with no declared "
                      f"'float64' contract escape")
            return AVal("float64")
        if val.kind == "unknown" or target is None:
            return UNKNOWN
        if val.kind == "float64":
            self.emit("RL015", node,
                      f"float64 value cast back to {target} in "
                      f"{self.where()} without going through the "
                      f"modeled frexp exponent read")
            return num(target, *kind_bounds(target))
        if not val.is_num:
            return UNKNOWN
        if val.is_empty:
            return bot(target)
        klo, khi = kind_bounds(target)
        if val.lo < klo or val.hi > khi:
            self.emit("RL013", node,
                      f"cast to {target} in {self.where()}: source "
                      f"interval {val.iv()} does not fit {target} "
                      f"[{klo}, {khi}] (values would wrap)")
            return num(target, klo, khi)
        return num(target, val.lo, val.hi, role=val.role,
                   total=val.total, nonzero=val.nonzero)

    def _reduction(self, node: ast.AST, val: AVal,
                   what: str) -> AVal:
        if val.kind == "unknown":
            return UNKNOWN
        if val.role == "acc":
            return replace(val, tcons=(), fcons=())
        if val.is_num and val.total is not None and val.lo >= 0:
            return num(val.kind if val.kind != "bool" else "int64",
                       0, val.total)
        if val.kind == "bool":
            return num("int64", 0, I64_MAX)
        if val.is_num and val.is_empty:
            return val
        self.emit("RL013", node,
                  f"{what} in {self.where()} over values "
                  f"{val.iv() if val.is_num else val.kind} with no "
                  f"role='acc' exemption or total= bound: the sum is "
                  f"unbounded in the interval lattice")
        if val.is_num:
            return num(val.kind, *kind_bounds(val.kind))
        return UNKNOWN

    def _np_call(self, node: ast.Call, tail: str, env: Env) -> AVal:
        if tail == "where" and len(node.args) == 3:
            cond = self.eval(node.args[0], env)
            t = self.eval(node.args[1], _refine(env, cond.tcons))
            f = self.eval(node.args[2], _refine(env, cond.fcons))
            return join(t, f)
        if tail in ("asarray", "ascontiguousarray"):
            val = self.eval(node.args[0], env)
            kind = self._dtype_kind(self._kw(node, "dtype"))
            if kind is None and len(node.args) > 1:
                kind = self._dtype_kind(node.args[1])
            if kind is None or (val.is_num and val.kind == kind):
                return val
            return self._cast(node, val, kind)
        if tail in ("uint64", "int64"):
            val = self.eval(node.args[0], env) if node.args \
                else num("pyint", 0, 0)
            return self._cast(node, val, tail)
        if tail in ("float64", "float32", "float16"):
            val = self.eval(node.args[0], env) if node.args else NONE
            del val
            return self._cast(node, AVal("pyint"), "float64")
        if tail == "zeros":
            kind = self._dtype_kind(self._kw(node, "dtype"))
            if kind is None and len(node.args) > 1:
                kind = self._dtype_kind(node.args[1])
            if kind == "float64" or kind is None:
                return self._cast(node, num("pyint", 0, 0), "float64")
            return num(kind, 0, 0)
        if tail == "ones":
            kind = self._dtype_kind(self._kw(node, "dtype"))
            if kind is None and len(node.args) > 1:
                kind = self._dtype_kind(node.args[1])
            if kind == "float64" or kind is None:
                return self._cast(node, num("pyint", 1, 1), "float64")
            return num(kind, 1, 1)
        if tail == "full":
            kind = self._dtype_kind(self._kw(node, "dtype"))
            if kind is None and len(node.args) > 2:
                kind = self._dtype_kind(node.args[2])
            fill = self.eval(node.args[1], env) \
                if len(node.args) > 1 else UNKNOWN
            if kind is None:
                kind = fill.kind if fill.is_num else None
            if kind == "float64" or kind is None:
                return self._cast(node, fill, "float64")
            return self._cast(node, fill, kind)
        if tail == "empty":
            kind = self._dtype_kind(self._kw(node, "dtype"))
            if kind is None and len(node.args) > 1:
                kind = self._dtype_kind(node.args[1])
            if kind == "float64" or kind is None:
                return self._cast(node, num("pyint", 0, 0), "float64")
            return bot(kind)
        if tail == "arange":
            n = self.eval(node.args[0], env) if node.args else UNKNOWN
            hi = min(n.hi - 1, I64_MAX) if n.is_num else I64_MAX
            return num("int64", 0, max(hi, 0))
        if tail in ("minimum", "maximum") and len(node.args) == 2:
            a = self.eval(node.args[0], env)
            b = self.eval(node.args[1], env)
            if not (a.is_num and b.is_num):
                return UNKNOWN
            kind = _join_kind(a.kind, b.kind) or "pyint"
            if tail == "minimum":
                return num(kind, min(a.lo, b.lo), min(a.hi, b.hi))
            return num(kind, max(a.lo, b.lo), max(a.hi, b.hi))
        if tail == "cumsum":
            val = self.eval(node.args[0], env)
            out = self._reduction(node, val, "np.cumsum")
            out_kw = self._kw(node, "out")
            if out_kw is not None:
                root = _root_name(out_kw)
                if root and root in env:
                    env[root] = join(env[root], out)
            return out
        if tail == "add.at":
            if len(node.args) == 3:
                target = self.eval(node.args[0], env)
                self.eval(node.args[1], env)
                vals = self.eval(node.args[2], env)
                if target.role != "acc" and vals.role != "acc":
                    self.emit("RL013", node,
                              f"np.add.at scatter-accumulate in "
                              f"{self.where()} into a non-acc array "
                              f"(values {vals.iv() if vals.is_num else vals.kind}): "
                              f"repeated targets make the cell sum "
                              f"unbounded; declare the buffer "
                              f"i64_acc()")
            return NONE
        if tail == "add.reduceat":
            val = self.eval(node.args[0], env)
            if len(node.args) > 1:
                self.eval(node.args[1], env)
            return self._reduction(node, val, "np.add.reduceat")
        if tail == "repeat":
            val = self.eval(node.args[0], env)
            if len(node.args) > 1:
                self.eval(node.args[1], env)
            if val.is_num:
                return replace(val, total=None, tcons=(), fcons=())
            return val
        if tail == "stack":
            if node.args and isinstance(node.args[0],
                                        (ast.List, ast.Tuple)):
                vals = [self.eval(e, env)
                        for e in node.args[0].elts]
                out = vals[0] if vals else UNKNOWN
                for v in vals[1:]:
                    out = join(out, v)
                return out
            val = self.eval(node.args[0], env) if node.args \
                else UNKNOWN
            if val.kind == "tuple" and val.elems:
                out = val.elems[0]
                for v in val.elems[1:]:
                    out = join(out, v)
                return out
            return val
        if tail == "broadcast_to":
            return self.eval(node.args[0], env)
        if tail == "broadcast_arrays":
            return AVal("tuple", elems=tuple(
                self.eval(a, env) for a in node.args))
        if tail == "argmax":
            self.eval(node.args[0], env)
            return num("int64", 0, I64_MAX)
        if tail in ("any", "all"):
            self.eval(node.args[0], env)
            return num("bool", 0, 1)
        if tail == "frexp":
            val = self.eval(node.args[0], env)
            if val.kind != "float64":
                self.emit("RL015", node,
                          f"np.frexp in {self.where()} on a "
                          f"non-float64 value is unmodeled")
                return AVal("tuple", elems=(UNKNOWN, UNKNOWN))
            if val.fb is not None:
                exp = num("int64", val.fb[0], val.fb[1])
            else:
                exp = num("int64", -1074, 1024)
            return AVal("tuple", elems=(AVal("float64"), exp))
        if tail == "bool_":
            val = self.eval(node.args[0], env) if node.args \
                else num("pyint", 0, 0)
            return self._cast(node, val, "bool")
        self.emit("RL015", node,
                  f"unmodeled numpy operation np.{tail} in "
                  f"{self.where()}: the numeric analyzer cannot bound "
                  f"its result (extend the model or restructure)")
        for a in node.args:
            self.eval(a, env)
        return UNKNOWN

    _ID_METHODS = frozenset({"ravel", "reshape", "copy",
                             "squeeze", "flatten"})

    def _method_call(self, node: ast.Call, func: ast.Attribute,
                     env: Env) -> AVal:
        name = func.attr
        obj = self.eval(func.value, env)
        if name == "astype":
            kind = self._dtype_kind(node.args[0]) if node.args \
                else None
            return self._cast(node, obj, kind)
        if name in self._ID_METHODS:
            return replace(obj, tcons=(), fcons=()) if obj.is_num \
                else obj
        if name in ("any", "all"):
            return num("bool", 0, 1)
        if name == "sum":
            return self._reduction(node, obj, f".{name}()")
        if name == "update":
            return NONE
        if name == "item":
            if obj.is_num:
                return num("pyint", obj.lo, obj.hi,
                           nonzero=obj.nonzero)
            return UNKNOWN
        if obj.is_num:
            self.emit("RL015", node,
                      f"unmodeled array method .{name}() in "
                      f"{self.where()}")
        return UNKNOWN

    # -- subscripts ----------------------------------------------------
    def _subscript_load(self, node: ast.Subscript, env: Env) -> AVal:
        base = self.eval(node.value, env)
        idx = node.slice
        # Boolean-mask refinement: x[mask] keeps only elements where
        # the mask holds, so the mask's refinements on x apply.
        if isinstance(idx, ast.Name) and isinstance(node.value,
                                                    ast.Name):
            mask = env.get(idx.id)
            if mask is not None and mask.kind == "bool" and mask.tcons:
                refined = _refine({node.value.id: base}, mask.tcons)
                return refined[node.value.id]
        if isinstance(idx, ast.Name) or isinstance(idx, (ast.Tuple,
                                                         ast.Slice)):
            for sub in ast.walk(idx):
                if isinstance(sub, (ast.Name, ast.Call, ast.BinOp,
                                    ast.Subscript)) and sub is not idx:
                    self.eval(sub, env)
        if base.kind == "tuple" and base.elems:
            if isinstance(idx, ast.Constant) \
                    and isinstance(idx.value, int):
                try:
                    return base.elems[idx.value]
                except IndexError:
                    return UNKNOWN
            out = base.elems[0]
            for v in base.elems[1:]:
                out = join(out, v)
            return out
        if base.kind == "shape":
            if isinstance(idx, ast.Slice):
                return AVal("shape")
            return num("pyint", 0, INF)
        if base.is_num:
            if isinstance(idx, ast.Constant) or isinstance(
                    idx, (ast.Slice, ast.Tuple, ast.Name)) \
                    or isinstance(idx, (ast.BinOp, ast.Subscript,
                                        ast.UnaryOp, ast.Call)):
                if isinstance(idx, (ast.BinOp, ast.Subscript,
                                    ast.Call, ast.UnaryOp)):
                    self.eval(idx, env)
                return replace(base, tcons=(), fcons=())
        return UNKNOWN if not base.is_num \
            else replace(base, tcons=(), fcons=())

    def _subscript_store(self, target: ast.Subscript, value: AVal,
                         env: Env, node: ast.AST,
                         augadd: bool = False) -> None:
        root = _root_name(target)
        self.eval(target.value, env) if not isinstance(
            target.value, ast.Name) else None
        if isinstance(target.slice, (ast.BinOp, ast.Subscript,
                                     ast.Call, ast.Name, ast.Tuple)):
            self.eval(target.slice, env)
        if root is None or root not in env:
            return
        base = env[root]
        if not base.is_num:
            return
        if augadd and (base.role == "acc" or value.role == "acc"):
            env[root] = replace(base, role="acc", tcons=(), fcons=())
            return
        if augadd:
            value = self.arith(node, ast.Add,
                               replace(base, tcons=(), fcons=()),
                               value)
        if value.kind == "unknown":
            env[root] = UNKNOWN
            return
        if not value.is_num:
            return
        klo, khi = kind_bounds(base.kind)
        if not value.is_empty and (value.lo < klo or value.hi > khi):
            self.emit("RL013", node,
                      f"store into {base.kind} array {root!r} in "
                      f"{self.where()}: value {value.iv()} does not "
                      f"fit {base.kind} [{klo}, {khi}]")
            value = num(base.kind, klo, khi)
        coerced = num(base.kind, value.lo, value.hi, role=value.role,
                      nonzero=value.nonzero) if not value.is_empty \
            else bot(base.kind)
        env[root] = join(base, coerced)

    # -- statements ----------------------------------------------------
    def exec_block(self, stmts: Sequence[ast.stmt],
                   env: Env) -> Optional[Env]:
        """Run ``stmts``; None means all paths left the block."""
        cur: Optional[Env] = env
        for stmt in stmts:
            if cur is None:
                break
            cur = self.exec_stmt(stmt, cur)
        return cur

    def exec_stmt(self, stmt: ast.stmt, env: Env) -> Optional[Env]:
        self.tick()
        if isinstance(stmt, ast.Return):
            val = self.eval(stmt.value, env) if stmt.value else NONE
            self.returns.append(val)
            return None
        if isinstance(stmt, ast.Assign):
            value = self.eval(stmt.value, env)
            for target in stmt.targets:
                self._bind(target, value, env, stmt)
            return env
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.eval(stmt.value, env)
                self._bind(stmt.target, value, env, stmt)
            return env
        if isinstance(stmt, ast.AugAssign):
            if isinstance(stmt.target, ast.Name):
                cur = env.get(stmt.target.id, UNKNOWN)
                rhs = self.eval(stmt.value, env)
                env[stmt.target.id] = self.arith(
                    stmt, type(stmt.op),
                    replace(cur, tcons=(), fcons=())
                    if cur.is_num else cur, rhs)
            elif isinstance(stmt.target, ast.Subscript):
                rhs = self.eval(stmt.value, env)
                if isinstance(stmt.op, ast.Add):
                    self._subscript_store(stmt.target, rhs, env, stmt,
                                          augadd=True)
                else:
                    self._subscript_store(stmt.target, UNKNOWN, env,
                                          stmt)
            return env
        if isinstance(stmt, ast.Expr):
            self.eval(stmt.value, env)
            return env
        if isinstance(stmt, ast.If):
            cond = self.eval(stmt.test, env)
            tenv = _refine(env, cond.tcons)
            fenv = _refine(env, cond.fcons)
            tout = self.exec_block(stmt.body, dict(tenv))
            fout = self.exec_block(stmt.orelse, dict(fenv)) \
                if stmt.orelse else dict(fenv)
            alive = [e for e in (tout, fout) if e is not None]
            if not alive:
                return None
            return join_envs(alive)
        if isinstance(stmt, (ast.While, ast.For)):
            return self._exec_loop(stmt, env)
        if isinstance(stmt, ast.Continue):
            if self.loops:
                self.loops[-1].continues.append(dict(env))
            return None
        if isinstance(stmt, ast.Break):
            if self.loops:
                self.loops[-1].breaks.append(dict(env))
            return None
        if isinstance(stmt, (ast.Pass, ast.Import, ast.ImportFrom,
                             ast.Global, ast.Nonlocal,
                             ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return env
        if isinstance(stmt, ast.Raise):
            return None
        if isinstance(stmt, ast.Assert):
            self.eval(stmt.test, env)
            cond = self.eval(stmt.test, env)
            return _refine(env, cond.tcons)
        if isinstance(stmt, ast.Try):
            out = self.exec_block(stmt.body, env)
            return out if out is not None else env
        if isinstance(stmt, ast.With):
            return self.exec_block(stmt.body, env)
        if isinstance(stmt, ast.Delete):
            return env
        return env

    def _bind(self, target: ast.AST, value: AVal, env: Env,
              stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, ast.Tuple):
            if value.kind == "tuple" and value.elems \
                    and len(value.elems) == len(target.elts):
                for sub, v in zip(target.elts, value.elems):
                    self._bind(sub, v, env, stmt)
            else:
                elem = replace(value, tcons=(), fcons=()) \
                    if value.is_num else value
                for sub in target.elts:
                    self._bind(sub, elem, env, stmt)
        elif isinstance(target, ast.Subscript):
            self._subscript_store(target, value, env, stmt)
        elif isinstance(target, ast.Starred):
            self._bind(target.value, UNKNOWN, env, stmt)

    def _exec_loop(self, stmt, env: Env) -> Env:
        is_while = isinstance(stmt, ast.While)
        init = dict(env)
        head = dict(env)
        pinned: Env = {}
        all_breaks: List[Env] = []
        last_cond = None
        for it in range(8):
            rec = LoopRec()
            self.loops.append(rec)
            benv = dict(head)
            if is_while:
                last_cond = self.eval(stmt.test, benv)
                benv = _refine(benv, last_cond.tcons)
            else:
                iterv = self.eval(stmt.iter, benv)
                self._bind(stmt.target, self._element_of(iterv), benv,
                           stmt)
            try:
                out = self.exec_block(stmt.body, benv)
            finally:
                self.loops.pop()
            all_breaks.extend(rec.breaks)
            candidates = [head]
            if out is not None:
                candidates.append(out)
            candidates.extend(rec.continues)
            nxt = join_envs(candidates)
            for name, v in pinned.items():
                nxt[name] = v
            if nxt == head:
                break
            if it >= 3:
                for name in set(nxt):
                    old = head.get(name)
                    new = nxt.get(name)
                    if old == new or new is None:
                        continue
                    widened, pin = self._widen(name, init.get(name),
                                               old, new, stmt, head)
                    nxt[name] = widened
                    if pin:
                        pinned[name] = widened
            head = nxt
        after_candidates = []
        if is_while and last_cond is not None:
            after_candidates.append(_refine(head, last_cond.fcons))
        else:
            after_candidates.append(head)
        after_candidates.extend(all_breaks)
        return join_envs(after_candidates)

    def _element_of(self, iterv: AVal) -> AVal:
        if iterv.kind == "range":
            return num("pyint", iterv.lo, iterv.hi)
        if iterv.kind == "tuple" and iterv.elems:
            out = iterv.elems[0]
            for v in iterv.elems[1:]:
                out = join(out, v)
            return out
        if iterv.is_num:
            return replace(iterv, tcons=(), fcons=())
        return UNKNOWN

    def _widen(self, name: str, initval: Optional[AVal],
               old: Optional[AVal], new: AVal, loopstmt,
               head: Env) -> Tuple[AVal, bool]:
        """Widen one unstable loop variable.

        An int accumulator whose only in-loop growth is ``name += u``
        with ``u`` drawn from a ``total=``-bounded array is pinned at
        ``init + total`` (the contract's externally-argued segment-sum
        invariant); everything else widens the moving bound to its
        dtype range (pyint counters widen to +/-inf, which carries no
        representability obligation).
        """
        if not new.is_num:
            return new, False
        if initval is not None and initval.is_num \
                and not initval.is_empty:
            for sub in ast.walk(loopstmt):
                if isinstance(sub, ast.AugAssign) \
                        and isinstance(sub.op, ast.Add) \
                        and isinstance(sub.target, ast.Name) \
                        and sub.target.id == name:
                    self.quiet += 1
                    try:
                        u = self.eval(sub.value, head)
                    finally:
                        self.quiet -= 1
                    if u.is_num and u.total is not None and u.lo >= 0:
                        return num(new.kind,
                                   min(initval.lo, new.lo),
                                   initval.hi + u.total,
                                   role=new.role), True
        klo, khi = kind_bounds(new.kind)
        lo = new.lo if old is not None and old.is_num \
            and new.lo == old.lo else klo
        hi = new.hi if old is not None and old.is_num \
            and new.hi == old.hi else khi
        return num(new.kind, lo, hi, role=new.role), False


def _root_name(node: ast.AST) -> Optional[str]:
    """The variable a store target ultimately writes through."""
    while True:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        else:
            return None


# ---------------------------------------------------------------------------
# Kernel + program analysis
# ---------------------------------------------------------------------------

@dataclass
class KernelResult:
    kernel: str
    tier: str
    path: str
    line: int
    status: str                 # proved | violated | contract-error
    declared_return: str
    derived_return: str
    args: Dict[str, str]
    escapes_declared: List[str]
    escapes_used: List[str]
    finding_count: int

    def to_json(self) -> Dict[str, object]:
        return {
            "kernel": self.kernel, "tier": self.tier,
            "path": self.path, "line": self.line,
            "status": self.status,
            "declared_return": self.declared_return,
            "derived_return": self.derived_return,
            "args": dict(self.args),
            "escapes_declared": list(self.escapes_declared),
            "escapes_used": list(self.escapes_used),
            "findings": self.finding_count,
        }


@dataclass
class Analysis:
    findings: List[Finding] = field(default_factory=list)
    results: List[KernelResult] = field(default_factory=list)

    def findings_for(self, rule: str) -> List[Finding]:
        return [f for f in self.findings if f.rule == rule]

    def verdicts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for res in self.results:
            out[res.status] = out.get(res.status, 0) + 1
        return out

    def to_json(self) -> Dict[str, object]:
        from repro.lint import RULE_PACK_VERSION

        kernels: Dict[str, Dict[str, object]] = {}
        for res in sorted(self.results,
                          key=lambda r: (r.kernel, r.tier)):
            kernels.setdefault(res.kernel, {})[res.tier] = \
                res.to_json()
        return {
            "rule_pack": RULE_PACK_VERSION,
            "kernels": kernels,
            "verdicts": self.verdicts(),
            "findings": [f.render() for f in sorted(
                self.findings,
                key=lambda f: (f.path, f.line, f.rule))],
        }


def _describe_aval(v: AVal) -> str:
    if v.kind == "none":
        return "None"
    if not v.is_num:
        return v.kind
    if v.is_empty:
        return f"{v.kind}[] (never produced)"
    tag = f" {v.role}" if v.role != "value" else ""
    return f"{v.kind}{v.iv()}{tag}"


def analyze_kernel(mod: ModuleInfo, reg: Registration,
                   analysis: Analysis) -> None:
    func = reg.func
    contract = reg.contract
    ctx = mod.ctx
    if reg.contract_error is not None:
        analysis.findings.append(ctx.finding(
            "RL016", reg.contract_node or func,
            f"contract on kernel {reg.kernel!r} ({reg.tier} tier) is "
            f"not statically evaluable: {reg.contract_error}"))
        analysis.results.append(KernelResult(
            kernel=reg.kernel, tier=reg.tier, path=ctx.path,
            line=func.lineno, status="contract-error",
            declared_return="?", derived_return="?", args={},
            escapes_declared=[], escapes_used=[], finding_count=1))
        return
    params = [a.arg for a in func.args.args]
    if set(params) != set(contract.args):
        analysis.findings.append(ctx.finding(
            "RL016", reg.contract_node or func,
            f"contract on kernel {reg.kernel!r} ({reg.tier} tier) "
            f"declares args {sorted(contract.args)} but the function "
            f"signature is ({', '.join(params)}); the contract must "
            f"cover the parameters exactly"))
        analysis.results.append(KernelResult(
            kernel=reg.kernel, tier=reg.tier, path=ctx.path,
            line=func.lineno, status="contract-error",
            declared_return="?", derived_return="?", args={},
            escapes_declared=[], escapes_used=[], finding_count=1))
        return
    fr = Frame(mod, reg.kernel, reg.tier, contract)
    env: Env = {name: aval_from_spec(contract.args[name])
                for name in params}
    derived = "?"
    try:
        fell = fr.exec_block(func.body, env)
        declared = contract.returns
        rets = fr.returns
        vals = [r for r in rets if r.kind != "none"]
        may_none = (fell is not None) or any(
            r.kind == "none" for r in rets)
        if declared is None:
            derived = "None"
            for r in vals:
                fr.emit("RL014", func,
                        f"{fr.where()} returns "
                        f"{_describe_aval(r)} but its contract "
                        f"declares returns=None")
        else:
            dlo, dhi = declared.bounds()
            if vals:
                out = vals[0]
                for r in vals[1:]:
                    out = join(out, r)
            else:
                out = NONE
            derived = _describe_aval(out)
            if may_none:
                fr.emit("RL014", func,
                        f"{fr.where()} may fall through or return "
                        f"None, but its contract declares "
                        f"{declared.describe()}")
            if out.kind == "unknown":
                fr.emit("RL014", func,
                        f"{fr.where()} return interval is unknown "
                        f"(an unmodeled op or unresolved name "
                        f"upstream), so the declared "
                        f"{declared.describe()} cannot be proved")
            elif out.kind == "none":
                pass  # already reported via may_none
            elif not out.is_num:
                fr.emit("RL014", func,
                        f"{fr.where()} returns {_describe_aval(out)} "
                        f"where the contract declares "
                        f"{declared.describe()}")
            elif not out.is_empty:
                kind_ok = (out.kind == declared.dtype
                           or out.kind == "pyint")
                if not kind_ok:
                    fr.emit("RL014", func,
                            f"{fr.where()} returns dtype {out.kind} "
                            f"where the contract declares "
                            f"{declared.describe()}")
                elif dlo is not None and (out.lo < dlo
                                          or out.hi > dhi):
                    fr.emit("RL014", func,
                            f"{fr.where()} returns {out.kind}"
                            f"{out.iv()}, which is not contained in "
                            f"the declared {declared.describe()}")
    except _Budget:
        fr.emit("RL013", func,
                f"analysis budget exceeded in {fr.where()}: the "
                f"kernel's loop structure did not converge; simplify "
                f"or split the kernel")
    except RecursionError:  # pragma: no cover - defensive
        fr.emit("RL013", func,
                f"analysis recursion limit hit in {fr.where()}")
    analysis.findings.extend(fr.findings)
    analysis.results.append(KernelResult(
        kernel=reg.kernel, tier=reg.tier, path=ctx.path,
        line=func.lineno,
        status="proved" if not fr.findings else "violated",
        declared_return=(contract.returns.describe()
                         if contract.returns else "None"),
        derived_return=derived,
        args={n: s.describe() for n, s in sorted(
            contract.args.items())},
        escapes_declared=sorted(e.kind for e in contract.escapes),
        escapes_used=sorted(fr.used), finding_count=len(fr.findings)))


def _diff_contracts(a, b) -> str:
    """A one-line description of how two contracts disagree."""
    if set(a.args) != set(b.args):
        return (f"argument sets differ "
                f"({sorted(a.args)} vs {sorted(b.args)})")
    for name in sorted(a.args):
        if a.args[name] != b.args[name]:
            return (f"args[{name!r}] differs "
                    f"({a.args[name].describe()} vs "
                    f"{b.args[name].describe()})")
    if a.returns != b.returns:
        return (f"returns differs "
                f"({a.returns.describe() if a.returns else None} vs "
                f"{b.returns.describe() if b.returns else None})")
    if a.shape != b.shape:
        return f"shape differs ({a.shape!r} vs {b.shape!r})"
    if a.mutates != b.mutates:
        return f"mutates differs ({a.mutates!r} vs {b.mutates!r})"
    if a.escapes != b.escapes:
        return (f"escapes differ "
                f"({sorted(e.kind for e in a.escapes)} vs "
                f"{sorted(e.kind for e in b.escapes)})")
    return "contracts differ"


def analyze_contexts(contexts: Sequence[FileContext]) -> Analysis:
    analysis = Analysis()
    mods: List[ModuleInfo] = []
    for ctx in contexts:
        if "repro/kernels/" not in ctx.path.replace("\\", "/"):
            continue
        mod = scan_module(ctx)
        if mod.registrations:
            mods.append(mod)

    # RL016: once a file opts into contracts, every registration in it
    # must carry one (the real tier modules are always opted in).
    for mod in mods:
        if not any(r.contract is not None or r.contract_error
                   for r in mod.registrations):
            continue
        for reg in mod.registrations:
            if reg.contract is None and reg.contract_error is None:
                analysis.findings.append(mod.ctx.finding(
                    "RL016", reg.func,
                    f"kernel {reg.kernel!r} ({reg.tier} tier) has no "
                    f"@kernel_contract while other kernels in "
                    f"{mod.ctx.path} declare one; every registration "
                    f"in a contracted module needs its numeric "
                    f"contract"))

    # Per-kernel interval analysis.
    for mod in mods:
        for reg in mod.registrations:
            if reg.contract is not None or reg.contract_error:
                analyze_kernel(mod, reg, analysis)

    # Cross-tier agreement + stale-escape audit.
    by_kernel: Dict[str, Dict[str, Tuple[ModuleInfo,
                                         Registration]]] = {}
    for mod in mods:
        for reg in mod.registrations:
            by_kernel.setdefault(reg.kernel, {}).setdefault(
                reg.tier, (mod, reg))
    used_by: Dict[Tuple[str, str], Set[str]] = {}
    for res in analysis.results:
        used_by[(res.kernel, res.tier)] = set(res.escapes_used)
    for kernel in sorted(by_kernel):
        flavours = by_kernel[kernel]
        if len(flavours) < 2:
            continue
        np_mod, np_reg = flavours.get("numpy", (None, None))
        c_mod, c_reg = flavours.get("compiled", (None, None))
        if np_reg is None or c_reg is None:
            continue
        has_np = np_reg.contract is not None
        has_c = c_reg.contract is not None
        if has_np != has_c:
            mod, reg = (c_mod, c_reg) if has_np else (np_mod, np_reg)
            other = "numpy" if has_np else "compiled"
            analysis.findings.append(mod.ctx.finding(
                "RL016", reg.func,
                f"kernel {kernel!r}: the {other} tier declares a "
                f"@kernel_contract but the {reg.tier} tier does not; "
                f"both tiers must carry the identical contract"))
            continue
        if not has_np:
            continue
        if np_reg.contract.key() != c_reg.contract.key():
            analysis.findings.append(c_mod.ctx.finding(
                "RL016", c_reg.contract_node or c_reg.func,
                f"kernel {kernel!r} tier contracts disagree: "
                f"{_diff_contracts(np_reg.contract, c_reg.contract)}; "
                f"set_tier swaps implementations freely, so the "
                f"numeric contract must be identical on both tiers"))
        # Stale escapes: judged only with both tiers analyzed, since
        # an escape may legitimately fire on one tier only (the
        # compiled trailing-zeros core uses a shift loop, not frexp).
        declared = {e.kind for e in np_reg.contract.escapes}
        used = used_by.get((kernel, "numpy"), set()) \
            | used_by.get((kernel, "compiled"), set())
        for kind in sorted(declared - used):
            analysis.findings.append(np_mod.ctx.finding(
                "RL015", np_reg.contract_node or np_reg.func,
                f"kernel {kernel!r} declares a {kind!r} contract "
                f"escape that fires on neither tier; stale escapes "
                f"hide real lattice departures -- remove it or "
                f"restore the op it excused"))
    return analysis


def analyze_program(program: Program) -> Analysis:
    """The (cached) numeric analysis of a lint program."""
    cached = getattr(program, "_numeric_analysis", None)
    if cached is None:
        cached = analyze_contexts(program.contexts)
        program._numeric_analysis = cached
    return cached


def analyze_paths(paths: Sequence[str]) -> Analysis:
    """Analyze on-disk files/directories (the CLI + stamp entry)."""
    files = collect_files(paths)
    root = find_project_root(files[0] if files else Path.cwd())
    contexts = []
    for path in files:
        try:
            rel = path.resolve().relative_to(root.resolve())
            display = rel.as_posix()
        except ValueError:
            display = path.as_posix()
        contexts.append(make_context(
            display, path.read_text(encoding="utf-8")))
    return analyze_contexts(contexts)


# ---------------------------------------------------------------------------
# Rules
# ---------------------------------------------------------------------------

class NumericOverflow(Rule):
    id = "RL013"
    title = "numeric-overflow"
    rationale = ("every intermediate in a contracted kernel must fit "
                 "its dtype: the interval interpreter re-derives the "
                 "29/32-bit limb bounds instead of trusting comments")

    def check_program(self, program: Program) -> Iterable[Finding]:
        return analyze_program(program).findings_for(self.id)


class ReturnIntervalHolds(Rule):
    id = "RL014"
    title = "return-interval-holds"
    rationale = ("declared return intervals (canonical residues in "
                 "[0, p)) and call-site argument intervals must be "
                 "provable, not aspirational")

    def check_program(self, program: Program) -> Iterable[Finding]:
        return analyze_program(program).findings_for(self.id)


class NoUnmodeledEscape(Rule):
    id = "RL015"
    title = "no-unmodeled-escape"
    rationale = ("any op leaving the exact int64/uint64 lattice (the "
                 "frexp float64 trick) must be a declared, justified "
                 "contract escape -- and declared escapes must still "
                 "fire on some tier")

    def check_program(self, program: Program) -> Iterable[Finding]:
        return analyze_program(program).findings_for(self.id)


class CrossTierContractAgreement(Rule):
    id = "RL016"
    title = "cross-tier-contract-agreement"
    rationale = ("both tiers of a kernel must declare the identical "
                 "numeric contract (RL007's signature parity, "
                 "extended to semantics)")

    def check_program(self, program: Program) -> Iterable[Finding]:
        return analyze_program(program).findings_for(self.id)


NUMERIC_RULES = [NumericOverflow(), ReturnIntervalHolds(),
                 NoUnmodeledEscape(), CrossTierContractAgreement()]


# ---------------------------------------------------------------------------
# CLI: python -m repro.lint.numeric
# ---------------------------------------------------------------------------

def render_analysis(analysis: Analysis) -> str:
    lines = []
    for res in sorted(analysis.results,
                      key=lambda r: (r.kernel, r.tier)):
        mark = "ok " if res.status == "proved" else "FAIL"
        esc = ""
        if res.escapes_declared:
            esc = (f"  escapes {','.join(res.escapes_declared)}"
                   f" used {','.join(res.escapes_used) or '-'}")
        lines.append(f"  {mark} {res.kernel:<20} {res.tier:<8} "
                     f"returns {res.derived_return} "
                     f"(declared {res.declared_return}){esc}")
    for f in sorted(analysis.findings,
                    key=lambda f: (f.path, f.line, f.rule)):
        lines.append(f.render())
    counts = analysis.verdicts()
    proved = counts.get("proved", 0)
    total = len(analysis.results)
    lines.append(f"{proved}/{total} kernel-tier proofs clean, "
                 f"{len(analysis.findings)} finding(s)")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    import argparse
    import json
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.lint.numeric",
        description="Interval/dtype abstract interpreter for the "
                    "kernel tiers (rules RL013-RL016).")
    parser.add_argument("paths", nargs="*",
                        help="files or directories holding kernel "
                             "tier modules (default: the repo's "
                             "src/repro/kernels)")
    parser.add_argument("--intervals-report", metavar="PATH",
                        help="dump per-kernel derived intervals and "
                             "verdicts as JSON to PATH ('-' for "
                             "stdout)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt")
    args = parser.parse_args(argv)

    paths = args.paths
    if not paths:
        root = find_project_root(Path.cwd())
        kernels = root / "src" / "repro" / "kernels"
        if not kernels.is_dir():
            kernels = find_project_root(
                Path(__file__)) / "src" / "repro" / "kernels"
        paths = [str(kernels)]
    try:
        analysis = analyze_paths(paths)
    except (FileNotFoundError, ValueError, SyntaxError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.fmt == "json":
        print(json.dumps(analysis.to_json(), indent=2))
    else:
        print(render_analysis(analysis))
    if args.intervals_report:
        text = json.dumps(analysis.to_json(), indent=2) + "\n"
        if args.intervals_report == "-":
            print(text, end="")
        else:
            with open(args.intervals_report, "w",
                      encoding="utf-8") as fh:
                fh.write(text)
    return 1 if analysis.findings else 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
