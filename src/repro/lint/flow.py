"""Whole-program flow analysis: call graph + per-function facts.

Built **once per lint run** from the already-parsed file contexts and
shared by every interprocedural rule (RL008..RL011) and the protocol
model checker, so the project-wide pass stays one AST walk per file.
Pure stdlib ``ast`` -- no type inference.  Resolution is by *name*:

* ``self.helper(...)`` resolves to a method named ``helper`` on the
  same class (or, failing that, any same-named method in the project);
* ``module_func(...)`` / ``obj.func(...)`` resolve to every
  project-level function/method with that terminal name.

That is a deliberate over-approximation (one name, many candidates ->
edges to all of them); the rules built on top are designed so an extra
edge can only make them *more* conservative, never silently blind.
``docs/lint-rules.md`` states per rule what the approximation misses.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple


def _terminal_name(node: ast.AST) -> Optional[str]:
    """Dotted tail of a call target: ``a.b.c(...)`` -> ``c``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _own_nodes(func: ast.AST) -> Iterable[ast.AST]:
    """Walk ``func`` excluding bodies of nested function/class defs."""
    skip: Set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)) and node is not func:
            for sub in ast.walk(node):
                if sub is not node:
                    skip.add(id(sub))
    for node in ast.walk(func):
        if id(node) not in skip:
            yield node


@dataclass
class CallSite:
    """One call expression inside a function body."""

    name: str                  # terminal callee name
    line: int
    on_self: bool              # spelled ``self.name(...)``
    attribute: bool = False    # spelled ``<expr>.name(...)``


@dataclass
class FunctionInfo:
    """Everything the flow rules need to know about one function."""

    qname: str                 # "path::Class.name" or "path::name"
    name: str
    path: str
    cls: Optional[str]
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    calls: List[CallSite] = field(default_factory=list)
    decorators: FrozenSet[str] = frozenset()
    #: Lines of direct ``charge_*`` calls in this body (RL008).
    charge_lines: Tuple[int, ...] = ()
    #: ``(op_name, line)`` of direct bulk backend/kernel op calls.
    bulk_calls: Tuple[Tuple[str, int], ...] = ()

    @property
    def charges(self) -> bool:
        return bool(self.charge_lines)

    @property
    def public(self) -> bool:
        return not self.name.startswith("_")


class FlowGraph:
    """Project-wide call graph over every linted file.

    ``functions`` maps qualified names to :class:`FunctionInfo`;
    ``callees(qname)`` yields resolved project-internal edges.  Build
    time and size are exposed for ``--stats`` / ``--graph``.
    """

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self._by_name: Dict[str, List[str]] = {}
        self._by_class_method: Dict[Tuple[str, str], List[str]] = {}
        self.edge_count = 0

    # -- construction ----------------------------------------------------
    @classmethod
    def build(cls, contexts: Sequence, bulk_ops: FrozenSet[str]
              ) -> "FlowGraph":
        graph = cls()
        for ctx in contexts:
            graph._index_module(ctx.path, ctx.tree, bulk_ops)
        for info in graph.functions.values():
            graph.edge_count += len(list(graph.callees(info.qname)))
        return graph

    def _index_module(self, path: str, tree: ast.Module,
                      bulk_ops: FrozenSet[str]) -> None:
        def visit(body, cls_name: Optional[str]) -> None:
            for node in body:
                if isinstance(node, ast.ClassDef):
                    visit(node.body, node.name)
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    self._index_function(path, node, cls_name, bulk_ops)
                    # Nested defs are indexed too (workers define
                    # closures like run_op); attributed to the same
                    # class scope.
                    visit(node.body, cls_name)
        visit(tree.body, None)

    def _index_function(self, path: str, node, cls_name: Optional[str],
                        bulk_ops: FrozenSet[str]) -> None:
        qual = f"{cls_name}.{node.name}" if cls_name else node.name
        qname = f"{path}::{qual}"
        if qname in self.functions:  # redefinition: keep the last
            qname = f"{qname}@{node.lineno}"
        calls: List[CallSite] = []
        charge_lines: List[int] = []
        bulk_calls: List[Tuple[int, str]] = []
        for sub in _own_nodes(node):
            if not isinstance(sub, ast.Call):
                continue
            name = _terminal_name(sub.func)
            if name is None:
                continue
            is_attr = isinstance(sub.func, ast.Attribute)
            on_self = (is_attr
                       and isinstance(sub.func.value, ast.Name)
                       and sub.func.value.id == "self")
            calls.append(CallSite(name=name, line=sub.lineno,
                                  on_self=on_self, attribute=is_attr))
            if name.startswith("charge_"):
                charge_lines.append(sub.lineno)
            if name in bulk_ops:
                bulk_calls.append((sub.lineno, name))
        decorators: Set[str] = set()
        for dec in node.decorator_list:
            target = dec.func if isinstance(dec, ast.Call) else dec
            dname = _terminal_name(target)
            if dname:
                decorators.add(dname)
        info = FunctionInfo(
            qname=qname, name=node.name, path=path, cls=cls_name,
            node=node, calls=calls, decorators=frozenset(decorators),
            charge_lines=tuple(sorted(charge_lines)),
            bulk_calls=tuple((n, ln) for ln, n in sorted(bulk_calls)),
        )
        self.functions[qname] = info
        self._by_name.setdefault(node.name, []).append(qname)
        if cls_name:
            self._by_class_method.setdefault(
                (cls_name, node.name), []).append(qname)

    # -- resolution ------------------------------------------------------

    #: Builtin-collection method names.  ``health.update(...)`` must not
    #: resolve to every project method named ``update``: a non-self
    #: attribute call with one of these names is overwhelmingly a
    #: dict/list/set operation, and the false edges it would add connect
    #: *everything* to *everything* (one ``dict.update`` in a metrics
    #: helper linked the whole session layer to the sampler hot path).
    #: Self-calls and bare-name calls still resolve normally.
    AMBIGUOUS_METHODS = frozenset({
        "update", "get", "pop", "add", "append", "extend", "remove",
        "discard", "clear", "keys", "values", "items", "copy", "insert",
        "count", "index", "sort", "join", "split", "close", "send",
        "recv", "put", "setdefault",
    })

    def resolve(self, caller: FunctionInfo,
                site: CallSite) -> List[FunctionInfo]:
        """Project-internal candidates for one call site."""
        if site.on_self and caller.cls:
            same_class = self._by_class_method.get((caller.cls, site.name))
            if same_class:
                return [self.functions[q] for q in same_class]
        if not site.on_self and site.attribute \
                and site.name in self.AMBIGUOUS_METHODS:
            return []
        return [self.functions[q]
                for q in self._by_name.get(site.name, ())]

    def callees(self, qname: str) -> Iterable[Tuple[CallSite, FunctionInfo]]:
        info = self.functions.get(qname)
        if info is None:
            return
        seen: Set[Tuple[int, str]] = set()
        for site in info.calls:
            for target in self.resolve(info, site):
                key = (site.line, target.qname)
                if key not in seen:
                    seen.add(key)
                    yield site, target

    # -- queries ---------------------------------------------------------
    def uncharged_bulk_paths(self, entry: FunctionInfo,
                             max_depth: int = 8
                             ) -> List[Tuple[List[FunctionInfo], Tuple[str, int]]]:
        """Call paths from ``entry`` to a bulk-op call that cross no
        ``charge_*`` call anywhere along the chain.

        Returns ``(path, (op_name, op_line))`` per offending bulk call
        site, one witness path each (the shortest found).  A function
        that itself charges terminates the search below it: everything
        it reaches is covered by its charge.
        """
        out: List[Tuple[List[FunctionInfo], Tuple[str, int]]] = []
        reported: Set[Tuple[str, int]] = set()

        def walk(info: FunctionInfo, path: List[FunctionInfo],
                 depth: int) -> None:
            if info.charges:
                return  # this frame charges: the whole subtree is paid
            for op_name, op_line in info.bulk_calls:
                key = (info.qname, op_line)
                if key not in reported:
                    reported.add(key)
                    out.append((path + [info], (op_name, op_line)))
            if depth >= max_depth:
                return
            for site, target in self.callees(info.qname):
                if target.qname == info.qname:
                    continue
                if any(target.qname == seen.qname for seen in path):
                    continue  # cycle
                walk(target, path + [info], depth + 1)

        walk(entry, [], 0)
        # Attribute each finding to its entry; drop paths whose bulk
        # site is the entry itself only when the entry charges (handled
        # above by the charges gate).
        return out

    def to_json(self) -> Dict[str, object]:
        """A serializable dump of the graph (``--graph``)."""
        nodes = []
        edges = []
        for qname in sorted(self.functions):
            info = self.functions[qname]
            nodes.append({
                "qname": qname,
                "path": info.path,
                "line": info.node.lineno,
                "class": info.cls,
                "charges": info.charges,
                "bulk_calls": [list(b) for b in info.bulk_calls],
                "decorators": sorted(info.decorators),
            })
            for site, target in self.callees(qname):
                edges.append({"caller": qname, "callee": target.qname,
                              "line": site.line})
        return {"nodes": nodes, "edges": edges,
                "functions": len(nodes), "call_edges": len(edges)}


# ---------------------------------------------------------------------------
# Per-function leak-path analysis (RL009)
# ---------------------------------------------------------------------------

#: Method names that release a shared-memory handle.
RELEASE_METHODS = frozenset({"close", "unlink"})
#: Call names that register the handle with a tracked owner.
REGISTER_CALLS = frozenset({"append", "add", "register"})


@dataclass
class LeakPath:
    """One execution path on which a handle escapes unreleased."""

    var: str
    create_line: int
    escape_line: int
    kind: str  # "exception" | "fall-through"
    detail: str


def shm_leak_paths(func) -> List[LeakPath]:
    """Paths on which a ``SharedMemory(create=True)`` local leaks.

    A statement-level path walk (not a full CFG): the handle becomes
    *safe* when it is closed/unlinked, returned, stored into an
    attribute/subscript, or passed to an ``append``/``add``/``register``
    call.  Any other call expression executed while the handle is live
    **may raise**; unless an enclosing ``try`` has a handler or
    ``finally`` that releases the handle (or the raise is re-raised
    *after* releasing), that exception edge leaks the segment.  Falling
    off the end of the function with a live, unregistered handle leaks
    on the normal edge too.
    """
    creations: Dict[str, int] = {}
    for node in _own_nodes(func):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call) \
                and _terminal_name(node.value.func) == "SharedMemory":
            if any(kw.arg == "create" and isinstance(kw.value, ast.Constant)
                   and kw.value.value is True
                   for kw in node.value.keywords):
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    creations[target.id] = node.lineno
    if not creations:
        return []

    leaks: List[LeakPath] = []

    def releases(stmts, var: str) -> bool:
        """Do ``stmts`` (a handler/finally body) release ``var``?"""
        for stmt in stmts:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    name = _terminal_name(sub.func) or ""
                    if name in RELEASE_METHODS and isinstance(
                            sub.func, ast.Attribute) and isinstance(
                            sub.func.value, ast.Name) \
                            and sub.func.value.id == var:
                        return True
                    # A bare self.close()-style call releases every
                    # registered handle; only trust it for the cleanup
                    # hints convention.
                    if name in RELEASE_METHODS or "release" in name:
                        return True
        return False

    def stmt_makes_safe(stmt, var: str) -> bool:
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Call):
                name = _terminal_name(sub.func) or ""
                if name in RELEASE_METHODS and isinstance(
                        sub.func, ast.Attribute) and isinstance(
                        sub.func.value, ast.Name) \
                        and sub.func.value.id == var:
                    return True
                if name in REGISTER_CALLS and any(
                        isinstance(arg, ast.Name) and arg.id == var
                        for arg in sub.args):
                    return True
            if isinstance(sub, ast.Assign):
                used = {n.id for n in ast.walk(sub.value)
                        if isinstance(n, ast.Name)}
                if var in used and any(
                        isinstance(t, (ast.Attribute, ast.Subscript))
                        for t in sub.targets):
                    return True
            if isinstance(sub, ast.Return) and sub.value is not None:
                used = {n.id for n in ast.walk(sub.value)
                        if isinstance(n, ast.Name)}
                if var in used:
                    return True
        return False

    def stmt_may_raise(stmt, var: str) -> Optional[int]:
        """Line of the first call in ``stmt`` that may raise while the
        handle is live (the safe-making call itself is exempt)."""
        for sub in ast.walk(stmt):
            if isinstance(sub, ast.Raise):
                return sub.lineno
            if isinstance(sub, ast.Call):
                name = _terminal_name(sub.func) or ""
                if name in RELEASE_METHODS or name in REGISTER_CALLS:
                    continue
                if name == "SharedMemory":
                    continue  # the creation itself
                return sub.lineno
        return None

    def walk_body(body, var: str, live: bool, created: bool,
                  guards: List[tuple]) -> Tuple[bool, bool]:
        """Walk a statement list; returns (live, created) at its end.

        ``guards`` is the stack of enclosing ``(handler_releases,
        finally_releases)`` facts for this variable.
        """
        for stmt in body:
            if isinstance(stmt, ast.Assign) \
                    and isinstance(stmt.value, ast.Call) \
                    and _terminal_name(stmt.value.func) == "SharedMemory" \
                    and isinstance(stmt.targets[0], ast.Name) \
                    and stmt.targets[0].id == var:
                live, created = True, True
                continue
            if not created:
                # Before the creation nothing can leak this var.
                if isinstance(stmt, ast.Try):
                    live, created = walk_body(
                        stmt.body, var, live, created, guards)
                    for handler in stmt.handlers:
                        walk_body(handler.body, var, live, created, guards)
                    live, created = walk_body(
                        stmt.orelse, var, live, created, guards)
                    live, created = walk_body(
                        stmt.finalbody, var, live, created, guards)
                elif isinstance(stmt, (ast.If, ast.For, ast.While,
                                       ast.With)):
                    bodies = [stmt.body, getattr(stmt, "orelse", [])]
                    for sub_body in bodies:
                        live, created = walk_body(
                            sub_body, var, live, created, guards)
                continue
            if not live:
                continue
            if stmt_makes_safe(stmt, var):
                live = False
                continue
            if isinstance(stmt, ast.Try):
                handler_safe = any(releases(h.body, var)
                                   for h in stmt.handlers) \
                    and len(stmt.handlers) > 0
                final_safe = releases(stmt.finalbody, var)
                inner = guards + [(handler_safe, final_safe)]
                live, created = walk_body(stmt.body, var, live, created,
                                          inner)
                for handler in stmt.handlers:
                    walk_body(handler.body, var, live, created, guards)
                live, created = walk_body(stmt.orelse, var, live,
                                          created, inner)
                live, created = walk_body(stmt.finalbody, var, live,
                                          created, guards)
                continue
            if isinstance(stmt, (ast.If, ast.For, ast.While, ast.With)):
                branch_live = live
                for sub_body in [stmt.body, getattr(stmt, "orelse", [])]:
                    sub_live, created = walk_body(sub_body, var, live,
                                                  created, guards)
                    branch_live = branch_live and sub_live
                # Conservative: live unless *every* branch made it safe
                # (the straight-line branch keeps it live anyway).
                live = branch_live
                continue
            raise_line = stmt_may_raise(stmt, var)
            if raise_line is not None and not any(
                    h or f for h, f in guards):
                leaks.append(LeakPath(
                    var=var, create_line=creations[var],
                    escape_line=raise_line, kind="exception",
                    detail=(f"a call on line {raise_line} may raise "
                            f"while {var!r} is live and no enclosing "
                            f"try releases it"),
                ))
                # Report once per creation; keep walking for the
                # fall-through check but stop duplicating.
                live = False
        return live, created

    for var, line in creations.items():
        live, created = walk_body(func.body, var, False, False, [])
        if live and created:
            leaks.append(LeakPath(
                var=var, create_line=line,
                escape_line=func.body[-1].lineno, kind="fall-through",
                detail=(f"{var!r} is still live and unregistered when "
                        f"the function falls off the end"),
            ))
    return leaks
