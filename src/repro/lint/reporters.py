"""Render a lint :class:`~repro.lint.engine.Report` as text or JSON."""

from __future__ import annotations

import json

from repro.lint.engine import Report


def render_text(report: Report) -> str:
    lines = [finding.render() for finding in report.findings]
    counts = report.counts()
    if counts:
        breakdown = ", ".join(f"{rule}={n}"
                              for rule, n in sorted(counts.items()))
        lines.append("")
        lines.append(
            f"{len(report.findings)} finding(s) in {report.files} "
            f"file(s) [{breakdown}] "
            f"(suppressed={len(report.suppressed)}, "
            f"baselined={report.baselined})"
        )
    else:
        lines.append(
            f"clean: {report.files} file(s), 0 findings "
            f"(suppressed={len(report.suppressed)}, "
            f"baselined={report.baselined})"
        )
    return "\n".join(lines)


def render_stats(report: Report) -> str:
    """Per-rule wall time + finding counts (``--stats``)."""
    counts = report.counts()
    lines = ["per-rule stats (wall time / findings):"]
    total = 0.0
    for rule_id in sorted(report.timings):
        elapsed = report.timings[rule_id]
        total += elapsed
        lines.append(f"  {rule_id}  {elapsed * 1000:8.1f} ms  "
                     f"{counts.get(rule_id, 0):4d} finding(s)")
    lines.append(f"  total {total * 1000:6.1f} ms across "
                 f"{report.files} file(s)")
    return "\n".join(lines)


def render_json(report: Report) -> str:
    payload = {
        "rule_pack": report.rule_pack,
        "files": report.files,
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "fingerprint": f.fingerprint,
            }
            for f in report.findings
        ],
        "counts": report.counts(),
        "suppressed": len(report.suppressed),
        "baselined": report.baselined,
    }
    return json.dumps(payload, indent=2) + "\n"
