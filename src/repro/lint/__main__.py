"""CLI: ``python -m repro.lint [paths...]``.

Exit codes (stable, CI keys on them):

* ``0`` -- clean (after suppressions and baseline filtering),
* ``1`` -- at least one finding,
* ``2`` -- usage or internal error (bad path, unknown rule id).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.lint import RULE_PACK_VERSION
from repro.lint.engine import run_paths
from repro.lint.reporters import render_json, render_text


def _list_rules() -> str:
    from repro.lint.rules import ALL_RULES

    width = max(len(rule.id) for rule in ALL_RULES)
    lines = [f"rule pack {RULE_PACK_VERSION} (docs/lint-rules.md):"]
    for rule in ALL_RULES:
        lines.append(f"  {rule.id:<{width}}  {rule.title}: "
                     f"{rule.rationale}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="AST-based MPC-invariant linter for this repo.",
    )
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to lint "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="fmt")
    parser.add_argument("--select",
                        help="comma-separated rule ids to run "
                             "(default: all)")
    parser.add_argument("--baseline",
                        help="JSON baseline file; matching findings "
                             "are filtered out")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite --baseline from this run's "
                             "findings and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule pack and exit")
    parser.add_argument("--stats", action="store_true",
                        help="print per-rule wall time and finding "
                             "counts after the report")
    parser.add_argument("--graph", metavar="PATH",
                        help="dump the whole-program call graph as "
                             "JSON to PATH ('-' for stdout)")
    parser.add_argument("--protocol-report", metavar="PATH",
                        help="dump the RL012 protocol model-check "
                             "result (state space + traces) as JSON "
                             "to PATH ('-' for stdout)")
    parser.add_argument("--intervals-report", metavar="PATH",
                        help="dump the RL013-RL016 numeric analysis "
                             "(per-kernel derived intervals and "
                             "verdicts) as JSON to PATH ('-' for "
                             "stdout)")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    select = args.select.split(",") if args.select else None
    try:
        if args.write_baseline:
            if not args.baseline:
                parser.error("--write-baseline requires --baseline")
            report = run_paths(args.paths, select=select)
            from repro.lint.baseline import write_baseline

            count = write_baseline(args.baseline, report.findings)
            print(f"wrote {count} finding(s) to {args.baseline}")
            return 0
        report = run_paths(args.paths, select=select,
                           baseline_path=args.baseline)
    except (FileNotFoundError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    out = (render_json(report) if args.fmt == "json"
           else render_text(report))
    print(out, end="" if out.endswith("\n") else "\n")
    if args.stats:
        from repro.lint.reporters import render_stats

        print(render_stats(report))
    if args.graph:
        _dump(args.graph, report.program.flow.to_json())
    if args.protocol_report:
        _dump(args.protocol_report, _protocol_payload(report))
    if args.intervals_report:
        _dump(args.intervals_report, _numeric_payload(report))
    return report.exit_code


def _numeric_payload(report) -> dict:
    from repro.lint.numeric import analyze_program

    return analyze_program(report.program).to_json()


def _protocol_payload(report) -> dict:
    results = getattr(report.program, "protocol_results", {}) or {}
    return {
        "rule_pack": report.rule_pack,
        "checked": sorted(results),
        "results": {path: res.to_json()
                    for path, res in sorted(results.items())},
    }


def _dump(path: str, payload: dict) -> None:
    import json

    text = json.dumps(payload, indent=2) + "\n"
    if path == "-":
        print(text, end="")
    else:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text)


if __name__ == "__main__":
    sys.exit(main())
