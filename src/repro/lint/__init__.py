"""repro.lint -- AST-based static analysis for the repo's MPC invariants.

The reproduction's correctness claims rest on conventions no generic
tool checks: every routed bulk op must be charged to the MPC ledgers
(the paper's sublinearity argument is *about* those charges), shared
memory segments must be owned and unlinked on every exit path, the
ring/status wire protocol must be bracketed exactly, and randomness
must pickle spawn-safely.  This package turns those conventions into
machine-checked rules::

    python -m repro.lint src tests

Layout
------
``markers``
    Dependency-free ``@hot_path`` / ``@spawn_safe`` decorators that
    production code uses to opt into the stricter rules.  Importing it
    never pulls in the engine.
``engine``
    File walker, suppression parsing, baseline filtering, rule driver.
``rules``
    The per-file rule pack (RL001..RL007 plus the suppression-hygiene
    meta rule).  ``docs/lint-rules.md`` documents each rule.
``flow`` / ``flow_rules``
    Whole-program call graph + per-function flow facts, and the
    interprocedural rules (RL008 charge-flow, RL009 shm escape,
    RL010 determinism discipline, RL011 bracket safety) built on it.
``protocol``
    The wire-protocol model checker (RL012): extracts the ring/
    status/respawn state machine from ``mpc/backend.py`` and
    exhaustively explores bounded fault interleavings
    (``docs/protocol-model.md``).
``numeric``
    The value-interval/dtype abstract interpreter (RL013-RL016):
    proves every ``@kernel_contract``-annotated kernel overflow-free
    and residue-canonical on both tiers
    (``docs/numeric-analysis.md``); ``python -m repro.lint.numeric``
    reports the derived intervals.
``reporters``
    Text and JSON output.

Keep this ``__init__`` import-light: sketch and backend modules import
:mod:`repro.lint.markers` at module load, on the hot import path of
every spawned worker.
"""

#: Version of the rule pack, recorded in JSON reports, baselines, and
#: the ``lint`` field of BENCH_ingest.json.  Bump when rules are added
#: or their detection logic changes meaningfully.
RULE_PACK_VERSION = "3.0"

__all__ = ["RULE_PACK_VERSION"]
