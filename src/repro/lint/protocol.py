"""Wire-protocol model checker for the shared-memory backend (RL012).

The shared-memory backend's exactly-once story rests on a small state
machine spread across four functions in ``repro.mpc.backend``:

* ``_worker_main``   -- ring seq check + status-slot brackets + ack
* ``_classify_failures`` -- kill-then-read-slot crash classification
* ``_respawn_worker``    -- seq/status/opid reset on replacement
* ``_dispatch_ops``      -- per-attempt packing + opid per send

Rather than hand-maintaining a model that silently drifts from the
code, this module *extracts* the machine from the AST (a fixed fact
vector -- see :class:`ProtocolModel`) and then exhaustively explores a
bounded parent x worker x fault interleaving space parameterized by
those facts.  Reachable bad states (double-apply, half-applied op
retried, success recorded for an unapplied op, broken latched on a
cleanly-completed op, transport failure with no injected fault) fail
the lint run with a human-readable counterexample trace.

The fault branch points mirror ``repro.mpc.faults`` kinds: ``kill``
(modeled at four interleaving points: before receive, mid-apply,
after-apply-before-post-write, after-post-write-before-ack), ``hang``
(op queued in a live-but-stuck worker), ``drop`` (ack suppressed) and
``truncate`` (ring record corrupted -> desync reply).  ``delay`` is
timing-only and has no protocol-visible effect beyond ``hang``.

See ``docs/protocol-model.md`` for the extracted machine, the checked
properties, and how to update the model when the protocol changes.
"""
from __future__ import annotations

import ast
import json
from collections import deque
from dataclasses import dataclass, field, fields as dc_fields
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "ProtocolModel",
    "BadState",
    "CheckResult",
    "extract_model",
    "check_model",
    "check_backend_source",
    "REQUIRED_FUNCTIONS",
    "GOOD_FACTS",
]

REQUIRED_FUNCTIONS = (
    "_worker_main",
    "_classify_failures",
    "_dispatch_ops",
    "_respawn_worker",
)

#: Fault interleaving points explored per send (besides "none").
FAULT_KINDS = (
    "kill_before",   # worker dies before receiving the op
    "kill_mid",      # dies mid-apply: shard half-written (partial)
    "kill_after",    # dies after apply, before the +opid post-write
    "kill_done",     # dies after the post-write, before the ack
    "hang",          # op queued in a live-but-stuck worker
    "drop_ack",      # executes fully, ack suppressed
    "truncate",      # ring record corrupted -> desync reply
)


# --------------------------------------------------------------------------
# Fact extraction
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class ProtocolModel:
    """The fact vector extracted from ``mpc/backend.py``'s AST.

    Every field parameterizes one transition of the explored state
    machine; ``missing`` lists required functions that could not be
    found (extraction is then incomplete and checking is skipped).
    """

    pre_sign: Optional[str] = None      # status write before run_op: neg/pos
    post_sign: Optional[str] = None     # status write after run_op
    worker_acks: bool = False           # ("ok", payload) sent after run_op
    checks_seq: bool = False            # seq != expected_seq rejected
    increments_seq: bool = False        # expected_seq += 1 on accept
    desync_continues: bool = False      # desync reply skips execution
    resets_seq: bool = False            # _ring_seqs[wid] = 0 on respawn
    resets_status: bool = False         # _status_view[wid] = 0 on respawn
    resets_opid: bool = False           # _op_ids[wid] = 0 on respawn
    kills_before_classify: bool = False  # _kill_worker before slot read
    completed_counts_success: bool = False  # slot==+opid -> never re-applied
    partial_latches_broken: bool = False    # slot==-opid -> SketchError
    packs_per_attempt: bool = False     # ring record re-packed per retry
    opid_per_send: bool = False         # _op_ids[wid] += 1 per attempt
    missing: Tuple[str, ...] = ()

    @property
    def complete(self) -> bool:
        return not self.missing

    def facts(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name)
                for f in dc_fields(self) if f.name != "missing"}

    def drift(self) -> List[Tuple[str, object, object]]:
        """(fact, expected, extracted) for every fact off the reference."""
        return [(name, GOOD_FACTS[name], actual)
                for name, actual in self.facts().items()
                if actual != GOOD_FACTS[name]]


#: The reference machine: what a correct backend extracts to.
GOOD_FACTS: Dict[str, object] = {
    "pre_sign": "neg",
    "post_sign": "pos",
    "worker_acks": True,
    "checks_seq": True,
    "increments_seq": True,
    "desync_continues": True,
    "resets_seq": True,
    "resets_status": True,
    "resets_opid": True,
    "kills_before_classify": True,
    "completed_counts_success": True,
    "partial_latches_broken": True,
    "packs_per_attempt": True,
    "opid_per_send": True,
}


def _find_functions(tree: ast.AST) -> Dict[str, ast.FunctionDef]:
    found: Dict[str, ast.FunctionDef] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name in REQUIRED_FUNCTIONS:
            found.setdefault(node.name, node)
    return found


def _stmt_lists(node: ast.AST) -> Iterator[List[ast.stmt]]:
    """Every statement list under ``node``, excluding nested defs."""
    stack: List[ast.AST] = [node]
    while stack:
        cur = stack.pop()
        for name in ("body", "orelse", "finalbody"):
            block = getattr(cur, name, None)
            if block:
                yield block
        for child in ast.iter_child_nodes(cur):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)) and cur is not node:
                continue
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            stack.append(child)


def _status_sign(stmt: ast.stmt) -> Optional[str]:
    """neg/pos if ``stmt`` (or a nested If body) writes a status slot."""
    for node in ast.walk(stmt):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if not isinstance(target, ast.Subscript):
                continue
            if "status" not in ast.unparse(target):
                continue
            value = node.value
            if isinstance(value, ast.UnaryOp) and isinstance(value.op, ast.USub):
                return "neg"
            return "pos"
    return None


def _sends_tag(stmt: ast.stmt, tag: str) -> bool:
    """True if ``stmt`` contains ``conn.send((tag, ...))``."""
    for node in ast.walk(stmt):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "send" and node.args):
            arg = node.args[0]
            if (isinstance(arg, ast.Tuple) and arg.elts
                    and isinstance(arg.elts[0], ast.Constant)
                    and arg.elts[0].value == tag):
                return True
    return False


def _name_positive(test: ast.expr, name: str, polarity: bool = True) -> bool:
    """True if ``name`` is referenced with positive polarity in ``test``."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        return _name_positive(test.operand, name, not polarity)
    if isinstance(test, ast.BoolOp):
        return any(_name_positive(v, name, polarity) for v in test.values)
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id == name and polarity:
            return True
    return False


def _slot_compare(test: ast.expr, want_neg: bool) -> bool:
    """True if ``test`` contains ``slot == opid`` (or ``== -opid``)."""
    def is_slot(n: ast.expr) -> bool:
        return isinstance(n, ast.Name) and n.id == "slot"

    def is_opid(n: ast.expr) -> bool:
        if want_neg:
            return (isinstance(n, ast.UnaryOp)
                    and isinstance(n.op, ast.USub)
                    and isinstance(n.operand, ast.Name)
                    and n.operand.id == "opid")
        return isinstance(n, ast.Name) and n.id == "opid"

    for node in ast.walk(test):
        if not isinstance(node, ast.Compare) or len(node.ops) != 1:
            continue
        if not isinstance(node.ops[0], ast.Eq):
            continue
        left, right = node.left, node.comparators[0]
        if (is_slot(left) and is_opid(right)) or (is_slot(right)
                                                  and is_opid(left)):
            return True
    return False


def _extract_worker(func: ast.FunctionDef) -> Dict[str, object]:
    facts: Dict[str, object] = {
        "pre_sign": None, "post_sign": None, "worker_acks": False,
        "checks_seq": False, "increments_seq": False,
        "desync_continues": False,
    }
    # Locate the routed-op execution statement (the run_op call).
    for block in _stmt_lists(func):
        for idx, stmt in enumerate(block):
            if not isinstance(stmt, (ast.Assign, ast.Expr)):
                continue
            if "run_op(" not in ast.unparse(stmt):
                continue
            for prev in reversed(block[:idx]):
                sign = _status_sign(prev)
                if sign is not None:
                    facts["pre_sign"] = sign
                    break
            for nxt in block[idx + 1:]:
                sign = _status_sign(nxt)
                if sign is not None:
                    facts["post_sign"] = sign
                    break
            facts["worker_acks"] = any(
                _sends_tag(nxt, "ok") for nxt in block[idx + 1:])
    for node in ast.walk(func):
        if isinstance(node, ast.If):
            src = ast.unparse(node.test)
            if "expected_seq" in src and "!=" in src:
                facts["checks_seq"] = True
        if (isinstance(node, ast.AugAssign)
                and isinstance(node.op, ast.Add)
                and isinstance(node.target, ast.Name)
                and node.target.id == "expected_seq"):
            facts["increments_seq"] = True
        if isinstance(node, ast.ExceptHandler):
            if any(_sends_tag(s, "desync") for s in node.body):
                facts["desync_continues"] = any(
                    isinstance(n, ast.Continue)
                    for s in node.body for n in ast.walk(s))
    return facts


def _extract_respawn(func: ast.FunctionDef) -> Dict[str, object]:
    facts = {"resets_seq": False, "resets_status": False,
             "resets_opid": False}
    keys = (("_ring_seqs[", "resets_seq"),
            ("_status_view[", "resets_status"),
            ("_op_ids[", "resets_opid"))
    for node in ast.walk(func):
        if not isinstance(node, ast.Assign):
            continue
        if not (isinstance(node.value, ast.Constant)
                and node.value.value == 0):
            continue
        target_src = "".join(ast.unparse(t) for t in node.targets)
        for needle, fact in keys:
            if needle in target_src:
                facts[fact] = True
    return facts


def _extract_classify(func: ast.FunctionDef) -> Dict[str, object]:
    facts = {"kills_before_classify": False,
             "completed_counts_success": False,
             "partial_latches_broken": False}
    for node in ast.walk(func):
        if (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "_kill_worker"):
            facts["kills_before_classify"] = True
        if isinstance(node, ast.If):
            has_raise = any(isinstance(n, ast.Raise)
                            for s in node.body for n in ast.walk(s))
            if (_slot_compare(node.test, want_neg=False)
                    and _name_positive(node.test, "mutating")
                    and not has_raise):
                facts["completed_counts_success"] = True
            if (_slot_compare(node.test, want_neg=True)
                    and _name_positive(node.test, "mutating")
                    and has_raise):
                facts["partial_latches_broken"] = True
    return facts


def _extract_dispatch(func: ast.FunctionDef) -> Dict[str, object]:
    facts = {"packs_per_attempt": False, "opid_per_send": False}
    for node in ast.walk(func):
        if not isinstance(node, ast.While):
            continue
        for inner in ast.walk(node):
            if (isinstance(inner, ast.Call)
                    and isinstance(inner.func, ast.Attribute)
                    and inner.func.attr == "_ring_pack"):
                facts["packs_per_attempt"] = True
            if (isinstance(inner, ast.AugAssign)
                    and isinstance(inner.op, ast.Add)
                    and "_op_ids[" in ast.unparse(inner.target)):
                facts["opid_per_send"] = True
    return facts


def extract_model(source: str) -> ProtocolModel:
    """Extract the protocol fact vector from backend module source."""
    tree = ast.parse(source)
    funcs = _find_functions(tree)
    missing = tuple(n for n in REQUIRED_FUNCTIONS if n not in funcs)
    facts: Dict[str, object] = {}
    if "_worker_main" in funcs:
        facts.update(_extract_worker(funcs["_worker_main"]))
    if "_respawn_worker" in funcs:
        facts.update(_extract_respawn(funcs["_respawn_worker"]))
    if "_classify_failures" in funcs:
        facts.update(_extract_classify(funcs["_classify_failures"]))
    if "_dispatch_ops" in funcs:
        facts.update(_extract_dispatch(funcs["_dispatch_ops"]))
    return ProtocolModel(missing=missing, **facts)


# --------------------------------------------------------------------------
# Bounded interleaving exploration
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class _State:
    """One explored protocol state (single worker, mutating ops)."""

    op: int = 0            # index of the op being dispatched
    attempt: int = 0       # failed attempts so far for this op
    faults: int = 0        # faults injected so far
    pseq: int = 0          # parent ring seq counter
    popid: int = 0         # parent opid counter
    tok_seq: int = 0       # seq packed into the in-flight token
    tok_opid: int = 0      # opid attached to the in-flight token
    alive: bool = True
    wseq: int = 1          # worker expected_seq
    slot: int = 0          # status-slot value
    queued: int = 0        # opid queued in a hung worker (0 = none)
    applied: Tuple[int, ...] = (0, 0)
    partial: Tuple[bool, ...] = (False, False)
    clean: bool = False    # last execution ran the handler to completion
    degraded: bool = False
    broken: bool = False

    def mut(self, **kw) -> "_State":
        data = {f.name: getattr(self, f.name) for f in dc_fields(self)}
        data.update(kw)
        return _State(**data)


@dataclass(frozen=True)
class BadState:
    kind: str
    trace: Tuple[str, ...]

    def render(self) -> str:
        steps = "\n".join(f"  {i + 1}. {step}"
                          for i, step in enumerate(self.trace))
        return f"reachable bad state `{self.kind}`:\n{steps}"


@dataclass
class CheckResult:
    ok: bool
    states: int
    transitions: int
    bad_states: List[BadState]
    bounds: Dict[str, int]
    facts: Dict[str, object] = field(default_factory=dict)
    drift: List[Tuple[str, object, object]] = field(default_factory=list)

    def to_json(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "states": self.states,
            "transitions": self.transitions,
            "bounds": dict(self.bounds),
            "facts": dict(self.facts),
            "drift": [{"fact": f, "expected": e, "extracted": a}
                      for f, e, a in self.drift],
            "bad_states": [{"kind": b.kind, "trace": list(b.trace)}
                           for b in self.bad_states],
        }


class _Explorer:
    def __init__(self, model: ProtocolModel, n_ops: int, retries: int,
                 max_faults: int, max_states: int):
        self.m = model
        self.n_ops = n_ops
        self.retries = retries
        self.max_faults = max_faults
        self.max_states = max_states
        self.bad: Dict[str, BadState] = {}
        self.transitions = 0

    # -- worker-side execution -------------------------------------------

    def _exec(self, st: _State, opid: int, trace: List[str], *,
              do_apply: bool, do_post: bool, clean: bool,
              mark_partial: bool = False) -> _State:
        """Apply one worker execution (possibly cut short by a kill)."""
        op = st.op
        slot = st.slot
        if self.m.pre_sign == "neg":
            slot = -opid
        elif self.m.pre_sign == "pos":
            slot = opid
        applied = st.applied
        partial = st.partial
        if do_apply:
            if applied[op] >= 1:
                self._flag("double_apply", trace + [
                    f"worker re-applies op{op} (already applied "
                    f"{applied[op]}x): scatter double-applied"])
            if partial[op]:
                self._flag("partial_retry", trace + [
                    f"worker re-runs op{op} on a half-applied shard: "
                    f"partial state compounded"])
            applied = _bump(applied, op)
        if mark_partial:
            partial = _set(partial, op, True)
        if do_post:
            if self.m.post_sign == "pos":
                slot = opid
            elif self.m.post_sign == "neg":
                slot = -opid
        return st.mut(slot=slot, applied=applied, partial=partial,
                      clean=clean)

    def _flag(self, kind: str, trace: List[str]) -> None:
        if kind not in self.bad:
            self.bad[kind] = BadState(kind, tuple(trace))

    # -- transitions ------------------------------------------------------

    def successors(self, st: _State, trace: List[str]
                   ) -> Iterator[Tuple[_State, List[str]]]:
        if st.broken or st.op >= self.n_ops:
            return
        if st.degraded:
            ev = f"degraded: run op{st.op} in-process"
            nxt = self._exec(st, opid=0, trace=trace + [ev],
                             do_apply=True, do_post=False, clean=True)
            # in-process run touches no slot: restore transport fields
            nxt = nxt.mut(slot=st.slot, op=st.op + 1, attempt=0,
                          clean=False)
            yield nxt, trace + [ev]
            return
        kinds: List[str] = ["none"]
        if st.faults < self.max_faults:
            kinds.extend(FAULT_KINDS)
        for kind in kinds:
            yield from self._send(st, trace, kind)

    def _send(self, st: _State, trace: List[str], fault: str
              ) -> Iterator[Tuple[_State, List[str]]]:
        m = self.m
        fresh = st.attempt == 0
        opid = st.popid + 1 if (fresh or m.opid_per_send) else st.tok_opid
        popid = max(st.popid, opid)
        if fresh or m.packs_per_attempt:
            pseq = st.pseq + 1
            tok_seq = pseq
        else:
            pseq, tok_seq = st.pseq, st.tok_seq
        faults = st.faults + (0 if fault == "none" else 1)
        st = st.mut(popid=popid, pseq=pseq, tok_seq=tok_seq,
                    tok_opid=opid, faults=faults, clean=False)
        ev = (f"parent sends op{st.op} attempt {st.attempt} "
              f"(opid={opid}, seq={tok_seq}) fault={fault}")
        trace = trace + [ev]
        injected = fault != "none"

        if fault == "kill_before":
            yield from self._failure(st.mut(alive=False),
                                     trace + ["worker dies before receive"],
                                     injected, "worker died")
            return
        if fault == "hang":
            yield from self._failure(
                st.mut(queued=opid),
                trace + ["worker hangs; op queued in its pipe"],
                injected, "no ack within deadline")
            return
        if fault == "truncate" or (m.checks_seq and tok_seq != st.wseq):
            reason = ("truncated ring record" if fault == "truncate" else
                      f"seq {tok_seq} != expected {st.wseq}")
            t2 = trace + [f"worker rejects transport: {reason} -> "
                          f"('desync', ...) reply"]
            nxt = st
            if not m.desync_continues:
                # Executing a rejected record decodes garbage: the
                # shard ends in an unspecified (corrupt) state.
                nxt = self._exec(nxt, opid, t2, do_apply=True,
                                 do_post=True, clean=True,
                                 mark_partial=True)
                t2 = t2 + ["worker falls through and EXECUTES the "
                           "rejected (corrupt) record"]
            yield from self._failure(nxt, t2, injected,
                                     "ring transport desync")
            return
        if tok_seq != st.wseq:
            # Only reachable with the seq check extracted away: the
            # worker decodes whatever sits at the stale ring offset.
            self._flag("stale_read", trace + [
                f"no seq discipline: worker decodes a stale ring record "
                f"(token seq {tok_seq}, worker expected {st.wseq})"])
            return
        wseq = st.wseq + 1 if m.increments_seq else st.wseq
        st = st.mut(wseq=wseq)
        if fault == "kill_mid":
            nxt = self._exec(st, opid, trace, do_apply=False,
                             do_post=False, clean=False, mark_partial=True)
            yield from self._failure(
                nxt.mut(alive=False),
                trace + [f"worker writes slot={nxt.slot}, dies "
                         f"MID-APPLY (shard partial)"],
                injected, "worker died")
            return
        if fault == "kill_after":
            nxt = self._exec(st, opid, trace, do_apply=True,
                             do_post=False, clean=False)
            yield from self._failure(
                nxt.mut(alive=False),
                trace + [f"worker applies op{st.op}, dies before the "
                         f"post-write (slot={nxt.slot})"],
                injected, "worker died")
            return
        if fault == "kill_done":
            nxt = self._exec(st, opid, trace, do_apply=True,
                             do_post=True, clean=False)
            yield from self._failure(
                nxt.mut(alive=False),
                trace + [f"worker applies + post-writes slot={nxt.slot}, "
                         f"dies before ack"],
                injected, "worker died")
            return
        # Full execution: "none" or "drop_ack".
        nxt = self._exec(st, opid, trace, do_apply=True, do_post=True,
                         clean=True)
        ev = (f"worker applies op{st.op} (slot ends {nxt.slot:+d})")
        if fault == "drop_ack":
            yield from self._failure(
                nxt, trace + [ev + ", ack dropped"], injected,
                "no ack within deadline")
            return
        if not m.worker_acks:
            yield from self._failure(
                nxt, trace + [ev + ", but no ack is ever sent"], injected,
                "no ack within deadline")
            return
        yield self._success(nxt, respawn=False), trace + [
            ev + ", ack ok -> parent records success"]

    def _success(self, st: _State, respawn: bool) -> _State:
        if respawn:
            st = self._respawn(st)
        return st.mut(op=st.op + 1, attempt=0, tok_seq=0, tok_opid=0,
                      clean=False, queued=0)

    def _respawn(self, st: _State) -> _State:
        m = self.m
        return st.mut(
            alive=True, wseq=1, queued=0,
            slot=0 if m.resets_status else st.slot,
            pseq=0 if m.resets_seq else st.pseq,
            popid=0 if m.resets_opid else st.popid,
        )

    def _failure(self, st: _State, trace: List[str], injected: bool,
                 reason: str) -> Iterator[Tuple[_State, List[str]]]:
        trace = trace + [f"parent: transport failure ({reason})"]
        if not injected:
            self._flag("spurious_failure", trace + [
                "no fault was injected on this attempt: the protocol "
                "manufactured a transport failure on its own"])
            return
        m = self.m
        if m.kills_before_classify:
            st = st.mut(alive=False, queued=0)
            yield from self._classify(
                st, trace + ["classify: worker killed first (queued op, "
                             "if any, dies with it)"])
            return
        if st.queued:
            # Hung-but-alive worker: its queued op can run at any point
            # relative to the slot read and the respawn kill.
            ran = self._exec(st.mut(queued=0), st.queued, trace,
                             do_apply=True, do_post=True, clean=True)
            yield from self._classify(
                ran, trace + ["hung worker wakes BEFORE the slot read "
                              "and executes its queued op"])
            yield from self._classify(
                st, trace + ["slot read happens first; hung worker still "
                             "holds its queued op"], queued_after=True)
            yield from self._classify(
                st.mut(queued=0),
                trace + ["hung worker never wakes (killed by respawn)"])
            return
        yield from self._classify(st, trace)

    def _classify(self, st: _State, trace: List[str],
                  queued_after: bool = False
                  ) -> Iterator[Tuple[_State, List[str]]]:
        m = self.m
        op, opid, slot = st.op, st.tok_opid, st.slot
        trace = trace + [f"classify: slot={slot:+d} vs opid={opid}"]
        if m.completed_counts_success and slot == opid:
            if st.applied[op] != 1 or st.partial[op]:
                self._flag("bad_success", trace + [
                    f"classified completed-with-lost-ack, but op{op} "
                    f"was applied {st.applied[op]}x"
                    + (" and left partial" if st.partial[op] else "")
                    + ": update lost or corrupted"])
                return
            nxt = self._success(st, respawn=True)
            yield nxt, trace + [
                "completed-with-lost-ack: success, never re-applied; "
                "worker respawned"]
            return
        if m.partial_latches_broken and slot == -opid:
            if st.clean:
                self._flag("false_broken", trace + [
                    f"worker ran op{op} to completion, yet the slot "
                    f"still reads -opid: backend latches broken on a "
                    f"healthy shard"])
                return
            yield st.mut(broken=True), trace + [
                "mid-scatter crash: backend latches broken (correct "
                "conservative latch)"]
            return
        # Retryable: op never started (as far as the parent can tell).
        if queued_after:
            st = self._exec(st.mut(queued=0), opid, trace,
                            do_apply=True, do_post=True, clean=True)
            trace = trace + ["hung worker wakes AFTER the slot read and "
                             "executes its queued op"]
        if st.attempt >= self.retries:
            yield st.mut(degraded=True, attempt=0, alive=False), trace + [
                "retries exhausted: degrade to in-process execution"]
            return
        nxt = self._respawn(st).mut(attempt=st.attempt + 1)
        yield nxt, trace + [
            f"respawn worker (seq->{nxt.pseq}, slot->{nxt.slot}, "
            f"opid->{nxt.popid}); retry"]

    # -- driver -----------------------------------------------------------

    def run(self) -> Tuple[int, int]:
        init = _State(applied=(0,) * self.n_ops,
                      partial=(False,) * self.n_ops)
        seen = {init}
        queue: deque = deque([(init, [])])
        while queue:
            st, trace = queue.popleft()
            for nxt, ntrace in self.successors(st, trace):
                self.transitions += 1
                if nxt in seen:
                    continue
                seen.add(nxt)
                if len(seen) >= self.max_states:
                    raise RuntimeError(
                        f"protocol state space exceeded {self.max_states} "
                        f"states; tighten the bounds")
                queue.append((nxt, ntrace))
        return len(seen), self.transitions


def check_model(model: ProtocolModel, *, n_ops: int = 2, retries: int = 1,
                max_faults: int = 2, max_states: int = 200_000
                ) -> CheckResult:
    """Exhaustively explore the bounded interleaving space of ``model``."""
    if not model.complete:
        raise ValueError(
            "cannot check an incomplete model (missing: "
            + ", ".join(model.missing) + ")")
    exp = _Explorer(model, n_ops, retries, max_faults, max_states)
    states, transitions = exp.run()
    bad = sorted(exp.bad.values(), key=lambda b: b.kind)
    return CheckResult(
        ok=not bad,
        states=states,
        transitions=transitions,
        bad_states=list(bad),
        bounds={"ops": n_ops, "retries": retries,
                "max_faults": max_faults},
        facts=model.facts(),
        drift=model.drift(),
    )


def check_backend_source(source: str, **bounds) -> CheckResult:
    """Extract + check in one call (raises on incomplete extraction)."""
    return check_model(extract_model(source), **bounds)


def _bump(tup: Tuple[int, ...], idx: int) -> Tuple[int, ...]:
    return tup[:idx] + (tup[idx] + 1,) + tup[idx + 1:]


def _set(tup: Tuple[bool, ...], idx: int, val: bool) -> Tuple[bool, ...]:
    return tup[:idx] + (val,) + tup[idx + 1:]


def main(argv: Optional[Sequence[str]] = None) -> int:  # pragma: no cover
    """``python -m repro.lint.protocol [backend.py]`` -- ad-hoc check."""
    import sys

    args = list(argv if argv is not None else sys.argv[1:])
    path = args[0] if args else "src/repro/mpc/backend.py"
    with open(path, "r", encoding="utf-8") as fh:
        result = check_backend_source(fh.read())
    print(json.dumps(result.to_json(), indent=2))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
