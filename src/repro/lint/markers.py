"""Source-level markers the lint rules key on.

Both decorators are deliberately no-ops at runtime (they only set a
dunder attribute) and import nothing, so production modules can apply
them without pulling the analysis engine into worker processes.

``@hot_path``
    Declares a function to be one of the vectorized cores the
    benchmarks measure (GF(2^61-1) limb kernels, pool scatter/query
    blocks, the backend's ``_execute_op``).  Rule RL006 then forbids
    per-element Python loops, ``pickle``/``deepcopy``, ``.tolist()``,
    and list-materializing builds inside the body -- the operations
    that silently turn an O(1)-round vectorized op into an O(n) Python
    loop.  A loop over a *small, bounded* dimension (columns, levels,
    polynomial degree) is fine: suppress the finding on that line with
    ``# repro-lint: disable=RL006 -- <why the loop is bounded>``.

``@spawn_safe``
    Declares a type that crosses the process boundary into
    ``_worker_main`` (ring/pipe payloads, attach commands).  Rule
    RL002 then requires the class to define ``__reduce__`` plus a
    ``from_params``-style reconstruction hook, so a spawned worker can
    rebuild it without inheriting parent state.
"""

from __future__ import annotations


def hot_path(func):
    """Mark ``func`` as a vectorized hot core (checked by RL006)."""
    func.__repro_hot_path__ = True
    return func


def spawn_safe(cls):
    """Mark ``cls`` as crossing into worker processes (checked by RL002)."""
    cls.__repro_spawn_safe__ = True
    return cls
