"""Interprocedural rules RL008..RL011 over the :mod:`repro.lint.flow`
program graph.

These upgrade the per-file pack where the invariant is really a
*path* property:

* RL008 -- every call path from a cluster-bearing public entry point to
  a bulk backend op must cross a ``charge_*`` call (RL005 per-path);
* RL009 -- a ``SharedMemory(create=True)`` handle must be released or
  owner-registered on every path, exception edges included (RL001
  per-path);
* RL010 -- determinism discipline in hot-path / worker / kernel code:
  no ambient randomness, no wall-clock values, no set-iteration order,
  no float accumulation (the bit-identity lint);
* RL011 -- the ``-opid``/``+opid`` status-slot writes must immediately
  bracket each routed op in ``_worker_main`` with no other work (and
  no possible raise) inside the bracket, and the ack must follow the
  ``+opid`` write.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.engine import FileContext, Finding, Rule
from repro.lint.flow import FlowGraph, FunctionInfo, shm_leak_paths
from repro.lint.rules import BULK_OPS, _func_name, _own_walk, _walk_functions


def _in_src(path: str) -> bool:
    return path.startswith("src/") or "/src/" in path


# ---------------------------------------------------------------------------
# RL008: charge-flow (interprocedural charge accounting)
# ---------------------------------------------------------------------------

#: Path fragments that mark charge-flow entry-point files.
_ENTRY_DIRS = ("/core/", "/baselines/", "/session/")


def _cluster_classes(ctx: FileContext) -> Set[str]:
    """Names of classes in ``ctx`` that reference ``self.cluster``."""
    out: Set[str] = set()
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Attribute) and sub.attr == "cluster" \
                    and isinstance(sub.value, ast.Name) \
                    and sub.value.id == "self":
                out.add(node.name)
                break
    return out


class ChargeFlow(Rule):
    id = "RL008"
    title = "charge-flow"
    rationale = ("every call path from a cluster-bearing public entry "
                 "point to a bulk backend op must cross a charge_* call")

    def check_program(self, program) -> Iterable[Finding]:
        flow: FlowGraph = program.flow
        cluster_owners: Dict[str, Set[str]] = {}
        ctx_by_path = {ctx.path: ctx for ctx in program.contexts}
        for ctx in program.contexts:
            if _in_src(ctx.path) and any(d in ctx.path
                                         for d in _ENTRY_DIRS):
                owners = _cluster_classes(ctx)
                if owners:
                    cluster_owners[ctx.path] = owners
        for qname in sorted(flow.functions):
            info = flow.functions[qname]
            if not info.public or info.cls is None:
                continue
            owners = cluster_owners.get(info.path)
            if not owners or info.cls not in owners:
                continue
            for path, (op_name, op_line) in flow.uncharged_bulk_paths(info):
                chain = " -> ".join(
                    (f"{f.cls}.{f.name}" if f.cls else f.name)
                    for f in path
                )
                site = path[-1]
                yield Finding(
                    rule=self.id, path=info.path,
                    line=info.node.lineno, col=info.node.col_offset + 1,
                    message=(
                        f"call path {chain} reaches bulk op {op_name} "
                        f"({site.path}:{op_line}) with no charge_* "
                        f"anywhere on the path; the MPC ledgers never "
                        f"see this work"
                    ),
                )


# ---------------------------------------------------------------------------
# RL009: shm escape/leak (path-sensitive lifecycle)
# ---------------------------------------------------------------------------

class ShmEscape(Rule):
    id = "RL009"
    title = "shm-escape"
    rationale = ("a SharedMemory(create=True) handle must reach close/"
                 "unlink or owner-registration on every path, exception "
                 "edges included")

    def applies(self, ctx: FileContext) -> bool:
        return _in_src(ctx.path)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for func in _walk_functions(ctx.tree):
            for leak in shm_leak_paths(func):
                yield Finding(
                    rule=self.id, path=ctx.path, line=leak.create_line,
                    col=1,
                    message=(
                        f"shared-memory segment {leak.var!r} leaks on a "
                        f"{leak.kind} path out of {func.name}: "
                        f"{leak.detail}"
                    ),
                )


# ---------------------------------------------------------------------------
# RL010: determinism discipline (the bit-identity lint)
# ---------------------------------------------------------------------------

#: ``random.<fn>`` calls that draw from ambient (unseeded) state.
_RANDOM_FUNCS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "getrandbits", "gauss", "betavariate",
})
#: ``time.<fn>`` calls that produce wall-clock *values* (sleep is fine).
_CLOCK_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
    "perf_counter_ns",
})
#: Materializers whose element order becomes array order.
_MATERIALIZERS = frozenset({"list", "tuple", "array", "asarray",
                            "fromiter", "concatenate", "stack"})


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) \
            and _func_name(node.func) in ("set", "frozenset"):
        return True
    return False


class DeterminismDiscipline(Rule):
    id = "RL010"
    title = "determinism-discipline"
    rationale = ("hot-path/worker/kernel code must stay bit-reproducible: "
                 "no ambient RNG, wall-clock values, set-iteration "
                 "order, or float accumulation")

    def _in_scope(self, ctx: FileContext, func) -> bool:
        from repro.lint.rules import _decorator_names

        if "hot_path" in _decorator_names(func):
            return True
        if func.name == "_worker_main":
            return True
        return "repro/kernels/" in ctx.path

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for func in _walk_functions(ctx.tree):
            if not self._in_scope(ctx, func):
                continue
            yield from self._check_func(ctx, func)

    def _check_func(self, ctx: FileContext, func) -> Iterable[Finding]:
        where = f"in determinism scope {func.name}"
        float_ok = _has_float64_escape(func)
        for node in _own_walk(func):
            if isinstance(node, ast.Call):
                yield from self._check_call(ctx, node, where, float_ok)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield ctx.finding(
                        self.id, node,
                        f"iteration over a set {where}: set order is "
                        f"hash-seed dependent and feeds downstream "
                        f"arrays; sort it (sorted(...)) first")
            elif isinstance(node, (ast.ListComp, ast.SetComp,
                                   ast.GeneratorExp, ast.DictComp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield ctx.finding(
                            self.id, node,
                            f"comprehension over a set {where}: set "
                            f"order is hash-seed dependent; sort it "
                            f"first")

    def _check_call(self, ctx: FileContext, node: ast.Call,
                    where: str, float_ok: bool = False) -> Iterable[Finding]:
        func_expr = node.func
        name = _func_name(func_expr)
        owner = None
        if isinstance(func_expr, ast.Attribute):
            try:
                owner = ast.unparse(func_expr.value)
            except Exception:  # pragma: no cover - defensive
                owner = None
        # Ambient randomness.
        if owner in ("np.random", "numpy.random"):
            yield ctx.finding(
                self.id, node,
                f"np.random.{name} {where}: all randomness must come "
                f"from the seeded SamplerRandomness/KWiseHash params, "
                f"never ambient RNG")
        elif owner == "random" and name in _RANDOM_FUNCS:
            yield ctx.finding(
                self.id, node,
                f"random.{name} {where}: ambient stdlib RNG breaks "
                f"cross-backend bit-identity")
        # Wall-clock values.
        elif (owner == "time" and name in _CLOCK_FUNCS) or \
                (owner is None and isinstance(func_expr, ast.Name)
                 and func_expr.id in _CLOCK_FUNCS):
            yield ctx.finding(
                self.id, node,
                f"wall-clock read ({name}) {where}: time-dependent "
                f"values make answers irreproducible across runs and "
                f"backends")
        # Set materialization into ordered containers/arrays.
        elif name in _MATERIALIZERS and node.args \
                and _is_set_expr(node.args[0]):
            yield ctx.finding(
                self.id, node,
                f"{name}(set(...)) {where}: materializes hash-seed-"
                f"dependent order into an ordered container; wrap in "
                f"sorted(...)")
        # Float accumulation / conversion: everything on the sketch hot
        # path is exact int64 limb arithmetic; a float dtype is either
        # a bug or a @kernel_contract escape("float64", ...) that the
        # RL013-RL016 numeric analysis then bounds and audits.
        elif name == "astype" and node.args and \
                "float" in _safe_unparse(node.args[0]) and not float_ok:
            yield ctx.finding(
                self.id, node,
                f".astype(float) {where}: float rounding is "
                f"association-order dependent; the sketch path is "
                f"exact int64/limb arithmetic (declare a justified "
                f"'float64' contract escape if it is by design)")
        elif not float_ok:
            for kw in node.keywords:
                if kw.arg == "dtype" and "float" in _safe_unparse(kw.value):
                    yield ctx.finding(
                        self.id, node,
                        f"float dtype {where}: float accumulation is "
                        f"association-order dependent; keep the hot "
                        f"path exact int64/limb")


def _has_float64_escape(func) -> bool:
    """True when the function's @kernel_contract declares a 'float64'
    escape -- the audited replacement for an inline RL010 suppression
    on the frexp exponent trick (RL015 proves the escape is bounded
    and still fires)."""
    for dec in getattr(func, "decorator_list", ()):
        if not (isinstance(dec, ast.Call)
                and _func_name(dec.func) == "kernel_contract"):
            continue
        for kw in dec.keywords:
            if kw.arg != "escapes":
                continue
            for sub in ast.walk(kw.value):
                if isinstance(sub, ast.Call) \
                        and _func_name(sub.func) == "escape" \
                        and sub.args \
                        and isinstance(sub.args[0], ast.Constant) \
                        and sub.args[0].value == "float64":
                    return True
    return False


def _safe_unparse(node: ast.AST) -> str:
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - defensive
        return ""


# ---------------------------------------------------------------------------
# RL011: bracket exception-safety
# ---------------------------------------------------------------------------

def _stmt_lists(func) -> Iterable[List[ast.stmt]]:
    """Every statement list in ``func``, nested defs excluded."""
    def visit(body: List[ast.stmt]) -> Iterable[List[ast.stmt]]:
        yield body
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            for field_name in ("body", "orelse", "finalbody"):
                sub = getattr(stmt, field_name, None)
                if sub:
                    yield from visit(sub)
            for handler in getattr(stmt, "handlers", ()):
                yield from visit(handler.body)
    yield from visit(func.body)


def _writes_status(stmt: ast.stmt, sign: str) -> bool:
    """Does ``stmt`` (possibly via an If wrapper) write the status slot
    with a negative (``sign='-'``) or positive (``sign='+'``) opid?"""
    for sub in ast.walk(stmt):
        if not isinstance(sub, ast.Assign):
            continue
        target = sub.targets[0]
        if not (isinstance(target, ast.Subscript)
                and "status" in _safe_unparse(target.value)):
            continue
        negative = isinstance(sub.value, ast.UnaryOp) \
            and isinstance(sub.value.op, ast.USub)
        if sign == "-" and negative:
            return True
        if sign == "+" and not negative:
            return True
    return False


def _contains_send(stmt: ast.stmt) -> bool:
    return any(isinstance(sub, ast.Call)
               and _func_name(sub.func) == "send"
               for sub in ast.walk(stmt))


class BracketSafety(Rule):
    id = "RL011"
    title = "bracket-exception-safety"
    rationale = ("-opid/+opid status writes must immediately bracket "
                 "each routed op in _worker_main; no other work (or "
                 "possible raise) inside the bracket, ack after +opid")

    def applies(self, ctx: FileContext) -> bool:
        return ctx.path.endswith("mpc/backend.py")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for func in _walk_functions(ctx.tree):
            if func.name != "_worker_main":
                continue
            yield from self._check_worker(ctx, func)

    def _check_worker(self, ctx: FileContext, func) -> Iterable[Finding]:
        op_stmts: List[Tuple[List[ast.stmt], int, ast.stmt]] = []
        for stmts in _stmt_lists(func):
            for idx, stmt in enumerate(stmts):
                # Only *simple* statements: a compound statement (the
                # while/try wrappers) "contains" the call too, but the
                # bracket obligation sits on the statement that makes
                # the call, at its own nesting level.
                if not isinstance(stmt, (ast.Assign, ast.AugAssign,
                                         ast.AnnAssign, ast.Expr,
                                         ast.Return)):
                    continue
                if any(isinstance(sub, ast.Call)
                       and _func_name(sub.func) in ("run_op",
                                                    "_execute_op")
                       for sub in ast.walk(stmt)):
                    op_stmts.append((stmts, idx, stmt))
        for stmts, idx, stmt in op_stmts:
            prev = stmts[idx - 1] if idx > 0 else None
            nxt = stmts[idx + 1] if idx + 1 < len(stmts) else None
            if prev is None or not _writes_status(prev, "-"):
                yield Finding(
                    rule=self.id, path=ctx.path, line=stmt.lineno, col=1,
                    message=("routed op is not immediately preceded by "
                             "the -opid status write: any statement "
                             "between the write and the op can raise "
                             "and latch a spurious 'partial' verdict"))
            if nxt is None or not _writes_status(nxt, "+"):
                yield Finding(
                    rule=self.id, path=ctx.path, line=stmt.lineno, col=1,
                    message=("routed op is not immediately followed by "
                             "the +opid status write: a completed op "
                             "would stay classified as partial and a "
                             "lost ack would latch the backend broken"))
            if nxt is not None and _writes_status(nxt, "+") \
                    and _contains_send(nxt):
                send_line = min(sub.lineno for sub in ast.walk(nxt)
                                if isinstance(sub, ast.Call)
                                and _func_name(sub.func) == "send")
                plus_line = min(
                    sub.lineno for sub in ast.walk(nxt)
                    if isinstance(sub, ast.Assign)
                    and _writes_status(sub, "+"))
                if send_line < plus_line:
                    yield Finding(
                        rule=self.id, path=ctx.path, line=send_line,
                        col=1,
                        message=("ack is sent before the +opid status "
                                 "write: a crash between them makes a "
                                 "completed op unclassifiable"))
            if not self._error_guarded(func, stmt):
                yield Finding(
                    rule=self.id, path=ctx.path, line=stmt.lineno, col=1,
                    message=("routed op is not inside a try whose "
                             "handler reports ('error', ...): a worker "
                             "exception would kill the process instead "
                             "of surfacing as an application error"))

    @staticmethod
    def _error_guarded(func, stmt: ast.stmt) -> bool:
        for node in ast.walk(func):
            if not isinstance(node, ast.Try):
                continue
            if not any(s is stmt for s in ast.walk(node)):
                continue
            for handler in node.handlers:
                for sub in ast.walk(ast.Module(body=handler.body,
                                               type_ignores=[])):
                    if isinstance(sub, ast.Constant) \
                            and sub.value == "error":
                        return True
        return False


# ---------------------------------------------------------------------------
# RL012: wire-protocol model check
# ---------------------------------------------------------------------------

class ProtocolModelRule(Rule):
    id = "RL012"
    title = "protocol-model"
    rationale = ("the ring/status/respawn state machine extracted from "
                 "mpc/backend.py must survive exhaustive bounded "
                 "fault-interleaving exploration (exactly-once proof)")

    def check_program(self, program) -> Iterable[Finding]:
        from repro.lint import protocol

        for ctx in program.contexts:
            if not ctx.path.endswith("mpc/backend.py"):
                continue
            model = protocol.extract_model(ctx.source)
            if not model.complete:
                # Corpus fragments and partial test doubles: a file
                # that lacks any of the four protocol functions is not
                # the backend; tests/test_lint_protocol.py pins that
                # the real backend.py always extracts completely.
                continue
            result = protocol.check_model(model)
            program.protocol_results[ctx.path] = result
            anchor = self._worker_line(ctx)
            for bad in result.bad_states:
                yield Finding(
                    rule=self.id, path=ctx.path, line=anchor, col=1,
                    message=("protocol model check failed: "
                             + bad.render()))
            if result.ok and result.drift:
                drifted = ", ".join(
                    f"{fact} (expected {exp!r}, extracted {act!r})"
                    for fact, exp, act in result.drift)
                yield Finding(
                    rule=self.id, path=ctx.path, line=anchor, col=1,
                    message=(
                        f"extracted protocol machine drifted from the "
                        f"reference model: {drifted}; no bad state is "
                        f"reachable within the explored bounds, but the "
                        f"drift must be reviewed and the reference in "
                        f"docs/protocol-model.md updated"))

    @staticmethod
    def _worker_line(ctx: FileContext) -> int:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.FunctionDef) \
                    and node.name == "_worker_main":
                return node.lineno
        return 1


FLOW_RULES: Sequence[Rule] = (
    ChargeFlow(),
    ShmEscape(),
    DeterminismDiscipline(),
    BracketSafety(),
    ProtocolModelRule(),
)
