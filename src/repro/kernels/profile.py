"""Kernel-tier profiling hooks (``REPRO_KERNELS_PROFILE=1``).

When enabled, the dispatcher wraps every active kernel in a
nanosecond-granularity accumulator, and the execution backends bracket
their residual parent-side per-dispatch sections (descriptor packing,
shard splitting, barrier waits) with :func:`timed`.  The counters are
cumulative monotone ints, exactly the shape
:meth:`repro.mpc.metrics.ClusterMetrics.end_phase` diffs into
per-phase ``backend_events`` -- so with profiling on, every phase row
attributes its wall-clock between kernels and orchestration.

Disabled (the default) the hooks cost one predicate: :func:`timed`
returns a shared no-op context manager and the dispatcher binds the
raw kernel functions, unwrapped.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict

from repro.mpc.config import env_int

ENV_PROFILE = "REPRO_KERNELS_PROFILE"

#: Read once at import (workers re-read at spawn): 0/unset disables.
_ENABLED = (env_int(ENV_PROFILE, 0) or 0) > 0

_NS: Dict[str, int] = {}
_CALLS: Dict[str, int] = {}


def enabled() -> bool:
    """True when ``REPRO_KERNELS_PROFILE`` enabled profiling at import."""
    return _ENABLED


def counters() -> Dict[str, int]:
    """Cumulative ``{name}_ns`` / ``{name}_calls`` counters (a copy)."""
    out: Dict[str, int] = {}
    for name in sorted(_NS):
        out[f"{name}_ns"] = int(_NS[name])
        out[f"{name}_calls"] = int(_CALLS[name])
    return out


def reset() -> None:
    _NS.clear()
    _CALLS.clear()


def record(name: str, ns: int) -> None:
    """Fold ``ns`` nanoseconds into section ``name``'s accumulators."""
    _NS[name] = _NS.get(name, 0) + int(ns)
    _CALLS[name] = _CALLS.get(name, 0) + 1


def wrap(name: str, func: Callable) -> Callable:
    """``func`` instrumented under ``kernel.{name}`` (profiling on)."""
    label = f"kernel.{name}"

    @functools.wraps(func)
    def timed_kernel(*args, **kwargs):
        # repro-lint: disable=RL010 -- profiling timestamp: measures the kernel, never feeds its result
        start = time.perf_counter_ns()
        try:
            return func(*args, **kwargs)
        finally:
            # repro-lint: disable=RL010 -- profiling timestamp: measures the kernel, never feeds its result
            record(label, time.perf_counter_ns() - start)

    return timed_kernel


class _NullSection:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSection":
        return self

    def __exit__(self, *exc) -> bool:
        return False


class _Section:
    __slots__ = ("name", "_start")

    def __init__(self, name: str):
        self.name = name
        self._start = 0

    def __enter__(self) -> "_Section":
        # repro-lint: disable=RL010 -- profiling timestamp: measures the section, never feeds results
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> bool:
        # repro-lint: disable=RL010 -- profiling timestamp: measures the section, never feeds results
        record(self.name, time.perf_counter_ns() - self._start)
        return False


_NULL = _NullSection()


def timed(name: str):
    """Context manager timing a parent-side section; no-op when disabled."""
    if not _ENABLED:
        return _NULL
    return _Section(name)
