"""Runtime-selectable hot-path kernel tiers (``REPRO_KERNELS``).

The sketch layer's inner loops -- GF(2^61-1) limb arithmetic, level
hashing, the pool scatter, the batch prefix decoder, and the
group-merge / zero-test cell cores -- exist in two bit-identical
flavours:

* :mod:`repro.kernels.numpy_tier` -- pure numpy, always available, the
  reference semantics;
* :mod:`repro.kernels.compiled_tier` -- numba-jitted scalar loops with
  early exits and released GIL; active only when numba is importable.

This package is the dispatcher: it resolves the tier once at import
(workers re-resolve at spawn, so each process picks independently) and
binds the chosen implementations as module attributes -- callers use
``kernels.mulmod_many(...)`` etc. and never touch a tier module
directly (rule RL007 enforces that).

``REPRO_KERNELS`` grammar (read through the validated
:func:`repro.mpc.config.read_env`; see ``docs/kernels.md``):

* ``auto`` (default) -- compiled tier when numba imports, else numpy;
  the silent fallback increments ``counters()["auto_fallbacks"]``.
* ``numpy`` -- force the reference tier (how CI pins the fallback).
* ``numba`` -- require the compiled tier; raises
  :class:`~repro.errors.SketchError` naming the variable when numba is
  missing, instead of silently degrading.

Anything else raises ``SketchError`` naming the variable at import --
the same read-time validation contract as the ``REPRO_BACKEND*``
knobs.  :func:`set_tier` re-binds the table in-process (tests use it
for the cross-tier parity matrix); with ``REPRO_KERNELS_PROFILE=1``
every bound kernel is wrapped in the :mod:`repro.kernels.profile`
accumulators.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import SketchError
from repro.kernels import checks, compiled_tier, numpy_tier, profile, registry
from repro.mpc.config import read_env

ENV_KERNELS = "REPRO_KERNELS"

#: Valid ``REPRO_KERNELS`` values.
TIERS = ("auto", "numpy", "numba")

_COUNTERS: Dict[str, int] = {"auto_fallbacks": 0}

_ACTIVE_TIER = "numpy"


def kernel_names() -> Tuple[str, ...]:
    """Names of every dispatched kernel."""
    return registry.kernel_names()


def active_tier() -> str:
    """The tier currently bound: ``"numpy"`` or ``"numba"``."""
    return _ACTIVE_TIER


def numba_available() -> bool:
    """True when the compiled tier can be activated in this process."""
    return compiled_tier.AVAILABLE


def available_tiers() -> Tuple[str, ...]:
    """The tiers :func:`set_tier` accepts in this process."""
    if compiled_tier.AVAILABLE:
        return ("numpy", "numba")
    return ("numpy",)


def counters() -> Dict[str, int]:
    """Dispatcher event counters (``auto_fallbacks`` so far; a copy)."""
    return dict(_COUNTERS)


def set_tier(tier: str) -> str:
    """Bind ``tier``'s implementations as the active kernel set.

    Returns the activated tier name.  ``"numba"`` raises
    :class:`~repro.errors.SketchError` when numba is unavailable;
    unknown names raise too.  Safe to call repeatedly (tests flip
    tiers to assert the bit-identity matrix).
    """
    if tier == "numba":
        if not compiled_tier.AVAILABLE:
            raise SketchError(
                f"{ENV_KERNELS}=numba requires numba, which is not "
                f"importable in this environment; install numba or set "
                f"{ENV_KERNELS}=auto or numpy"
            )
        compiled_tier.ensure_built()
        table = registry.compiled_table()
    elif tier == "numpy":
        table = registry.numpy_table()
    else:
        raise SketchError(
            f"invalid {ENV_KERNELS} tier {tier!r}: expected one of "
            f"{', '.join(TIERS)}"
        )
    missing = set(registry.kernel_names()) - set(table)
    if missing:  # registration drift; RL007 catches this statically
        raise SketchError(
            f"kernel tier {tier!r} is missing implementations for: "
            f"{', '.join(sorted(missing))}"
        )
    wrap = profile.enabled()
    check = checks.enabled()
    bindings = globals()
    for name, impl in table.items():
        bound = checks.wrap(name, impl) if check else impl
        bindings[name] = profile.wrap(name, bound) if wrap else bound
    global _ACTIVE_TIER
    _ACTIVE_TIER = tier
    return tier


def resolve_env_tier() -> str:
    """The tier requested by ``REPRO_KERNELS`` (validated, resolved).

    ``auto`` resolves to ``numba`` when available, else to ``numpy``
    with the ``auto_fallbacks`` counter bumped (the silent-degrade
    contract); ``numba`` without numba raises at once.
    """
    raw = read_env(ENV_KERNELS)
    choice = "auto" if raw is None else raw.strip().lower()
    if choice not in TIERS:
        raise SketchError(
            f"invalid {ENV_KERNELS}={raw!r}: expected one of "
            f"{', '.join(TIERS)}"
        )
    if choice == "numba" and not compiled_tier.AVAILABLE:
        raise SketchError(
            f"{ENV_KERNELS}=numba requires numba, which is not "
            f"importable in this environment; install numba or set "
            f"{ENV_KERNELS}=auto or numpy"
        )
    if choice == "auto":
        if compiled_tier.AVAILABLE:
            return "numba"
        _COUNTERS["auto_fallbacks"] += 1
        return "numpy"
    return choice


# Resolve once at import: every process (parent or spawned worker)
# performing sketch work imports this package, so each picks its tier
# independently from its own environment.
set_tier(resolve_env_tier())
