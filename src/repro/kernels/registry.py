"""Kernel registration tables and the numeric-contract layer.

Every hot-path kernel is registered twice -- once by the pure-numpy
tier (:mod:`repro.kernels.numpy_tier`, always available) and once by
the compiled tier (:mod:`repro.kernels.compiled_tier`, active only
when numba is importable).  :mod:`repro.kernels` binds one table as
the active implementation set; rule RL007 (``repro.lint``) checks the
two registrations stay in lockstep (same kernel names, same parameter
names) and that nothing outside this package calls a tier module
directly.

The decorators are deliberately trivial -- a dict insert -- so the
registration is visible to AST tooling: RL007 recognises a kernel
entry purely from the ``@numpy_kernel("name")`` /
``@compiled_kernel("name")`` decorator form.

Kernel contracts
----------------
``@kernel_contract(args={...}, returns=..., ...)`` attaches a
machine-checkable numeric contract to a registered kernel: per-argument
``(dtype, [lo, hi])`` value specs, the declared return spec, and any
*escapes* -- by-design departures from exact uint64/int64 interval
arithmetic (a float64 ``frexp`` trick, an intentional two's-complement
wrap) each carrying a mandatory justification.  The decorator is a
no-op at runtime by default (it only sets ``__kernel_contract__``);
it exists for two consumers:

* the abstract interpreter in :mod:`repro.lint.numeric` (rules
  RL013-RL016) parses the decorator *from source* and proves, per tier,
  that no intermediate overflows its dtype and the declared return
  interval holds;
* with ``REPRO_KERNELS_CHECK=1`` the dispatcher
  (:mod:`repro.kernels`) wraps each bound kernel in runtime
  dtype/range asserts generated from the same data -- the dynamic twin
  of the static proof.

Contracts must be identical across the two tiers of a kernel (RL016
extends RL007's signature check to semantics), so the spec helpers
below are the shared vocabulary of both tier modules.  The spec
constructors take only literal int expressions: the analyzer evaluates
the decorator AST without importing numpy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Tuple

#: The sketch field modulus; duplicated from the tier modules so the
#: contract layer stays import-light (no numpy).
MERSENNE_P = (1 << 61) - 1

_U64_MAX = (1 << 64) - 1
_I64_MIN = -(1 << 63)
_I64_MAX = (1 << 63) - 1


@dataclass(frozen=True)
class ValueSpec:
    """One ``(dtype, [lo, hi])`` lattice point of the numeric contract.

    ``dtype`` is the numpy dtype name (``uint64``/``int64``/``bool``)
    or ``pyint`` for plain Python scalar parameters.  ``lo``/``hi``
    are inclusive value bounds; ``total`` optionally bounds the *sum*
    over the array (length/offset arrays); ``role`` tags semantics:

    * ``"value"`` -- plain bounded values;
    * ``"residue"`` -- canonical mod-p field elements in ``[0, p)``;
    * ``"acc"`` -- an exact int64 accumulator whose no-overflow
      argument is external (bounded update counts x bounded weights,
      see ``docs/numeric-analysis.md``); reductions over it stay
      ``acc`` and are exempt from the pointwise overflow proof.
    """

    dtype: str
    lo: Optional[int]
    hi: Optional[int]
    role: str = "value"
    total: Optional[int] = None

    def bounds(self) -> Tuple[int, int]:
        """Concrete inclusive bounds (dtype range when undeclared)."""
        dlo, dhi = dtype_bounds(self.dtype)
        return (dlo if self.lo is None else self.lo,
                dhi if self.hi is None else self.hi)

    def describe(self) -> str:
        lo, hi = self.bounds()
        tag = f" {self.role}" if self.role != "value" else ""
        return f"{self.dtype}[{lo}, {hi}]{tag}"


def dtype_bounds(dtype: str) -> Tuple[int, int]:
    """Inclusive representable range of a contract dtype."""
    if dtype == "uint64":
        return (0, _U64_MAX)
    if dtype == "int64":
        return (_I64_MIN, _I64_MAX)
    if dtype == "bool":
        return (0, 1)
    # pyint: arbitrary precision -- no representable-range obligation.
    return (None, None)  # type: ignore[return-value]


def u64_residue() -> ValueSpec:
    """Canonical GF(2^61-1) residues as uint64: values in ``[0, p)``."""
    return ValueSpec("uint64", 0, MERSENNE_P - 1, role="residue")


def i64_residue() -> ValueSpec:
    """Canonical GF(2^61-1) residues carried in int64 cells."""
    return ValueSpec("int64", 0, MERSENNE_P - 1, role="residue")


def u64_range(lo: int, hi: int, total: Optional[int] = None) -> ValueSpec:
    return ValueSpec("uint64", lo, hi, total=total)


def i64_range(lo: int, hi: int, total: Optional[int] = None) -> ValueSpec:
    return ValueSpec("int64", lo, hi, total=total)


def u64_any() -> ValueSpec:
    """Any uint64 value (full dtype range)."""
    return ValueSpec("uint64", None, None)


def i64_any() -> ValueSpec:
    """Any int64 value (full dtype range)."""
    return ValueSpec("int64", None, None)


def i64_acc() -> ValueSpec:
    """Exact int64 accumulator cells (externally bounded, see role)."""
    return ValueSpec("int64", None, None, role="acc")


def bool_array() -> ValueSpec:
    return ValueSpec("bool", 0, 1)


def scalar_int(lo: int, hi: int) -> ValueSpec:
    """A plain Python int scalar parameter in ``[lo, hi]``."""
    return ValueSpec("pyint", lo, hi)


@dataclass(frozen=True)
class Escape:
    """A declared, justified departure from exact int lattice math.

    ``kind`` names the analyzer's op label that is being excused
    (``"float64"`` for the frexp exponent trick, ``"wrap"`` for an
    intentional two's-complement wrap, ``"divide"`` for a floored
    division whose INT64_MIN/-1 corner is excluded by an external
    argument); ``result`` is the post-escape value spec the analysis
    continues with.  The justification is mandatory -- RL015 reports a
    declared escape that never fires as stale, and an escape-needing op
    with no declaration as unmodeled.
    """

    kind: str
    justification: str
    result: Optional[ValueSpec] = None


def escape(kind: str, justification: str,
           result: Optional[ValueSpec] = None) -> Escape:
    if not justification or not justification.strip():
        raise ValueError(
            f"kernel-contract escape {kind!r} needs a non-empty "
            f"justification (RL015 audits these)"
        )
    return Escape(kind=kind, justification=justification, result=result)


@dataclass(frozen=True)
class Contract:
    """The full numeric contract of one kernel (both tiers share it)."""

    args: Mapping[str, ValueSpec]
    returns: Optional[ValueSpec]
    shape: str = "elementwise"
    escapes: Tuple[Escape, ...] = ()
    mutates: Optional[str] = None

    def key(self) -> tuple:
        """Normalized identity for the RL016 cross-tier comparison."""
        return (
            tuple(sorted((n, s) for n, s in self.args.items())),
            self.returns,
            self.shape,
            self.escapes,
            self.mutates,
        )


#: kernel name -> contract, filled at decoration time (runtime view;
#: the static analyzer re-derives the same data from the AST).
_CONTRACTS: Dict[str, Contract] = {}

_NUMPY: Dict[str, Callable] = {}
_COMPILED: Dict[str, Callable] = {}


def kernel_contract(args: Mapping[str, ValueSpec],
                    returns: Optional[ValueSpec] = None,
                    shape: str = "elementwise",
                    escapes: Tuple[Escape, ...] = (),
                    mutates: Optional[str] = None) -> Callable:
    """Attach a numeric contract to a kernel (no-op at runtime).

    Applied *under* the registration decorator on both tiers of a
    kernel; the two declarations must be identical (RL016).  The
    runtime table keeps one copy per kernel name for the
    ``REPRO_KERNELS_CHECK=1`` wrapper.
    """
    contract = Contract(args=dict(args), returns=returns, shape=shape,
                        escapes=tuple(escapes), mutates=mutates)

    def mark(func: Callable) -> Callable:
        func.__kernel_contract__ = contract
        _CONTRACTS[func.__name__] = contract
        return func

    return mark


def contract_for(name: str) -> Optional[Contract]:
    """The declared contract of kernel ``name`` (``None`` if absent)."""
    return _CONTRACTS.get(name)


def contract_names() -> Tuple[str, ...]:
    return tuple(sorted(_CONTRACTS))


def numpy_kernel(name: str) -> Callable[[Callable], Callable]:
    """Register ``func`` as the numpy-tier implementation of ``name``."""

    def register(func: Callable) -> Callable:
        _NUMPY[name] = func
        return func

    return register


def compiled_kernel(name: str) -> Callable[[Callable], Callable]:
    """Register ``func`` as the compiled-tier implementation of ``name``."""

    def register(func: Callable) -> Callable:
        _COMPILED[name] = func
        return func

    return register


def numpy_table() -> Dict[str, Callable]:
    return dict(_NUMPY)


def compiled_table() -> Dict[str, Callable]:
    return dict(_COMPILED)


def kernel_names() -> Tuple[str, ...]:
    """All registered kernel names (the numpy tier is the roster)."""
    return tuple(sorted(_NUMPY))
