"""Kernel registration tables for the tier dispatcher.

Every hot-path kernel is registered twice -- once by the pure-numpy
tier (:mod:`repro.kernels.numpy_tier`, always available) and once by
the compiled tier (:mod:`repro.kernels.compiled_tier`, active only
when numba is importable).  :mod:`repro.kernels` binds one table as
the active implementation set; rule RL007 (``repro.lint``) checks the
two registrations stay in lockstep (same kernel names, same parameter
names) and that nothing outside this package calls a tier module
directly.

The decorators are deliberately trivial -- a dict insert -- so the
registration is visible to AST tooling: RL007 recognises a kernel
entry purely from the ``@numpy_kernel("name")`` /
``@compiled_kernel("name")`` decorator form.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

_NUMPY: Dict[str, Callable] = {}
_COMPILED: Dict[str, Callable] = {}


def numpy_kernel(name: str) -> Callable[[Callable], Callable]:
    """Register ``func`` as the numpy-tier implementation of ``name``."""

    def register(func: Callable) -> Callable:
        _NUMPY[name] = func
        return func

    return register


def compiled_kernel(name: str) -> Callable[[Callable], Callable]:
    """Register ``func`` as the compiled-tier implementation of ``name``."""

    def register(func: Callable) -> Callable:
        _COMPILED[name] = func
        return func

    return register


def numpy_table() -> Dict[str, Callable]:
    return dict(_NUMPY)


def compiled_table() -> Dict[str, Callable]:
    return dict(_COMPILED)


def kernel_names() -> Tuple[str, ...]:
    """All registered kernel names (the numpy tier is the roster)."""
    return tuple(sorted(_NUMPY))
