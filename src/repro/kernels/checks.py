"""Runtime kernel-contract checking (``REPRO_KERNELS_CHECK=1``).

The dynamic twin of the RL013-RL016 static proofs: when the knob is
set, :func:`repro.kernels.set_tier` wraps every bound kernel in
dtype/range asserts generated from the same ``@kernel_contract`` data
the abstract interpreter reads (:mod:`repro.kernels.registry`).  Each
call verifies, per declared argument and for the return value, that

* the concrete numpy dtype matches the contract dtype (``pyint``
  arguments must be plain Python ints), and
* every element lies inside the declared inclusive ``[lo, hi]``
  interval -- residues really are canonical field elements in
  ``[0, p)``.

A violation raises :class:`~repro.errors.SketchError` naming the
kernel, the argument, the observed extreme, and the declared bound --
the same counterexample shape the static analyzer reports.  ``role=
"acc"`` accumulator arguments and escape-produced intermediates are
not re-checked beyond their dtype range: their exactness argument is
the contract's, not a pointwise bound (``docs/numeric-analysis.md``).

The knob is read once at import through the validated env layer
(``mpc/config``): ``0``/unset disables, any integer ``>= 1`` enables,
and a set-but-garbage value raises ``SketchError`` naming the
variable -- the uniform ``REPRO_*`` failure mode.  The tier-1-kernels
CI matrix runs with the knob on (``docs/kernels.md``).
"""

from __future__ import annotations

import functools
from typing import Callable, Optional

import numpy as np

from repro.errors import SketchError
from repro.kernels import registry
from repro.mpc.config import env_int

ENV_CHECK = "REPRO_KERNELS_CHECK"

#: Read once at import (workers re-read at spawn): 0/unset disables.
_ENABLED = (env_int(ENV_CHECK, 0) or 0) > 0

_DTYPES = {"uint64": np.uint64, "int64": np.int64, "bool": np.bool_}


def enabled() -> bool:
    """True when ``REPRO_KERNELS_CHECK`` enabled checking at import."""
    return _ENABLED


def _check_value(kernel: str, label: str, value,
                 spec: registry.ValueSpec) -> None:
    if spec.dtype == "pyint":
        if not isinstance(value, (int, np.integer)):
            raise SketchError(
                f"{ENV_CHECK}: kernel {kernel!r} {label} expected a "
                f"plain int scalar, got {type(value).__name__}")
        lo, hi = spec.bounds()
        if not (lo <= int(value) <= hi):
            raise SketchError(
                f"{ENV_CHECK}: kernel {kernel!r} {label} = {int(value)} "
                f"is outside the declared {spec.describe()}")
        return
    arr = np.asarray(value)
    want = _DTYPES[spec.dtype]
    if arr.dtype != want:
        raise SketchError(
            f"{ENV_CHECK}: kernel {kernel!r} {label} has dtype "
            f"{arr.dtype}, contract declares {spec.dtype}")
    if arr.size == 0 or spec.role == "acc":
        return
    lo, hi = spec.bounds()
    observed_lo = int(arr.min())
    observed_hi = int(arr.max())
    if observed_lo < lo or observed_hi > hi:
        observed = observed_lo if observed_lo < lo else observed_hi
        raise SketchError(
            f"{ENV_CHECK}: kernel {kernel!r} {label} contains "
            f"{observed}, outside the declared {spec.describe()}")


def wrap(name: str, func: Callable) -> Callable:
    """``func`` under per-call contract asserts (no-op sans contract)."""
    contract: Optional[registry.Contract] = getattr(
        func, "__kernel_contract__", None) or registry.contract_for(
            func.__name__)
    if contract is None:
        return func
    params = [p for p in func.__code__.co_varnames[
        :func.__code__.co_argcount]]

    @functools.wraps(func)
    def checked_kernel(*args, **kwargs):
        bound = dict(zip(params, args))
        bound.update(kwargs)
        for param, spec in contract.args.items():
            if param in bound:
                _check_value(name, f"argument {param!r}", bound[param],
                             spec)
        result = func(*args, **kwargs)
        if contract.returns is not None:
            _check_value(name, "return value", result,
                         contract.returns)
        elif result is not None:
            raise SketchError(
                f"{ENV_CHECK}: kernel {name!r} returned "
                f"{type(result).__name__} but its contract declares "
                f"returns=None")
        return result

    return checked_kernel
