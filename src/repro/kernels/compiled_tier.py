"""Compiled kernel tier: numba-jitted twins of the numpy kernels.

numba is auto-detected at import and is *never* a hard dependency --
when it is missing this module still imports, registers its wrapper
entries (so the RL007 parity check sees both tables), and reports
``AVAILABLE = False``; the dispatcher then refuses to activate the
tier.  The jitted cores are built lazily on first activation
(:func:`ensure_built`), so merely importing :mod:`repro.kernels` on
the numpy tier never pays numba's compile cost.

The scalar field arithmetic mirrors the numpy limb kernels exactly:
uint64 32-bit-limb products folded at bit 61 (``2^61 === 1 mod p``)
and the signed 29/32-bit sub-limb combine (``hi << 32`` would overflow
int64 -- ``|hi|`` reaches ~2^53 -- so the shift is applied to the
reduced residue's sub-limbs, as in the numpy tier).  numba follows
Python's floored ``//``/``%`` semantics for signed integers, matching
numpy, so the decoder's divisibility tests agree bit for bit.

What the compiled tier actually buys (EXP-15 measures it): the
scatter, decode, merge, and zero-test cores replace buffered
``np.add.at`` / full-level-grid array passes with fused scalar loops
that early-exit per column -- and they release the GIL, so the worker
fleet's shards genuinely overlap.

The core bodies are plain module-level functions jitted at activation
time (``numba.njit(cache=True)`` applied in :func:`ensure_built`);
they call each other through module globals rebound to the jitted
dispatchers, which keeps ``cache=True`` effective (numba cannot cache
closures over other dispatchers).
"""

from __future__ import annotations

import numpy as np

from repro.errors import SketchError
from repro.kernels.registry import (
    bool_array,
    compiled_kernel,
    escape,
    i64_acc,
    i64_any,
    i64_range,
    i64_residue,
    kernel_contract,
    scalar_int,
    u64_any,
    u64_range,
    u64_residue,
)

try:  # pragma: no cover - exercised by the CI numba matrix job
    import numba
except Exception:  # pragma: no cover - the no-numba default container
    numba = None

#: True when numba imported; the dispatcher gates tier activation on it.
AVAILABLE = numba is not None

MERSENNE_P = (1 << 61) - 1

# uint64 scalar constants baked into the jitted cores (numba types a
# module-level np.uint64 global as uint64, keeping the limb arithmetic
# closed under uint64 -- mixing raw int literals into uint64 math would
# promote to float64 under numpy's casting rules).
_P_U64 = np.uint64(MERSENNE_P)
_MASK29_U = np.uint64((1 << 29) - 1)
_MASK32_U = np.uint64((1 << 32) - 1)
_U0 = np.uint64(0)
_U1 = np.uint64(1)
_U3 = np.uint64(3)
_U29 = np.uint64(29)
_U32 = np.uint64(32)
_U61 = np.uint64(61)

_IMASK29 = (1 << 29) - 1
_IMASK32 = (1 << 32) - 1


# ---------------------------------------------------------------------------
# Scalar helpers (jitted in ensure_built; called via these globals)
# ---------------------------------------------------------------------------

def _mulmod(a, b):
    a_hi = a >> _U32
    a_lo = a & _MASK32_U
    b_hi = b >> _U32
    b_lo = b & _MASK32_U
    hh = a_hi * b_hi
    mid = a_hi * b_lo + a_lo * b_hi
    ll = a_lo * b_lo
    acc = ((hh << _U3) + (mid >> _U29) + ((mid & _MASK29_U) << _U32)
           + (ll >> _U61) + (ll & _P_U64))
    acc = (acc & _P_U64) + (acc >> _U61)
    if acc >= _P_U64:
        acc -= _P_U64
    return acc


def _addmod(a, b):
    s = a + b
    s = (s & _P_U64) + (s >> _U61)
    if s >= _P_U64:
        s -= _P_U64
    return s


def _powmod(base, exp):
    result = _U1
    b = base
    e = exp
    while e != _U0:
        if e & _U1 != _U0:
            result = _mulmod(result, b)
        b = _mulmod(b, b)
        e = e >> _U1
    return result


def _combine(lo, hi):
    # int64 limbs, any sign; % follows Python's floored semantics.
    lo_m = lo % MERSENNE_P
    hi_m = hi % MERSENNE_P
    top = hi_m >> 29
    bot = hi_m & _IMASK29
    shifted = top + (bot << 32)
    shifted = (shifted & MERSENNE_P) + (shifted >> 61)
    if shifted >= MERSENNE_P:
        shifted -= MERSENNE_P
    return (lo_m + shifted) % MERSENNE_P


# ---------------------------------------------------------------------------
# Array cores (jitted in ensure_built)
# ---------------------------------------------------------------------------

def _mulmod_flat(a, b):
    out = np.empty(a.shape[0], dtype=np.uint64)
    for i in range(a.shape[0]):
        out[i] = _mulmod(a[i], b[i])
    return out


def _addmod_flat(a, b):
    out = np.empty(a.shape[0], dtype=np.uint64)
    for i in range(a.shape[0]):
        out[i] = _addmod(a[i], b[i])
    return out


def _poly_core(coeffs, xs):
    k = coeffs.shape[0]
    h = coeffs.shape[1]
    e = xs.shape[0]
    out = np.empty((e, h), dtype=np.uint64)
    for i in range(e):
        x = xs[i]
        for j in range(h):
            acc = coeffs[k - 1, j]
            for row in range(k - 2, -1, -1):
                acc = _addmod(_mulmod(acc, x), coeffs[row, j])
            out[i, j] = acc
    return out


def _tz_core(xs, cap):
    e = xs.shape[0]
    out = np.empty(e, dtype=np.int64)
    for i in range(e):
        x = xs[i]
        if x == _U0:
            out[i] = cap
            continue
        tz = 0
        while x & _U1 == _U0:
            x = x >> _U1
            tz += 1
        out[i] = tz if tz < cap else cap
    return out


def _powmod_core(exps, z):
    e = exps.shape[0]
    out = np.empty(e, dtype=np.int64)
    for i in range(e):
        out[i] = np.int64(_powmod(z, exps[i]))
    return out


def _combine_flat(lo, hi):
    out = np.empty(lo.shape[0], dtype=np.int64)
    for i in range(lo.shape[0]):
        out[i] = _combine(lo[i], hi[i])
    return out


def _scatter_core(flat_cells, columns, levels, slots, col_levels,
                  idxs, deltas, zpows):
    cl = columns * levels
    row_words = 4 * cl
    for i in range(slots.shape[0]):
        base = slots[i] * row_words
        d = deltas[i]
        w0 = d
        w1 = d * idxs[i]
        z = zpows[i]
        w2 = d * (z & _IMASK32)
        w3 = d * (z >> 32)
        for c in range(columns):
            cell = c * levels + col_levels[i, c]
            flat_cells[base + cell] += w0
            flat_cells[base + cl + cell] += w1
            flat_cells[base + 2 * cl + cell] += w2
            flat_cells[base + 3 * cl + cell] += w3


def _decode_core(W, S, lo, hi, max_index, z):
    k = W.shape[0]
    L = W.shape[1]
    out = np.full(k, -1, dtype=np.int64)
    for i in range(k):
        for lv in range(L):
            w = W[i, lv]
            if w == 0:
                continue
            s = S[i, lv]
            if s % w != 0:
                continue
            idx = s // w
            if idx < 0 or idx >= max_index:
                continue
            fingerprint = _combine(lo[i, lv], hi[i, lv])
            wm = np.uint64(w % MERSENNE_P)
            zp = _powmod(z, np.uint64(idx))
            if np.int64(_mulmod(wm, zp)) == fingerprint:
                out[i] = idx
                break
    return out


def _merge_core(rows, members, glens, out):
    # rows: (count, R) flat cells; out: (g, R) zeroed.
    words = rows.shape[1]
    offset = 0
    for gi in range(glens.shape[0]):
        for m in range(glens[gi]):
            row = members[offset + m]
            for wj in range(words):
                out[gi, wj] += rows[row, wj]
        offset += glens[gi]


def _zero_core(cells):
    k = cells.shape[0]
    columns = cells.shape[2]
    levels = cells.shape[3]
    out = np.empty(k, dtype=np.bool_)
    for i in range(k):
        zero = True
        for c in range(columns):
            sw = np.int64(0)
            ss = np.int64(0)
            slo = np.int64(0)
            shi = np.int64(0)
            for lv in range(levels):
                sw += cells[i, 0, c, lv]
                ss += cells[i, 1, c, lv]
                slo += cells[i, 2, c, lv]
                shi += cells[i, 3, c, lv]
            if sw != 0 or ss != 0 or _combine(slo, shi) != 0:
                zero = False
                break
        out[i] = zero
    return out


#: name -> jitted core, filled by :func:`ensure_built`.
_CORES: dict = {}


def ensure_built() -> None:
    """Jit-compile the cores once per process (idempotent, lazy compile).

    Rebinds the scalar-helper globals to their jitted dispatchers
    *before* registering the array cores, so the cores resolve them as
    jitted callees at (their own, lazy) compile time.  ``cache=True``
    persists the machine code next to this file, so respawned worker
    processes skip recompilation.
    """
    global _mulmod, _addmod, _powmod, _combine
    if _CORES:
        return
    if not AVAILABLE:
        raise SketchError(
            "the compiled kernel tier needs numba, which is not "
            "importable; select REPRO_KERNELS=auto or numpy"
        )

    def jit(func):
        return numba.njit(cache=True, nogil=True)(func)

    _mulmod = jit(_mulmod)
    _addmod = jit(_addmod)
    _powmod = jit(_powmod)
    _combine = jit(_combine)
    _CORES.update(
        mulmod=jit(_mulmod_flat),
        addmod=jit(_addmod_flat),
        poly=jit(_poly_core),
        tz=jit(_tz_core),
        powmod=jit(_powmod_core),
        combine=jit(_combine_flat),
        scatter=jit(_scatter_core),
        decode=jit(_decode_core),
        merge=jit(_merge_core),
        zero=jit(_zero_core),
    )


def _require_cores() -> dict:
    if not _CORES:
        ensure_built()
    return _CORES


def _u64_contig(arr) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(arr, dtype=np.uint64))


def _i64_contig(arr) -> np.ndarray:
    return np.ascontiguousarray(np.asarray(arr, dtype=np.int64))


# ---------------------------------------------------------------------------
# Registered wrappers
# ---------------------------------------------------------------------------
# These plain-python entry points are registered even without numba, so
# the RL007 parity table always has both sides; they only reach the
# jitted cores once the dispatcher activated the tier (which requires
# numba).  Parameter names match the numpy twins exactly -- RL007
# checks that.

@compiled_kernel("mulmod_many")
@kernel_contract(args={"a": u64_residue(), "b": u64_residue()},
                 returns=u64_residue(), shape="broadcast")
def mulmod_many(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    cores = _require_cores()
    a2, b2 = np.broadcast_arrays(np.asarray(a, dtype=np.uint64),
                                 np.asarray(b, dtype=np.uint64))
    out = cores["mulmod"](_u64_contig(a2).ravel(),
                          _u64_contig(b2).ravel())
    return out.reshape(a2.shape)


@compiled_kernel("addmod_many")
@kernel_contract(args={"a": u64_residue(), "b": u64_residue()},
                 returns=u64_residue(), shape="broadcast")
def addmod_many(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    cores = _require_cores()
    a2, b2 = np.broadcast_arrays(np.asarray(a, dtype=np.uint64),
                                 np.asarray(b, dtype=np.uint64))
    out = cores["addmod"](_u64_contig(a2).ravel(),
                          _u64_contig(b2).ravel())
    return out.reshape(a2.shape)


@compiled_kernel("poly_field_values")
@kernel_contract(args={"coeffs": u64_residue(), "xs": u64_residue()},
                 returns=u64_residue(), shape="outer")
def poly_field_values(coeffs: np.ndarray, xs: np.ndarray) -> np.ndarray:
    cores = _require_cores()
    return cores["poly"](_u64_contig(coeffs), _u64_contig(xs))


@compiled_kernel("trailing_zeros_many")
@kernel_contract(
    args={"xs": u64_any(), "cap": scalar_int(1, 64)},
    returns=i64_range(0, 64), shape="elementwise",
    escapes=(
        escape("wrap",
               "~x + 1 isolates the lowest set bit; the uint64 wrap at "
               "x == 0 yields 0 (the intended empty result) and every "
               "nonzero result is a single power of two <= 2^63",
               result=u64_range(0, 1 << 63)),
        escape("float64",
               "lsb is 0 or a single power of two <= 2^63, which "
               "float64 represents exactly; only the exponent bits are "
               "read, and the lsb == 0 case is routed to the xs == 0 "
               "branch, so the consumed exponent lies in [1, 64]",
               result=i64_range(1, 64)),
    ),
)
def trailing_zeros_many(xs: np.ndarray, cap: int) -> np.ndarray:
    cores = _require_cores()
    flat = _u64_contig(xs)
    return cores["tz"](flat.ravel(),
                       np.int64(cap)).reshape(flat.shape)


@compiled_kernel("powmod_many")
@kernel_contract(args={"exps": u64_any(), "z": scalar_int(0, 1 << 62)},
                 returns=i64_residue(), shape="elementwise")
def powmod_many(exps: np.ndarray, z: int) -> np.ndarray:
    cores = _require_cores()
    return cores["powmod"](_u64_contig(exps),
                           np.uint64(int(z) % MERSENNE_P))


@compiled_kernel("combine_limbs")
@kernel_contract(args={"lo": i64_any(), "hi": i64_any()},
                 returns=i64_residue(), shape="broadcast")
def combine_limbs(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    cores = _require_cores()
    lo2, hi2 = np.broadcast_arrays(np.asarray(lo, dtype=np.int64),
                                   np.asarray(hi, dtype=np.int64))
    out = cores["combine"](_i64_contig(lo2).ravel(),
                           _i64_contig(hi2).ravel())
    return out.reshape(lo2.shape)


@compiled_kernel("pool_scatter")
@kernel_contract(
    args={
        "flat_cells": i64_acc(),
        "columns": scalar_int(1, 1 << 20),
        "levels": scalar_int(1, 64),
        "slots": i64_range(0, (1 << 31) - 1),
        "col_levels": i64_range(0, 63),
        "idxs": i64_range(0, 1 << 40),
        "deltas": i64_range(-(1 << 20), 1 << 20),
        "zpows": i64_residue(),
    },
    returns=None, shape="scatter", mutates="flat_cells",
)
def pool_scatter(flat_cells: np.ndarray, columns: int, levels: int,
                 slots: np.ndarray, col_levels: np.ndarray,
                 idxs: np.ndarray, deltas: np.ndarray,
                 zpows: np.ndarray) -> None:
    if slots.shape[0] == 0:
        return
    cores = _require_cores()
    # flat_cells is mutated in place: it must already be the caller's
    # flat int64 view (never copied here).
    cores["scatter"](flat_cells, np.int64(columns), np.int64(levels),
                     _i64_contig(slots), _i64_contig(col_levels),
                     _i64_contig(idxs), _i64_contig(deltas),
                     _i64_contig(zpows))


@compiled_kernel("decode_prefix")
@kernel_contract(
    args={
        "prefix": i64_acc(),
        "max_index": scalar_int(1, 1 << 62),
        "z": scalar_int(0, 1 << 62),
    },
    returns=i64_range(-1, (1 << 62) - 1), shape="columns",
    escapes=(
        escape("divide",
               "W and S are exact sums of at most 2^31 updates with "
               "|weight| < 2^30, so |S| < 2^62 and the INT64_MIN // -1 "
               "floordiv corner cannot occur",
               result=i64_any()),
    ),
)
def decode_prefix(prefix: np.ndarray, max_index: int,
                  z: int) -> np.ndarray:
    cores = _require_cores()
    W, S, lo, hi = prefix
    return cores["decode"](_i64_contig(W), _i64_contig(S),
                           _i64_contig(lo), _i64_contig(hi),
                           np.int64(max_index),
                           np.uint64(int(z) % MERSENNE_P))


@compiled_kernel("merge_groups")
@kernel_contract(
    args={
        "cells": i64_acc(),
        "members": i64_range(0, (1 << 31) - 1),
        "glens": i64_range(0, (1 << 31) - 1, total=(1 << 31) - 1),
    },
    returns=i64_acc(), shape="groups",
)
def merge_groups(cells: np.ndarray, members: np.ndarray,
                 glens: np.ndarray) -> np.ndarray:
    cores = _require_cores()
    g = glens.shape[0]
    out = np.zeros((g,) + cells.shape[1:], dtype=np.int64)
    if g == 0 or members.shape[0] == 0:
        return out
    rows = _i64_contig(cells).reshape(cells.shape[0], -1)
    cores["merge"](rows, _i64_contig(members), _i64_contig(glens),
                   out.reshape(g, -1))
    return out


@compiled_kernel("is_zero_cells")
@kernel_contract(args={"cells": i64_acc()}, returns=bool_array(),
                 shape="rows")
def is_zero_cells(cells: np.ndarray) -> np.ndarray:
    cores = _require_cores()
    return cores["zero"](_i64_contig(cells))
