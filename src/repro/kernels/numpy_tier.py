"""Pure-numpy kernel tier: the always-available reference implementations.

These are the single source of truth for the hot-path inner loops --
GF(2^61-1) limb arithmetic, the geometric-level hashing, the pool
scatter, the batch prefix decoder, and the group-merge / zero-test
cell cores.  The sketch layer (:mod:`repro.sketch`) and the execution
backends (:mod:`repro.mpc.backend`) call them *only* through the tier
dispatcher (:mod:`repro.kernels`), so the compiled tier can be swapped
in per process without touching any call site.

Every kernel here is deliberately self-contained (no imports from
:mod:`repro.sketch`): the tier modules sit below the sketch layer in
the import graph, which is what lets worker processes pick their tier
at spawn before any sketch state exists.

Bit-identity contract: the compiled twins in
:mod:`repro.kernels.compiled_tier` must return bit-identical results
for every input -- all values are canonical mod-p residues or exact
int64 sums, so any correct evaluation order agrees exactly.
``tests/test_kernels.py`` asserts the full matrix.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.registry import (
    bool_array,
    escape,
    i64_acc,
    i64_any,
    i64_range,
    i64_residue,
    kernel_contract,
    numpy_kernel,
    scalar_int,
    u64_any,
    u64_range,
    u64_residue,
)
from repro.lint.markers import hot_path

MERSENNE_P = (1 << 61) - 1

# uint64 constants for the limb arithmetic: NumPy keeps uint64 closed
# under operations with same-dtype scalars, so every shift/mask below
# uses these instead of bare Python ints.
_P_U64 = np.uint64(MERSENNE_P)
_MASK29 = np.uint64((1 << 29) - 1)
_MASK32 = np.uint64((1 << 32) - 1)
_U1 = np.uint64(1)
_U3 = np.uint64(3)
_U29 = np.uint64(29)
_U32 = np.uint64(32)
_U61 = np.uint64(61)

_IMASK29 = (1 << 29) - 1
_IMASK32 = (1 << 32) - 1


@numpy_kernel("mulmod_many")
@kernel_contract(args={"a": u64_residue(), "b": u64_residue()},
                 returns=u64_residue(), shape="broadcast")
@hot_path
def mulmod_many(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``(a * b) mod p`` for ``uint64`` arrays with entries
    in ``[0, p)``.

    Splits both operands into 32-bit limbs so every partial product and
    partial sum fits ``uint64`` (see :mod:`repro.sketch.hashing`), then
    folds the bits above position 61 back down (``2^61 === 1 mod p``).
    Broadcasting works as for ``a * b``.
    """
    a_hi = a >> _U32
    a_lo = a & _MASK32
    b_hi = b >> _U32
    b_lo = b & _MASK32
    hh = a_hi * b_hi                      # < 2^58
    mid = a_hi * b_lo + a_lo * b_hi       # < 2^62
    ll = a_lo * b_lo                      # < 2^64
    # a*b = hh*2^64 + mid*2^32 + ll; fold at bit 61 (2^61 === 1 mod p):
    #   hh*2^64 === hh*8, mid*2^32 === (mid >> 29) + (mid & M29)*2^32,
    #   ll === (ll >> 61) + (ll & p).  The sum stays below 3 * 2^61.
    acc = ((hh << _U3) + (mid >> _U29) + ((mid & _MASK29) << _U32)
           + (ll >> _U61) + (ll & _P_U64))
    acc = (acc & _P_U64) + (acc >> _U61)
    return np.where(acc >= _P_U64, acc - _P_U64, acc)


@numpy_kernel("addmod_many")
@kernel_contract(args={"a": u64_residue(), "b": u64_residue()},
                 returns=u64_residue(), shape="broadcast")
@hot_path
def addmod_many(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``(a + b) mod p`` for ``uint64`` arrays in ``[0, p)``."""
    s = a + b                             # < 2^62
    s = (s & _P_U64) + (s >> _U61)
    return np.where(s >= _P_U64, s - _P_U64, s)


@numpy_kernel("poly_field_values")
@kernel_contract(args={"coeffs": u64_residue(), "xs": u64_residue()},
                 returns=u64_residue(), shape="outer")
@hot_path
def poly_field_values(coeffs: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Evaluate many degree-(k-1) polynomials at many points in GF(p).

    ``coeffs`` has shape ``(k, h)`` -- column ``j`` holds the
    coefficients ``a_0 .. a_{k-1}`` of polynomial ``j`` -- and ``xs``
    has shape ``(e,)`` with entries in ``[0, p)``.  Returns the
    ``(e, h)`` uint64 matrix of Horner evaluations.
    """
    points = xs[:, None]
    acc = np.broadcast_to(coeffs[-1][None, :], (xs.shape[0],
                                                coeffs.shape[1]))
    # repro-lint: disable=RL006 -- Horner loop over k <= 4 coefficient rows, a model constant, never over pool rows
    for row in range(coeffs.shape[0] - 2, -1, -1):
        acc = addmod_many(mulmod_many(acc, points), coeffs[row][None, :])
    return np.ascontiguousarray(acc)


@numpy_kernel("trailing_zeros_many")
@kernel_contract(
    args={"xs": u64_any(), "cap": scalar_int(1, 64)},
    returns=i64_range(0, 64), shape="elementwise",
    escapes=(
        escape("wrap",
               "~x + 1 isolates the lowest set bit; the uint64 wrap at "
               "x == 0 yields 0 (the intended empty result) and every "
               "nonzero result is a single power of two <= 2^63",
               result=u64_range(0, 1 << 63)),
        escape("float64",
               "lsb is 0 or a single power of two <= 2^63, which "
               "float64 represents exactly; only the exponent bits are "
               "read, and the lsb == 0 case is routed to the xs == 0 "
               "branch, so the consumed exponent lies in [1, 64]",
               result=i64_range(1, 64)),
    ),
)
@hot_path
def trailing_zeros_many(xs: np.ndarray, cap: int) -> np.ndarray:
    """Trailing zero bits of each ``uint64`` entry, capped at ``cap``.

    Isolates the lowest set bit with ``x & (~x + 1)`` and reads its
    position from the float64 exponent (``frexp``); powers of two up to
    ``2^63`` convert to float64 exactly, so this matches the scalar
    bit-trick bit for bit.  Zero entries map to ``cap``.  Both escapes
    from exact uint64 interval arithmetic (the intentional wrap, the
    float64 exponent read) are declared in the contract above, where
    RL015 audits them.
    """
    xs = np.asarray(xs, dtype=np.uint64)
    lsb = xs & (~xs + _U1)
    _, exponent = np.frexp(lsb.astype(np.float64))
    tz = exponent.astype(np.int64) - 1
    return np.where(xs == 0, cap, np.minimum(tz, cap))


@numpy_kernel("powmod_many")
@kernel_contract(args={"exps": u64_any(), "z": scalar_int(0, 1 << 62)},
                 returns=i64_residue(), shape="elementwise")
@hot_path
def powmod_many(exps: np.ndarray, z: int) -> np.ndarray:
    """``z ** exps mod p`` for a ``uint64`` exponent array.

    Binary exponentiation against the exact Python-int square ladder of
    ``z``; returns int64 canonical residues in ``[0, p)``, bit-identical
    to ``pow(z, e, p)`` per entry (canonical residues are unique, so any
    correct evaluation order agrees).
    """
    exps = np.asarray(exps, dtype=np.uint64)
    out = np.ones(exps.shape, dtype=np.uint64)
    base = int(z) % MERSENNE_P
    remaining = exps
    # repro-lint: disable=RL006 -- bit loop over <= 64 exponent bits, a word-size constant, never over pool rows
    while remaining.any():
        odd = (remaining & _U1) != 0
        if odd.any():
            out[odd] = mulmod_many(out[odd], np.uint64(base))
        base = base * base % MERSENNE_P
        remaining = remaining >> _U1
    return out.astype(np.int64)


@numpy_kernel("combine_limbs")
@kernel_contract(args={"lo": i64_any(), "hi": i64_any()},
                 returns=i64_residue(), shape="broadcast")
@hot_path
def combine_limbs(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """``(lo + 2^32 * hi) mod p`` for int64 limb arrays (any sign).

    Reduces each limb mod p first, then applies the shift-by-32 with
    29/32-bit sub-limbs so every intermediate fits int64 (numpy's ``%``
    returns non-negative remainders, matching Python).
    """
    lo_m = lo % MERSENNE_P
    hi_m = hi % MERSENNE_P
    # (hi_m << 32) mod p: split hi_m = top*2^29 + bot, use 2^61 === 1.
    top = hi_m >> 29
    bot = hi_m & _IMASK29
    shifted = top + (bot << 32)                        # < 2^62
    shifted = (shifted & MERSENNE_P) + (shifted >> 61)
    shifted = np.where(shifted >= MERSENNE_P, shifted - MERSENNE_P,
                       shifted)
    return (lo_m + shifted) % MERSENNE_P


@numpy_kernel("pool_scatter")
@kernel_contract(
    args={
        "flat_cells": i64_acc(),
        "columns": scalar_int(1, 1 << 20),
        "levels": scalar_int(1, 64),
        "slots": i64_range(0, (1 << 31) - 1),
        "col_levels": i64_range(0, 63),
        "idxs": i64_range(0, 1 << 40),
        "deltas": i64_range(-(1 << 20), 1 << 20),
        "zpows": i64_residue(),
    },
    returns=None, shape="scatter", mutates="flat_cells",
)
@hot_path
def pool_scatter(flat_cells: np.ndarray, columns: int, levels: int,
                 slots: np.ndarray, col_levels: np.ndarray,
                 idxs: np.ndarray, deltas: np.ndarray,
                 zpows: np.ndarray) -> None:
    """Scatter many (slot, coordinate, delta) updates into a flattened
    ``(count, 4, columns, levels)`` int64 cell block, in place.

    Duplicate (slot, cell) targets accumulate correctly (``np.add.at``),
    and int64 addition is exact and order-independent, so any partition
    of the entries over callers lands in the same final state.
    """
    e = slots.shape[0]
    if e == 0:
        return
    row_words = 4 * columns * levels
    cell_base = np.arange(columns, dtype=np.int64) * levels
    q_offsets = (np.arange(4, dtype=np.int64)
                 * (columns * levels))[None, :, None]
    cell_flat = cell_base[None, :] + col_levels                # (e, c)
    flat = ((slots * row_words)[:, None, None]
            + q_offsets + cell_flat[:, None, :]).ravel()
    weights = np.repeat(
        np.stack(
            [deltas, deltas * idxs, deltas * (zpows & _IMASK32),
             deltas * (zpows >> 32)],
            axis=1,
        ).ravel(),
        columns,
    )
    np.add.at(flat_cells, flat, weights)


@numpy_kernel("decode_prefix")
@kernel_contract(
    args={
        "prefix": i64_acc(),
        "max_index": scalar_int(1, 1 << 62),
        "z": scalar_int(0, 1 << 62),
    },
    returns=i64_range(-1, (1 << 62) - 1), shape="columns",
    escapes=(
        escape("divide",
               "W and S are exact sums of at most 2^31 updates with "
               "|weight| < 2^30, so |S| < 2^62 and the INT64_MIN // -1 "
               "floordiv corner cannot occur",
               result=i64_any()),
    ),
)
@hot_path
def decode_prefix(prefix: np.ndarray, max_index: int,
                  z: int) -> np.ndarray:
    """Decode many prefix-summed recovery columns at once.

    ``prefix`` is the ``(4, k, levels)`` int64 block of materialized
    ``(W, S, Flo, Fhi)`` level prefixes for ``k`` independent columns.
    For each column the divisibility, range, and fingerprint tests
    (``F == W * z^idx mod p``, with ``z`` the family's fingerprint
    base) run on every level as array operations, and the answer is
    the lowest passing level's coordinate -- ``-1`` marking columns
    where every level rejected (the sampler's ``bottom``).
    """
    W, S, lo, hi = prefix
    k = W.shape[0]
    nonzero = W != 0
    safe_w = np.where(nonzero, W, 1)
    # numpy's % and // follow Python's floored-division convention for
    # signed operands, so these match the scalar ``s % w`` / ``s // w``.
    divisible = nonzero & (S % safe_w == 0)
    idx = S // safe_w
    candidate = divisible & (idx >= 0) & (idx < max_index)
    # The bounds-checked coordinates: every position where ``candidate``
    # holds keeps its idx, every other position reads the sampler's
    # bottom.  Answers are only ever taken where ``ok`` (which implies
    # ``candidate``) holds, so this is bit-identical to indexing ``idx``
    # directly -- and it keeps the returned values provably inside
    # ``[-1, max_index)`` (rule RL014).
    safe_idx = np.where(candidate, idx, -1)
    ok = np.zeros(candidate.shape, dtype=bool)
    if candidate.any():
        fingerprints = combine_limbs(lo[candidate], hi[candidate])
        wm = (W[candidate] % MERSENNE_P).astype(np.uint64)
        zp = powmod_many(idx[candidate].astype(np.uint64), z)
        ok[candidate] = (mulmod_many(wm, zp.astype(np.uint64))
                         .astype(np.int64) == fingerprints)
    found = ok.any(axis=1)
    first = np.argmax(ok, axis=1)
    return np.where(found, safe_idx[np.arange(k), first], -1)


@numpy_kernel("merge_groups")
@kernel_contract(
    args={
        "cells": i64_acc(),
        "members": i64_range(0, (1 << 31) - 1),
        "glens": i64_range(0, (1 << 31) - 1, total=(1 << 31) - 1),
    },
    returns=i64_acc(), shape="groups",
)
@hot_path
def merge_groups(cells: np.ndarray, members: np.ndarray,
                 glens: np.ndarray) -> np.ndarray:
    """Per-group sums of member rows of a ``(count, 4, c, L)`` block.

    ``members`` is the flat concatenation of the groups' row indices
    and ``glens`` the per-group lengths; the result is the
    ``(len(glens), 4, c, L)`` stack of merged cells -- entry ``i`` the
    element-wise int64 sum of that group's rows (zeros for an empty
    group).  One gather plus one segmented reduction
    (``np.add.reduceat``) replaces the per-group Python loop; int64
    addition is exact and order-independent, so the result matches any
    merge order bit for bit.
    """
    g = glens.shape[0]
    out = np.zeros((g,) + cells.shape[1:], dtype=np.int64)
    live = glens > 0
    if not live.any():
        return out
    starts = np.zeros(g, dtype=np.int64)
    np.cumsum(glens[:-1], out=starts[1:])
    gathered = cells[members].reshape(members.shape[0], -1)
    # Empty groups are excluded from the reduceat starts (a zero-length
    # reduceat segment would return the element *at* the offset instead
    # of zero); consecutive live segments stay adjacent in ``members``,
    # so the surviving offsets bound exactly the live groups' rows.
    reduced = np.add.reduceat(gathered, starts[live], axis=0)
    out.reshape(g, -1)[live] = reduced
    return out


@numpy_kernel("is_zero_cells")
@kernel_contract(args={"cells": i64_acc()}, returns=bool_array(),
                 shape="rows")
@hot_path
def is_zero_cells(cells: np.ndarray) -> np.ndarray:
    """Per-row all-columns zero test over a ``(k, 4, c, L)`` stack."""
    sums = cells.sum(axis=-1)                          # (k, 4, columns)
    zero = (sums[:, 0] == 0) & (sums[:, 1] == 0)
    if zero.any():
        zero &= combine_limbs(sums[:, 2], sums[:, 3]) == 0
    return zero.all(axis=-1)
