"""Auxiliary-structure machinery for batch Euler-tour updates.

Batch join (paper, Section 6.2) works by building the auxiliary tree
``T_H`` over the tours being merged, walking its auxiliary sequence, and
emitting O(k) *shift messages* that every machine applies to its local
tour indices.  Definition 6.2's recursive sequence and the four
forward/backward cases reduce to one statement: **the merged tour is a
deterministic interleaving of O(k) contiguous segments of the old
tours**, and each segment is shifted by a single offset.  This module
owns the segment bookkeeping:

* :class:`SegmentMap` -- the set of (old interval -> new tour, offset)
  messages for one old tour, applied by position lookup;
* :func:`nested_interval_decomposition` -- the inverse machinery for
  batch *split*: removing k tree edges cuts a tour into O(k) fragments
  whose nesting structure determines the resulting components.

Both are pure data manipulation, independent of the simulator; the
distributed forest turns their outputs into broadcastable messages.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Segment:
    """Old positions ``[old_lo, old_hi)`` map to ``old + delta`` in
    tour ``new_tid``."""

    old_lo: int
    old_hi: int
    delta: int
    new_tid: int

    def __post_init__(self) -> None:
        if self.old_lo >= self.old_hi:
            raise ValueError("segment must be non-empty")

    def covers(self, pos: int) -> bool:
        return self.old_lo <= pos < self.old_hi

    def apply(self, pos: int) -> Tuple[int, int]:
        return self.new_tid, pos + self.delta


class SegmentMap:
    """The shift messages for one old tour, with O(log k) lookup.

    A machine holding a directed edge at old position ``p`` finds its
    segment by binary search -- this mirrors the paper's "each machine
    can update its part of the E-tour stored inside the local memory"
    (Lemma 6.4) after receiving the broadcast messages.
    """

    def __init__(self, segments: Sequence[Segment]):
        ordered = sorted(segments, key=lambda s: s.old_lo)
        for left, right in zip(ordered, ordered[1:]):
            if left.old_hi > right.old_lo:
                raise ValueError("segments overlap")
        self._segments: List[Segment] = list(ordered)
        self._starts: List[int] = [s.old_lo for s in ordered]

    def __len__(self) -> int:
        return len(self._segments)

    def __iter__(self):
        return iter(self._segments)

    def lookup(self, pos: int) -> Optional[Segment]:
        i = bisect.bisect_right(self._starts, pos) - 1
        if i < 0:
            return None
        segment = self._segments[i]
        return segment if segment.covers(pos) else None

    def apply(self, pos: int) -> Tuple[int, int]:
        segment = self.lookup(pos)
        if segment is None:
            raise KeyError(f"position {pos} is not covered by any segment")
        return segment.apply(pos)

    @property
    def message_count(self) -> int:
        """Each segment is one O(1)-word broadcast message."""
        return len(self._segments)


def rotation_segments(length: int, k: int, new_tid: int,
                      base: int = 0) -> List[Segment]:
    """Segments describing the rotation of a tour by ``k`` positions.

    Rotated position of old ``p`` is ``(p - k) mod length``, landing at
    ``base + rotated``.  At most two segments (the paper's Rooting
    operation, Lemma 5.1, is exactly this one broadcast).
    """
    if length == 0:
        return []
    k %= length
    if k == 0:
        return [Segment(0, length, base, new_tid)]
    return [
        Segment(k, length, base - k, new_tid),
        Segment(0, k, base + length - k, new_tid),
    ]


@dataclass
class CutInterval:
    """The tour interval bracketed by a removed tree edge.

    ``lo``/``hi`` are the positions of the two directed traversals of
    the removed edge; positions strictly inside belong to the severed
    subtree, rooted at ``child``.
    """

    lo: int
    hi: int
    child: int
    edge: Tuple[int, int]


@dataclass
class Component:
    """One output component of a batch split: ordered old-position
    fragments (inclusive bounds), plus its root vertex."""

    root: int
    fragments: List[Tuple[int, int]]

    @property
    def length(self) -> int:
        return sum(hi - lo + 1 for lo, hi in self.fragments)


def nested_interval_decomposition(
    length: int, intervals: Sequence[CutInterval], top_root: int
) -> List[Component]:
    """Decompose a tour into components after removing cut intervals.

    ``intervals`` must be properly nested or disjoint (they are subtree
    brackets of one tree, so this always holds).  Returns one component
    per interval (the severed subtree) plus the *top* component (what
    remains around the removed subtrees, keeping ``top_root``).  The
    removed edge positions themselves (``lo`` and ``hi``) belong to no
    component.  Total fragment count is O(k), the paper's message bound
    for batch deletions (Section 6.3).
    """
    ordered = sorted(intervals, key=lambda iv: iv.lo)
    for left, right in zip(ordered, ordered[1:]):
        if right.lo <= left.hi and right.hi > left.hi:
            raise ValueError("cut intervals cross without nesting")

    top = Component(root=top_root, fragments=[])
    components: List[Component] = []
    # Stack entries: (component, resume_position, interval_hi).
    stack: List[Tuple[Component, int, int]] = [(top, 0, length)]

    def close_until(pos: int) -> None:
        """Pop every interval that ends before ``pos`` begins."""
        while len(stack) > 1 and stack[-1][2] < pos:
            component, resume, hi = stack.pop()
            if resume <= hi - 1:
                component.fragments.append((resume, hi - 1))
            parent, parent_resume, parent_hi = stack.pop()
            stack.append((parent, hi + 1, parent_hi))

    for interval in ordered:
        close_until(interval.lo)
        component, resume, comp_hi = stack.pop()
        if resume <= interval.lo - 1:
            component.fragments.append((resume, interval.lo - 1))
        stack.append((component, resume, comp_hi))
        # Parent resumes after the interval; recorded when child closes.
        new_component = Component(root=interval.child, fragments=[])
        components.append(new_component)
        stack.append((new_component, interval.lo + 1, interval.hi))

    close_until(length + 1)
    component, resume, comp_hi = stack.pop()
    if resume <= length - 1:
        component.fragments.append((resume, length - 1))
    components.append(top)
    return components
