"""Distributed Euler-tour forest: index-based tours, batch join/split.

This is the MPC-facing Euler-tour structure of Sections 5-6.2.  No tour
is ever materialised as a sequence; the structure stores, exactly as the
paper prescribes, *per-edge and per-vertex index information*:

* for each tree edge, the tour id and the positions of its two directed
  traversals (``pos``),
* for each vertex, its tour id; first/last occurrence indices ``f(v)``,
  ``l(v)`` are derived from the incident edges' positions ("indexes ...
  implicitly stored as information on the edges incident on v").

Batch operations update these indices by computing O(k) *segment shift
messages* (see :mod:`repro.euler.auxiliary`): the merged/split tours are
deterministic interleavings of contiguous intervals of old tours, each
moved by a single offset -- which is what Definition 6.2's auxiliary
sequence and the four forward/backward cases compute edge-pair by edge
pair.  Every batch method returns the number of messages it would
broadcast so callers can charge MPC rounds faithfully.

Correctness is property-tested against the list-based reference
(:mod:`repro.euler.sequential`) in ``tests/test_euler_distributed.py``.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.euler.auxiliary import (
    Component,
    CutInterval,
    Segment,
    SegmentMap,
    nested_interval_decomposition,
    rotation_segments,
)
from repro.types import Edge, canonical

DirectedEdge = Tuple[int, int]


@dataclass
class BatchReport:
    """Accounting output of a batch tour operation.

    ``messages`` counts the O(1)-word broadcast messages (segment
    shifts, new edge positions, tour relabels) the operation generates;
    the connectivity algorithm charges one broadcast of this many words.
    """

    messages: int = 0
    new_tours: List[int] = field(default_factory=list)


class _Frame:
    """One open tour during the iterative batch-join layout."""

    __slots__ = ("tid", "length", "rotation", "kids", "kid_index",
                 "cur_rot", "cur_out", "base", "return_edge")

    def __init__(self, tid: int, length: int, rotation: int,
                 kids: List[Tuple[int, int, int, int]], base: int,
                 return_edge: Optional[DirectedEdge]):
        self.tid = tid
        self.length = length
        self.rotation = rotation
        self.kids = kids
        self.kid_index = 0
        self.cur_rot = 0
        self.cur_out = base
        self.base = base
        self.return_edge = return_edge


class DistributedEulerForest:
    """Euler-tour forest over vertices ``0 .. n-1`` with batch updates."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("need at least one vertex")
        self.n = n
        self._next_tid = n
        self._tour_of_vertex: Dict[int, int] = {v: v for v in range(n)}
        self._vertices_by_tour: Dict[int, Set[int]] = {
            v: {v} for v in range(n)
        }
        self._tour_len: Dict[int, int] = {v: 0 for v in range(n)}
        self._root_of_tour: Dict[int, int] = {v: v for v in range(n)}
        self._pos: Dict[DirectedEdge, int] = {}
        self._edges_by_tour: Dict[int, Set[Edge]] = {
            v: set() for v in range(n)
        }
        self._tid_of_edge: Dict[Edge, int] = {}
        self._adj: Dict[int, Set[int]] = {v: set() for v in range(n)}

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def _fresh_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    def tree_id(self, v: int) -> int:
        return self._tour_of_vertex[v]

    def connected(self, u: int, v: int) -> bool:
        return self._tour_of_vertex[u] == self._tour_of_vertex[v]

    def has_edge(self, u: int, v: int) -> bool:
        return canonical(u, v) in self._tid_of_edge

    def tree_vertices(self, v: int) -> Set[int]:
        return set(self._vertices_by_tour[self._tour_of_vertex[v]])

    def tour_vertices(self, tid: int) -> Set[int]:
        return set(self._vertices_by_tour[tid])

    def tree_edges_of_tour(self, tid: int) -> List[Edge]:
        return sorted(self._edges_by_tour[tid])

    def all_edges(self) -> List[Edge]:
        return sorted(self._tid_of_edge)

    def tour_ids(self) -> List[int]:
        return list(self._vertices_by_tour)

    def tour_length(self, tid: int) -> int:
        return self._tour_len[tid]

    def root_of(self, tid: int) -> int:
        return self._root_of_tour[tid]

    def num_components(self) -> int:
        return len(self._vertices_by_tour)

    def has_tour(self, tid: int) -> bool:
        """True while ``tid`` names a live tour (ids are never reused)."""
        return tid in self._vertices_by_tour

    @property
    def words(self) -> int:
        """Accounting footprint: O(1) words per vertex and tree edge."""
        return self.n + 4 * len(self._tid_of_edge)

    # ------------------------------------------------------------------
    # Derived index information (f, l, parent)
    # ------------------------------------------------------------------
    def first_last(self, v: int) -> Tuple[int, int]:
        """Min and max tour positions among edges incident to ``v``.

        For a non-root vertex these are the positions of the arrival
        edge (parent, v) and departure edge (v, parent); for the root
        they are 0 and L-1.  Singleton: (0, -1).
        """
        neighbors = self._adj[v]
        if not neighbors:
            return (0, -1)
        lo = min(min(self._pos[(p, v)], self._pos[(v, p)])
                 for p in neighbors)
        hi = max(max(self._pos[(p, v)], self._pos[(v, p)])
                 for p in neighbors)
        return (lo, hi)

    def parent(self, v: int) -> Optional[int]:
        """Parent of ``v`` in its rooted tour tree (None for roots)."""
        tid = self._tour_of_vertex[v]
        if self._root_of_tour[tid] == v:
            return None
        return min(self._adj[v], key=lambda p: self._pos[(p, v)])

    def is_ancestor(self, a: int, v: int) -> bool:
        """Ancestor-or-self test via first/last interval containment.

        Containment must be *strict*: a proper descendant's arrival and
        departure edges lie strictly inside its ancestor's interval,
        whereas a root with a single child shares its child's endpoint
        positions (both are endpoints of the same two directed edges),
        so non-strict comparison would call the child an ancestor.
        """
        if a == v:
            return True
        if self._root_of_tour[self._tour_of_vertex[a]] == a:
            return True
        fa, la = self.first_last(a)
        fv, lv = self.first_last(v)
        return fa < fv and la > lv

    def _boundary(self, tid: int, v: int) -> int:
        """Splice boundary at ``v``: 0 for the root, f(v) + 1 otherwise.

        The walk stands at ``v`` between positions ``boundary - 1`` and
        ``boundary``, so a child tour inserted there keeps the walk
        contiguous.
        """
        if self._root_of_tour[tid] == v:
            return 0
        arrival = min(self._pos[(p, v)] for p in self._adj[v])
        return arrival + 1

    # ------------------------------------------------------------------
    # Path identification (Lemma 7.2)
    # ------------------------------------------------------------------
    def path_edges(self, u: int, v: int) -> List[Edge]:
        """Edges of the unique tree path between ``u`` and ``v``.

        Implemented by climbing to the LCA using the interval-based
        ancestor test -- the same first/last comparisons the broadcast
        version performs on every machine; the MPC cost (one broadcast
        of f/l values, Lemma 7.2) is charged by the caller.
        """
        if not self.connected(u, v):
            raise ValueError(f"{u} and {v} are in different trees")
        if u == v:
            return []
        left: List[Edge] = []
        a = u
        while not self.is_ancestor(a, v):
            p = self.parent(a)
            assert p is not None, "non-ancestor vertex must have a parent"
            left.append(canonical(a, p))
            a = p
        right: List[Edge] = []
        b = v
        while b != a:
            p = self.parent(b)
            assert p is not None, "climb passed the LCA"
            right.append(canonical(b, p))
            b = p
        right.reverse()
        return left + right

    # ------------------------------------------------------------------
    # Rooting (Lemma 5.1): one rotation, <= 2 segment messages
    # ------------------------------------------------------------------
    def reroot(self, v: int) -> BatchReport:
        tid = self._tour_of_vertex[v]
        if self._root_of_tour[tid] == v or self._tour_len[tid] == 0:
            self._root_of_tour[tid] = v
            return BatchReport(messages=1)
        k = self._boundary(tid, v) % self._tour_len[tid]
        segments = rotation_segments(self._tour_len[tid], k, tid)
        seg_map = SegmentMap(segments)
        for edge in self._edges_by_tour[tid]:
            a, b = edge
            for directed in ((a, b), (b, a)):
                _, new_pos = seg_map.apply(self._pos[directed])
                self._pos[directed] = new_pos
        self._root_of_tour[tid] = v
        return BatchReport(messages=seg_map.message_count + 1)

    # ------------------------------------------------------------------
    # Single-edge convenience wrappers
    # ------------------------------------------------------------------
    def link(self, u: int, v: int) -> BatchReport:
        return self.batch_link([(u, v)])

    def cut(self, u: int, v: int) -> BatchReport:
        return self.batch_cut([(u, v)])

    # ------------------------------------------------------------------
    # Batch join (Section 6.2)
    # ------------------------------------------------------------------
    def batch_link(self, edges: Sequence[Edge]) -> BatchReport:
        """Insert a batch of tree edges merging distinct tours.

        ``edges`` must form a forest over the current tours (this is the
        spanning forest F_H the connectivity algorithm computes on the
        auxiliary graph H).  Each merged group of tours becomes one new
        tour laid out by the auxiliary-sequence walk; the method returns
        the broadcast message count (O(k) segment shifts + 2k edge
        positions + relabels).
        """
        if not edges:
            return BatchReport()
        th_children: Dict[int, List[Tuple[int, int, int]]] = {}
        edge_list: List[Tuple[int, int]] = []
        for u, v in edges:
            tid_u = self._tour_of_vertex[u]
            tid_v = self._tour_of_vertex[v]
            if tid_u == tid_v:
                raise ValueError(
                    f"batch_link edge ({u}, {v}) joins a tour to itself"
                )
            th_children.setdefault(tid_u, []).append((u, v, tid_v))
            th_children.setdefault(tid_v, []).append((v, u, tid_u))
            edge_list.append((u, v))

        report = BatchReport()
        visited_global: Set[int] = set()
        for tid in sorted(th_children):
            if tid in visited_global:
                continue
            component_tids = self._collect_component(tid, th_children)
            visited_global |= component_tids
            # Forest check: a group of t tours must be joined by t-1 edges.
            in_component = sum(
                1 for u, v in edge_list
                if self._tour_of_vertex[u] in component_tids
            )
            if in_component != len(component_tids) - 1:
                raise ValueError(
                    "batch_link edges must form a forest over tours "
                    f"(component of {len(component_tids)} tours got "
                    f"{in_component} edges)"
                )
            messages = self._merge_component(tid, th_children, report)
            report.messages += messages
        return report

    def _collect_component(
        self, start: int, th_children: Dict[int, List[Tuple[int, int, int]]]
    ) -> Set[int]:
        seen = {start}
        frontier = [start]
        while frontier:
            tid = frontier.pop()
            for _, _, other in th_children.get(tid, []):
                if other not in seen:
                    seen.add(other)
                    frontier.append(other)
        return seen

    def _merge_component(
        self,
        root_tid: int,
        th_children: Dict[int, List[Tuple[int, int, int]]],
        report: BatchReport,
    ) -> int:
        """Lay out one merged tour; returns the message count."""
        # Root terminal: deterministic choice among root tour's terminals.
        root_terminal = min(u for u, _, _ in th_children[root_tid])
        new_tid = self._fresh_tid()

        segments_by_old: Dict[int, List[Segment]] = {}
        new_positions: Dict[DirectedEdge, int] = {}
        visited: Set[int] = {root_tid}

        def open_frame(tid: int, terminal: int, base: int,
                       return_edge: Optional[DirectedEdge]) -> _Frame:
            length = self._tour_len[tid]
            rotation = (self._boundary(tid, terminal) % length
                        if length else 0)
            kids: List[Tuple[int, int, int, int]] = []
            for attach, other_terminal, other_tid in th_children.get(tid, []):
                if other_tid in visited:
                    continue
                boundary = (self._boundary(tid, attach) % length
                            if length else 0)
                rb = (boundary - rotation) % length if length else 0
                kids.append((rb, attach, other_terminal, other_tid))
            kids.sort()
            return _Frame(tid, length, rotation, kids, base, return_edge)

        def emit(frame: _Frame, rot_lo: int, rot_hi: int) -> None:
            """Rotated interval [rot_lo, rot_hi) -> old-coordinate segments."""
            if rot_lo >= rot_hi:
                return
            length, k = frame.length, frame.rotation
            bucket = segments_by_old.setdefault(frame.tid, [])
            split = length - k
            base = frame.cur_out
            if rot_lo < split:
                hi = min(rot_hi, split)
                bucket.append(Segment(rot_lo + k, hi + k,
                                      base - rot_lo - k, new_tid))
            if rot_hi > split:
                lo = max(rot_lo, split)
                bucket.append(Segment(lo + k - length, rot_hi + k - length,
                                      base + length - k - rot_lo, new_tid))

        stack = [open_frame(root_tid, root_terminal, 0, None)]
        total = 0
        while stack:
            frame = stack[-1]
            if frame.kid_index < len(frame.kids):
                rb, attach, terminal, child_tid = frame.kids[frame.kid_index]
                frame.kid_index += 1
                # Kids already in-visited (duplicate discovery) are skipped
                # at open time, but a sibling may have claimed the tour.
                if child_tid in visited:
                    continue
                emit(frame, frame.cur_rot, rb)
                frame.cur_out += rb - frame.cur_rot
                frame.cur_rot = rb
                new_positions[(attach, terminal)] = frame.cur_out
                frame.cur_out += 1
                visited.add(child_tid)
                stack.append(
                    open_frame(child_tid, terminal, frame.cur_out,
                               (terminal, attach))
                )
            else:
                emit(frame, frame.cur_rot, frame.length)
                frame.cur_out += frame.length - frame.cur_rot
                frame.cur_rot = frame.length
                consumed = frame.cur_out - frame.base
                stack.pop()
                if stack:
                    parent = stack[-1]
                    parent.cur_out += consumed
                    assert frame.return_edge is not None
                    new_positions[frame.return_edge] = parent.cur_out
                    parent.cur_out += 1
                else:
                    total = consumed

        self._apply_merge(new_tid, visited, segments_by_old, new_positions,
                          total, root_terminal)
        report.new_tours.append(new_tid)
        message_count = (
            sum(len(segs) for segs in segments_by_old.values())
            + len(new_positions)
            + len(visited)  # tour relabel announcements
        )
        return message_count

    def _apply_merge(
        self,
        new_tid: int,
        old_tids: Set[int],
        segments_by_old: Dict[int, List[Segment]],
        new_positions: Dict[DirectedEdge, int],
        total: int,
        new_root: int,
    ) -> None:
        maps = {tid: SegmentMap(segs)
                for tid, segs in segments_by_old.items()}
        new_edges: Set[Edge] = set()
        new_vertices: Set[int] = set()
        for tid in old_tids:
            seg_map = maps.get(tid)
            for edge in self._edges_by_tour.pop(tid):
                a, b = edge
                assert seg_map is not None, "non-singleton tour lacks segments"
                for directed in ((a, b), (b, a)):
                    _, pos = seg_map.apply(self._pos[directed])
                    self._pos[directed] = pos
                self._tid_of_edge[edge] = new_tid
                new_edges.add(edge)
            for vertex in self._vertices_by_tour.pop(tid):
                self._tour_of_vertex[vertex] = new_tid
                new_vertices.add(vertex)
            del self._tour_len[tid]
            del self._root_of_tour[tid]

        for (a, b), pos in new_positions.items():
            self._pos[(a, b)] = pos
            edge = canonical(a, b)
            if edge not in new_edges:
                new_edges.add(edge)
                self._tid_of_edge[edge] = new_tid
                self._adj[a].add(b)
                self._adj[b].add(a)

        self._edges_by_tour[new_tid] = new_edges
        self._vertices_by_tour[new_tid] = new_vertices
        self._tour_len[new_tid] = total
        self._root_of_tour[new_tid] = new_root

    # ------------------------------------------------------------------
    # Batch split (Section 6.3, the inverse procedure)
    # ------------------------------------------------------------------
    def batch_cut(self, edges: Sequence[Edge]) -> BatchReport:
        """Delete a batch of tree edges, splitting tours into fragments.

        Returns the broadcast message count (fragment shifts + relabels).
        New tours get fresh ids; vertices left with no tree edge become
        singleton tours.
        """
        if not edges:
            return BatchReport()
        by_tid: Dict[int, List[Edge]] = {}
        for u, v in edges:
            edge = canonical(u, v)
            tid = self._tid_of_edge.get(edge)
            if tid is None:
                raise ValueError(f"({u}, {v}) is not a tree edge")
            by_tid.setdefault(tid, []).append(edge)

        report = BatchReport()
        for tid, tid_edges in by_tid.items():
            report.messages += self._split_tour(tid, tid_edges, report)
        return report

    def _split_tour(self, tid: int, removed: List[Edge],
                    report: BatchReport) -> int:
        length = self._tour_len[tid]
        root = self._root_of_tour[tid]
        intervals: List[CutInterval] = []
        for a, b in removed:
            i, j = self._pos[(a, b)], self._pos[(b, a)]
            if i < j:
                intervals.append(CutInterval(i, j, b, (a, b)))
            else:
                intervals.append(CutInterval(j, i, a, (b, a)))

        components = nested_interval_decomposition(length, intervals, root)

        # Fragment index: (old_lo, old_hi, new_tid, delta), sorted by lo.
        fragment_index: List[Tuple[int, int, int, int]] = []
        comp_tid: Dict[int, int] = {}
        for ci, comp in enumerate(components):
            if comp.length == 0:
                continue
            ctid = self._fresh_tid()
            comp_tid[ci] = ctid
            running = 0
            for lo, hi in comp.fragments:
                fragment_index.append((lo, hi, ctid, running - lo))
                running += hi - lo + 1
            self._tour_len[ctid] = comp.length
            self._root_of_tour[ctid] = comp.root
            self._edges_by_tour[ctid] = set()
            self._vertices_by_tour[ctid] = set()
            report.new_tours.append(ctid)
        fragment_index.sort()
        starts = [frag[0] for frag in fragment_index]

        def locate(pos: int) -> Tuple[int, int]:
            k = bisect.bisect_right(starts, pos) - 1
            if k < 0:
                raise AssertionError(f"position {pos} outside all fragments")
            lo, hi, ctid, delta = fragment_index[k]
            if not lo <= pos <= hi:
                raise AssertionError(f"position {pos} outside all fragments")
            return ctid, pos + delta

        # Remove the cut edges from the structure.
        for a, b in removed:
            del self._pos[(a, b)]
            del self._pos[(b, a)]
            del self._tid_of_edge[(a, b) if a < b else (b, a)]
            self._adj[a].discard(b)
            self._adj[b].discard(a)

        old_edges = self._edges_by_tour.pop(tid)
        removed_set = {canonical(a, b) for a, b in removed}
        for edge in old_edges:
            if edge in removed_set:
                continue
            a, b = edge
            ctid_a, pos_ab = locate(self._pos[(a, b)])
            ctid_b, pos_ba = locate(self._pos[(b, a)])
            assert ctid_a == ctid_b, "edge traversals split across tours"
            self._pos[(a, b)] = pos_ab
            self._pos[(b, a)] = pos_ba
            self._tid_of_edge[edge] = ctid_a
            self._edges_by_tour[ctid_a].add(edge)

        # Relabel vertices: follow any remaining incident edge, else a
        # fresh singleton tour.
        for vertex in self._vertices_by_tour.pop(tid):
            if self._adj[vertex]:
                neighbor = next(iter(self._adj[vertex]))
                vtid = self._tid_of_edge[canonical(vertex, neighbor)]
            else:
                vtid = self._fresh_tid()
                self._tour_len[vtid] = 0
                self._root_of_tour[vtid] = vertex
                self._edges_by_tour[vtid] = set()
                self._vertices_by_tour[vtid] = set()
                report.new_tours.append(vtid)
            self._tour_of_vertex[vertex] = vtid
            self._vertices_by_tour[vtid].add(vertex)

        del self._tour_len[tid]
        del self._root_of_tour[tid]
        return len(fragment_index) + len(removed) + len(components)

    # ------------------------------------------------------------------
    # Validation (test hook)
    # ------------------------------------------------------------------
    def reconstruct_tour(self, tid: int) -> List[DirectedEdge]:
        """Materialise a tour from positions (tests / debugging only)."""
        directed = []
        for a, b in self._edges_by_tour[tid]:
            directed.append((self._pos[(a, b)], (a, b)))
            directed.append((self._pos[(b, a)], (b, a)))
        directed.sort()
        return [edge for _, edge in directed]

    def check_invariants(self) -> None:
        """Assert positional and structural consistency of every tour."""
        seen_vertices: Set[int] = set()
        for tid, vertices in self._vertices_by_tour.items():
            if seen_vertices & vertices:
                raise AssertionError("tours share vertices")
            seen_vertices |= vertices
            length = self._tour_len[tid]
            walk = self.reconstruct_tour(tid)
            if len(walk) != length:
                raise AssertionError(
                    f"tour {tid}: {len(walk)} positions, length {length}"
                )
            positions = sorted(
                self._pos[d]
                for edge in self._edges_by_tour[tid]
                for d in (edge, (edge[1], edge[0]))
            )
            if positions != list(range(length)):
                raise AssertionError(f"tour {tid}: positions not contiguous")
            root = self._root_of_tour[tid]
            if walk:
                if walk[0][0] != root or walk[-1][1] != root:
                    raise AssertionError(
                        f"tour {tid} does not start/end at root {root}"
                    )
                for (_, b), (c, _) in zip(walk, walk[1:]):
                    if b != c:
                        raise AssertionError(f"tour {tid} walk broken")
                walk_vertices = {a for a, _ in walk} | {b for _, b in walk}
                if walk_vertices != vertices:
                    raise AssertionError(
                        f"tour {tid} vertex set mismatch"
                    )
            else:
                if vertices != {root}:
                    raise AssertionError(
                        f"empty tour {tid} must be the singleton {root}"
                    )
            for vertex in vertices:
                if self._tour_of_vertex[vertex] != tid:
                    raise AssertionError(
                        f"vertex {vertex} mapped to wrong tour"
                    )
        if seen_vertices != set(range(self.n)):
            raise AssertionError("tours do not partition the vertex set")
