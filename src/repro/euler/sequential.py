"""Reference Euler-tour forest: explicit tour lists, O(n) operations.

This is the oracle the distributed implementation is tested against.  A
tour is the closed Euler walk of a rooted tree, stored as the list of
its ``2(|T|-1)`` *directed* edges (a singleton tree has the empty tour).
The paper counts endpoint symbols and gets ``4(|T|-1)``; the directed
edge positions carry the same information with half the entries
(DESIGN.md, deviations).

All operations rebuild the affected lists, which costs O(tree size) --
matching the ~O(n) sequential update time the paper's own streaming
algorithm admits (Section 4); constant MPC rounds, not sequential time,
is the object of study.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.types import Edge, canonical

DirectedEdge = Tuple[int, int]


class Tour:
    """One rooted tree's Euler tour: a list of directed edges."""

    __slots__ = ("root", "edges")

    def __init__(self, root: int, edges: Optional[List[DirectedEdge]] = None):
        self.root = root
        self.edges: List[DirectedEdge] = edges if edges is not None else []

    def __len__(self) -> int:
        return len(self.edges)

    @property
    def num_vertices(self) -> int:
        return len(self.edges) // 2 + 1

    def vertices(self) -> Set[int]:
        if not self.edges:
            return {self.root}
        seen: Set[int] = set()
        for a, b in self.edges:
            seen.add(a)
            seen.add(b)
        return seen

    def first_exit(self, v: int) -> int:
        """Index of the first directed edge leaving ``v``.

        This is the canonical *boundary* where a subtree can be spliced
        in: the walk is standing at ``v`` just before that edge.  For the
        root the boundary is 0.
        """
        if v == self.root:
            return 0
        for i, (a, _) in enumerate(self.edges):
            if a == v:
                return i
        raise ValueError(f"vertex {v} does not occur in this tour")

    def validate(self) -> None:
        """Assert the walk is a closed Euler tour of a tree."""
        if not self.edges:
            return
        if self.edges[0][0] != self.root or self.edges[-1][1] != self.root:
            raise AssertionError("tour does not start and end at its root")
        for (_, b), (c, _) in zip(self.edges, self.edges[1:]):
            if b != c:
                raise AssertionError("tour is not a contiguous walk")
        undirected: Dict[Edge, int] = {}
        for a, b in self.edges:
            undirected[canonical(a, b)] = undirected.get(canonical(a, b), 0) + 1
        if any(count != 2 for count in undirected.values()):
            raise AssertionError("some edge is not traversed exactly twice")
        if len(undirected) != self.num_vertices - 1:
            raise AssertionError("edge count does not match a tree")


def rotate_tour(tour: Tour, new_root: int) -> Tour:
    """The same tree re-rooted at ``new_root`` (Rooting, Lemma 5.1)."""
    if new_root == tour.root or not tour.edges:
        return Tour(new_root, list(tour.edges))
    k = tour.first_exit(new_root)
    return Tour(new_root, tour.edges[k:] + tour.edges[:k])


def join_tours(parent: Tour, attach_at: int, child: Tour,
               child_terminal: int) -> Tour:
    """Splice ``child`` (re-rooted at ``child_terminal``) into ``parent``
    at vertex ``attach_at`` via the new edge {attach_at, child_terminal}
    (Join, Lemma 5.1, generalised to internal attachment points)."""
    rotated = rotate_tour(child, child_terminal)
    k = parent.first_exit(attach_at) if parent.edges else 0
    spliced = (
        parent.edges[:k]
        + [(attach_at, child_terminal)]
        + rotated.edges
        + [(child_terminal, attach_at)]
        + parent.edges[k:]
    )
    return Tour(parent.root, spliced)


def split_tour(tour: Tour, u: int, v: int) -> Tuple[Tour, Tour]:
    """Remove tree edge {u, v}; return (remainder, severed subtree).

    The remainder keeps the old root; the severed part is rooted at the
    child-side endpoint (Split, Lemma 5.1).
    """
    try:
        i = tour.edges.index((u, v))
        j = tour.edges.index((v, u))
    except ValueError as exc:
        raise ValueError(f"({u}, {v}) is not an edge of this tour") from exc
    if i > j:
        i, j = j, i
        u, v = v, u
    # Positions i..j bracket v's subtree; v is the child side.
    child = Tour(v, tour.edges[i + 1:j])
    rest = Tour(tour.root, tour.edges[:i] + tour.edges[j + 1:])
    return rest, child


class EulerTourForest:
    """A forest of Euler tours over vertices ``0 .. n-1`` (reference).

    Supports ``link``, ``cut``, ``reroot``, connectivity queries, and
    path extraction.  Every vertex starts as its own singleton tree.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("need at least one vertex")
        self.n = n
        self._tour_of: Dict[int, int] = {v: v for v in range(n)}
        self._tours: Dict[int, Tour] = {v: Tour(v) for v in range(n)}
        self._next_id = n

    def _fresh_id(self) -> int:
        tid = self._next_id
        self._next_id += 1
        return tid

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def tree_id(self, v: int) -> int:
        return self._tour_of[v]

    def tour(self, tid: int) -> Tour:
        return self._tours[tid]

    def connected(self, u: int, v: int) -> bool:
        return self._tour_of[u] == self._tour_of[v]

    def has_edge(self, u: int, v: int) -> bool:
        tid = self._tour_of[u]
        if tid != self._tour_of[v]:
            return False
        return (u, v) in self._tours[tid].edges

    def tree_vertices(self, v: int) -> Set[int]:
        return self._tours[self._tour_of[v]].vertices()

    def tree_edges(self, v: int) -> List[Edge]:
        tour = self._tours[self._tour_of[v]]
        seen: Set[Edge] = set()
        out: List[Edge] = []
        for a, b in tour.edges:
            edge = canonical(a, b)
            if edge not in seen:
                seen.add(edge)
                out.append(edge)
        return out

    def all_edges(self) -> List[Edge]:
        out: List[Edge] = []
        for tour in self._tours.values():
            seen: Set[Edge] = set()
            for a, b in tour.edges:
                edge = canonical(a, b)
                if edge not in seen:
                    seen.add(edge)
                    out.append(edge)
        return out

    def components(self) -> Iterator[Set[int]]:
        for tour in self._tours.values():
            yield tour.vertices()

    def path_edges(self, u: int, v: int) -> List[Edge]:
        """Edges on the unique tree path from ``u`` to ``v``."""
        if not self.connected(u, v):
            raise ValueError(f"{u} and {v} are in different trees")
        if u == v:
            return []
        tour = self._tours[self._tour_of[u]]
        adjacency: Dict[int, List[int]] = {}
        for a, b in tour.edges:
            adjacency.setdefault(a, []).append(b)
        # BFS over the tree (it is small; this is the oracle).
        parent: Dict[int, Optional[int]] = {u: None}
        frontier = [u]
        while frontier and v not in parent:
            nxt: List[int] = []
            for x in frontier:
                for y in adjacency.get(x, []):
                    if y not in parent:
                        parent[y] = x
                        nxt.append(y)
            frontier = nxt
        path: List[Edge] = []
        cur = v
        while parent[cur] is not None:
            prev = parent[cur]
            path.append(canonical(prev, cur))
            cur = prev
        path.reverse()
        return path

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def reroot(self, v: int) -> None:
        tid = self._tour_of[v]
        self._tours[tid] = rotate_tour(self._tours[tid], v)

    def link(self, u: int, v: int) -> None:
        """Join the trees of ``u`` and ``v`` with the edge {u, v}."""
        tid_u, tid_v = self._tour_of[u], self._tour_of[v]
        if tid_u == tid_v:
            raise ValueError(f"{u} and {v} are already connected")
        tour_u, tour_v = self._tours[tid_u], self._tours[tid_v]
        joined = join_tours(tour_u, u, tour_v, v)
        del self._tours[tid_v]
        del self._tours[tid_u]
        new_tid = self._fresh_id()
        self._tours[new_tid] = joined
        for vertex in joined.vertices():
            self._tour_of[vertex] = new_tid

    def cut(self, u: int, v: int) -> None:
        """Remove tree edge {u, v}, splitting its tree in two.

        Both halves get fresh tour ids (ids are never reused, so stale
        references fail loudly instead of aliasing another tree).
        """
        tid = self._tour_of[u]
        if tid != self._tour_of[v]:
            raise ValueError(f"({u}, {v}) spans two different trees")
        rest, severed = split_tour(self._tours[tid], u, v)
        del self._tours[tid]
        rest_tid = self._fresh_id()
        severed_tid = self._fresh_id()
        self._tours[rest_tid] = rest
        self._tours[severed_tid] = severed
        for vertex in rest.vertices():
            self._tour_of[vertex] = rest_tid
        for vertex in severed.vertices():
            self._tour_of[vertex] = severed_tid

    def validate(self) -> None:
        """Check every tour and the vertex->tour map (test hook)."""
        seen: Set[int] = set()
        for tid, tour in self._tours.items():
            tour.validate()
            verts = tour.vertices()
            if seen & verts:
                raise AssertionError("tours share vertices")
            seen |= verts
            for vertex in verts:
                if self._tour_of[vertex] != tid:
                    raise AssertionError(
                        f"vertex {vertex} mapped to wrong tour"
                    )
        if seen != set(range(self.n)):
            raise AssertionError("tours do not cover the vertex set")
