"""Euler-tour forest substrate (paper, Sections 5-6.2 and 7.1).

:class:`~repro.euler.sequential.EulerTourForest` is the list-based
reference; :class:`~repro.euler.distributed.DistributedEulerForest` is
the index-based structure with batch join/split used by the MPC
algorithms."""

from repro.euler.auxiliary import (
    Component,
    CutInterval,
    Segment,
    SegmentMap,
    nested_interval_decomposition,
    rotation_segments,
)
from repro.euler.distributed import BatchReport, DistributedEulerForest
from repro.euler.sequential import (
    EulerTourForest,
    Tour,
    join_tours,
    rotate_tour,
    split_tour,
)

__all__ = [
    "Component",
    "CutInterval",
    "Segment",
    "SegmentMap",
    "nested_interval_decomposition",
    "rotation_segments",
    "BatchReport",
    "DistributedEulerForest",
    "EulerTourForest",
    "Tour",
    "join_tours",
    "rotate_tour",
    "split_tour",
]
