"""Exception hierarchy for the ``repro`` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single base class.  Specific subclasses are raised by
the MPC simulator (resource violations), the sketching layer (recovery
failures), and the dynamic algorithms (invalid updates).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An invalid parameter combination was supplied to a constructor."""


class CapacityExceededError(ReproError):
    """A machine exceeded its local memory or per-round message budget.

    Raised only when the simulator runs with ``strict_capacity=True``;
    otherwise violations are recorded in the metrics ledger.
    """

    def __init__(self, machine_id: int, used: int, capacity: int, what: str):
        self.machine_id = machine_id
        self.used = used
        self.capacity = capacity
        self.what = what
        super().__init__(
            f"machine {machine_id} exceeded {what} capacity: "
            f"{used} > {capacity} words"
        )


class BatchTooLargeError(ReproError):
    """An update batch exceeded the model's per-phase batch bound."""

    def __init__(self, batch_size: int, bound: int):
        self.batch_size = batch_size
        self.bound = bound
        super().__init__(
            f"batch of {batch_size} updates exceeds the model bound of "
            f"{bound} updates per phase"
        )


class InvalidUpdateError(ReproError):
    """An edge update is inconsistent with the current graph state.

    Examples: inserting an edge that already exists, deleting an edge
    that is absent, or a self-loop.  The model (paper, Section 1.2)
    assumes the maintained graph is simple and deletions concern only
    existing edges.
    """


class SketchError(ReproError, ValueError):
    """Structural misuse of the sketching layer.

    Raised for deterministic errors -- merging sketches of different
    shapes or randomness, summing an empty collection, querying with
    mismatched batch arrays -- as opposed to the probabilistic failure
    event of :class:`SketchFailureError`.  Subclasses ``ValueError``
    so existing ``except ValueError`` callers keep working.
    """


class SketchFailureError(ReproError):
    """A sketch query failed (all levels of an L0-sampler rejected).

    The algorithms treat this as the low-probability failure event the
    paper's "w.h.p." guarantees allow; callers may retry with an
    independent sketch column.  Deliberately *not* a
    :class:`SketchError`: handlers catching deterministic misuse
    (``ValueError``) must not swallow the probabilistic failure event.
    """


class QueryError(ReproError):
    """A query was asked of an algorithm in a state that cannot serve it."""
