"""A single MPC machine: a bounded local store plus message buffers.

Machines are deliberately dumb containers.  All coordination lives in
:class:`~repro.mpc.simulator.Cluster`; a machine only knows its capacity
and how many words it currently holds.  Storage is a string-keyed dict so
that independent data structures (sketch shards, tour indices, matching
state) can coexist without colliding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Tuple


@dataclass
class Message:
    """A point-to-point message for one synchronous round.

    ``words`` is the accounting size; payloads are arbitrary Python
    values (the simulator never serialises them, it only counts words).
    """

    src: int
    dst: int
    payload: Any
    words: int = 1

    def __post_init__(self) -> None:
        if self.words < 0:
            raise ValueError("message size must be non-negative")


class Machine:
    """One machine with ``capacity`` words of local memory."""

    __slots__ = ("machine_id", "capacity", "_store", "_used")

    def __init__(self, machine_id: int, capacity: int):
        self.machine_id = machine_id
        self.capacity = capacity
        self._store: Dict[str, Tuple[Any, int]] = {}
        self._used = 0

    # ------------------------------------------------------------------
    # Local storage
    # ------------------------------------------------------------------
    @property
    def used_words(self) -> int:
        return self._used

    @property
    def free_words(self) -> int:
        return self.capacity - self._used

    def put(self, key: str, value: Any, words: int) -> None:
        """Store ``value`` under ``key``, replacing any previous entry."""
        if words < 0:
            raise ValueError("stored size must be non-negative")
        self.discard(key)
        self._store[key] = (value, words)
        self._used += words

    def get(self, key: str, default: Any = None) -> Any:
        entry = self._store.get(key)
        return entry[0] if entry is not None else default

    def __contains__(self, key: str) -> bool:
        return key in self._store

    def discard(self, key: str) -> None:
        entry = self._store.pop(key, None)
        if entry is not None:
            self._used -= entry[1]

    def keys(self) -> Iterable[str]:
        return self._store.keys()

    def over_capacity(self) -> bool:
        return self._used > self.capacity

    def __repr__(self) -> str:
        return (
            f"Machine({self.machine_id}, used={self._used}/"
            f"{self.capacity} words, {len(self._store)} keys)"
        )
