"""MPC model parameters (paper, Section 1.2).

The model is parameterised by the number of vertices ``n`` and the local
memory exponent ``phi``: every machine has ``s = O(n^phi)`` words of local
memory, and the system as a whole is permitted ``~O(n)`` words in the
semi-streaming regime the paper targets.  :class:`MPCConfig` derives the
concrete machine count, per-phase batch bound, and capacity limits from
those two knobs, with explicit constant factors so that experiments can
sweep them.

A *word* is the unit of both memory and communication accounting: one
vertex id, one edge endpoint pair, or one sketch cell each count as O(1)
words (see :mod:`repro.mpc.metrics`).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError, SketchError


# ---------------------------------------------------------------------------
# Validated environment readers
# ---------------------------------------------------------------------------
# Every ``REPRO_*`` knob in the codebase is read through one of these
# three functions -- the single place ``os.environ`` is touched (rule
# RL004 in ``docs/lint-rules.md`` enforces this).  Centralising the
# reads guarantees the failure mode is uniform: a set-but-garbage value
# raises :class:`~repro.errors.SketchError` *naming the variable* at
# read time, on every path, instead of detonating as a bare ValueError
# (or a silently clamped value) deep inside backend startup.

def read_env(name: str) -> Optional[str]:
    """Raw string value of env knob ``name``; ``None`` when unset.

    For knobs whose validation lives with their parser (the backend
    name, the ``REPRO_BACKEND_FAULTS`` spec grammar): the caller
    validates, this keeps the read itself in one audited place.
    """
    return os.environ.get(name)


def env_int(name: str, minimum: int) -> Optional[int]:
    """Read an integer env knob; ``None`` when unset.

    A set-but-garbage value (``"abc"``, ``""``, ``"-1"``) raises
    :class:`~repro.errors.SketchError` naming the variable.
    """
    raw = read_env(name)
    if raw is None:
        return None
    try:
        value = int(raw.strip())
    except ValueError:
        raise SketchError(
            f"invalid {name}={raw!r}: expected an integer >= {minimum}"
        ) from None
    if value < minimum:
        raise SketchError(
            f"invalid {name}={raw!r}: expected an integer >= {minimum}"
        )
    return value


def env_float(name: str, default: float) -> float:
    """Read a positive-seconds env knob; ``default`` when unset.

    Garbage or non-positive values raise ``SketchError`` naming the
    variable.
    """
    raw = read_env(name)
    if raw is None:
        return default
    try:
        value = float(raw.strip())
    except ValueError:
        value = math.nan
    if not math.isfinite(value) or value <= 0:
        raise SketchError(
            f"invalid {name}={raw!r}: expected a positive number of "
            f"seconds"
        )
    return value


def polylog(n: int, power: int = 3) -> float:
    """``log2(n)^power`` with the convention ``polylog(<=2) = 1``.

    The paper's batch bound is ``O(n^phi / log^3 n)`` -- the ``log^3 n``
    pays for shipping ``O(log^3 n)``-bit sketches of every touched vertex
    to one machine.
    """
    if n <= 2:
        return 1.0
    return math.log2(n) ** power


@dataclass(frozen=True)
class MPCConfig:
    """Concrete instantiation of the paper's MPC model.

    Parameters
    ----------
    n:
        Number of vertices of the maintained graph (fixed for a run).
    phi:
        Local memory exponent; ``s = ceil(mem_factor * n**phi)`` words.
        The paper allows any constant ``0 < phi < 1``.
    mem_factor:
        Constant in front of ``n^phi``.  Theory hides it in O(.); the
        simulator makes it explicit so capacity enforcement is meaningful
        at laptop-scale ``n``.
    total_memory_factor:
        Constant ``c`` in the ``c * n * log2(n)^2`` total-memory budget
        used to derive the default machine count.
    strict_capacity:
        If True the simulator raises :class:`~repro.errors.CapacityExceededError`
        on any per-machine violation; otherwise violations are recorded
        in the metrics ledger (the default, since at small ``n`` the
        hidden constants of the theorems dominate).
    seed:
        Master seed for all randomness (sketches, hashing, sampling).
    num_machines:
        Override for the derived machine count.
    backend:
        Execution backend for the sketch-pool work:  ``"sequential"``
        (in-process, the default) or ``"shared_memory"`` (persistent
        worker processes over shared-memory pools; bit-identical
        results, real wall-clock parallelism).  ``None`` defers to the
        ``REPRO_BACKEND`` environment variable, falling back to
        sequential.  See :mod:`repro.mpc.backend`.
    backend_workers:
        Worker-process count for parallel backends; ``None`` defers to
        ``REPRO_BACKEND_WORKERS``, falling back to ``min(4, cpus)``.
    """

    n: int
    phi: float = 0.5
    mem_factor: float = 4.0
    total_memory_factor: float = 4.0
    strict_capacity: bool = False
    seed: int = 0
    num_machines: Optional[int] = None
    backend: Optional[str] = None
    backend_workers: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n < 2:
            raise ConfigurationError(f"need at least 2 vertices, got n={self.n}")
        if not 0.0 < self.phi < 1.0:
            raise ConfigurationError(
                f"phi must lie strictly between 0 and 1, got {self.phi}"
            )
        if self.mem_factor <= 0 or self.total_memory_factor <= 0:
            raise ConfigurationError("memory factors must be positive")
        if self.num_machines is not None and self.num_machines < 1:
            raise ConfigurationError("num_machines must be >= 1")
        if self.backend is not None:
            from repro.mpc.backend import normalize_backend_name

            normalize_backend_name(self.backend)  # raises if unknown
        if self.backend_workers is not None and self.backend_workers < 1:
            raise ConfigurationError("backend_workers must be >= 1")

    # ------------------------------------------------------------------
    # Derived model quantities
    # ------------------------------------------------------------------
    @property
    def local_memory(self) -> int:
        """Words of local memory per machine: ``s = ceil(mem_factor * n^phi)``."""
        return max(4, math.ceil(self.mem_factor * self.n ** self.phi))

    # Alias matching the paper's notation.
    s = local_memory

    @property
    def total_memory_budget(self) -> int:
        """The ``~O(n)`` total-memory budget in words."""
        log2n = max(1.0, math.log2(self.n))
        return math.ceil(self.total_memory_factor * self.n * log2n ** 2)

    @property
    def machine_count(self) -> int:
        """Number of machines: enough to hold the total-memory budget."""
        if self.num_machines is not None:
            return self.num_machines
        return max(1, math.ceil(self.total_memory_budget / self.local_memory))

    @property
    def batch_bound(self) -> int:
        """Maximum updates per phase actually enforced by the algorithms.

        We use ``s`` (one machine's worth of updates); the paper's bound
        ``O(n^phi / log^3 n)`` differs only by the polylog factor that
        pays for sketch shipping -- see :meth:`paper_batch_bound`.
        """
        return self.local_memory

    def paper_batch_bound(self) -> int:
        """The literal ``n^phi / log^3(n)`` bound from Theorem 6.7.

        Degenerates to < 1 for laptop-scale ``n`` (the asymptotics only
        bite for astronomically large graphs); exposed for the analysis
        module, not used for enforcement.
        """
        return max(1, math.floor(self.n ** self.phi / polylog(self.n, 3)))

    @property
    def sketch_columns(self) -> int:
        """Default number of independent sketch columns ``t = O(log n)``.

        Batch deletions re-run the AGM forest construction on the
        auxiliary graph, consuming one column per halving iteration
        (paper, Section 6.3), hence ``c * log2 n`` columns.
        """
        return max(4, math.ceil(2.0 * math.log2(max(2, self.n))))

    def fanout(self, words_per_message: int = 1) -> int:
        """How many distinct machines one machine can message in a round.

        Bounded by the per-round communication budget ``s`` divided by
        the message size; at least 2 so broadcast trees always make
        progress.
        """
        return max(2, self.local_memory // max(1, words_per_message))

    def describe(self) -> str:
        """Human-readable one-line summary used by example scripts."""
        return (
            f"MPC(n={self.n}, phi={self.phi}, s={self.local_memory} words, "
            f"{self.machine_count} machines, batch<= {self.batch_bound})"
        )


def small_test_config(n: int = 64, phi: float = 0.5, seed: int = 0) -> MPCConfig:
    """A config suitable for unit tests: small but non-degenerate."""
    return MPCConfig(n=n, phi=phi, seed=seed)
