"""MPC simulator substrate: machines, rounds, primitives, accounting.

Public surface::

    from repro.mpc import MPCConfig, Cluster
    cluster = Cluster(MPCConfig(n=1024, phi=0.5))

See :mod:`repro.mpc.simulator` for the two-level (real message passing +
round accounting) design.
"""

from repro.mpc.backend import (
    ExecutionBackend,
    SequentialBackend,
    SharedMemoryBackend,
    get_backend,
    resolve_backend,
)
from repro.mpc.config import MPCConfig, polylog, small_test_config
from repro.mpc.faults import Fault, FaultPlan
from repro.mpc.machine import Machine, Message
from repro.mpc.metrics import ClusterMetrics, PhaseMetrics
from repro.mpc.partition import VertexPartition
from repro.mpc.primitives import (
    broadcast_value,
    converge_cast,
    distributed_sort,
    distributed_sort_flat,
    gather_to_root,
)
from repro.mpc.simulator import Cluster, tree_depth

__all__ = [
    "ExecutionBackend",
    "SequentialBackend",
    "SharedMemoryBackend",
    "get_backend",
    "resolve_backend",
    "MPCConfig",
    "polylog",
    "small_test_config",
    "Fault",
    "FaultPlan",
    "Machine",
    "Message",
    "ClusterMetrics",
    "PhaseMetrics",
    "VertexPartition",
    "broadcast_value",
    "converge_cast",
    "distributed_sort",
    "distributed_sort_flat",
    "gather_to_root",
    "Cluster",
    "tree_depth",
]
