"""Deterministic fault injection for the shared-memory worker fleet.

The self-healing supervisor in :mod:`repro.mpc.backend` only earns its
keep if worker loss is *reproducible* in tests and CI.  This module
provides that: a :class:`FaultPlan` describes, ahead of time, exactly
which worker fails, how, and before which of its routed operations.
The backend consults the plan once per ``(worker, routed op)`` send --
control traffic (ping / attach / detach) is never faulted -- so a plan
replays identically run after run.

Fault kinds
-----------
``kill``
    The parent SIGKILLs the worker process immediately before sending
    it the op -- the literal ``kill -9`` of the acceptance criteria.
    The worker never sees the command, so retrying after a respawn is
    always safe, including for scatters.
``hang``
    A one-way ``("fault", "hang", seconds)`` command makes the worker
    sleep (without acknowledging) before it processes its next op,
    simulating a deadlocked shard.  With ``seconds`` above the call
    deadline the dispatch times out and the supervisor kills/respawns.
``delay``
    Same mechanism with a *short* sleep: the op completes late but
    within the deadline, exercising the slow-worker path with no
    recovery.
``drop``
    The worker executes its next routed op but swallows the ack.  The
    parent times out and must use the status-slot protocol to prove
    the op completed (a scatter must *not* be re-applied).
``truncate``
    The parent corrupts the packed ring-buffer record's header after
    writing it, so the worker's decoder rejects it as a transport
    desync.  Only meaningful for ring-transported descriptors; a
    descriptor that fell back to the pickled pipe path is delivered
    intact (the fault is consumed regardless).

Chaos mode
----------
``FaultPlan(chaos_every=N, chaos_seed=s)`` kills whichever worker is
being dispatched to on a pseudo-random schedule averaging one kill per
``N`` routed ops (seeded, hence deterministic per run).  CI's chaos job
runs the shared-memory tier-1 suite under exactly this plan via the
``REPRO_BACKEND_FAULTS`` environment variable.

Spec grammar (env / string form)
--------------------------------
``REPRO_BACKEND_FAULTS`` holds ``;``-separated entries::

    kill:w=1:n=3:op=apply      # kill worker 1 before its 3rd apply
    hang:w=0:n=2:s=300         # worker 0 sleeps 300s before op 2
    drop:w=1:n=1:op=apply      # swallow the ack of worker 1's next apply
    truncate:w=0:n=5           # corrupt worker 0's 5th ring record
    kill:w=1:n=1:repeat=1      # kill worker 1 on *every* op (degrade)
    chaos:kill:every=400:seed=0

Like every ``REPRO_BACKEND*`` knob, the spec is validated at read time:
garbage raises :class:`~repro.errors.SketchError` naming the variable
instead of detonating mid-dispatch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import SketchError
from repro.mpc.config import read_env

#: Environment switch: a fault-plan spec applied to every
#: SharedMemoryBackend constructed without an explicit ``faults=``.
ENV_FAULTS = "REPRO_BACKEND_FAULTS"

#: Fault kinds the backend knows how to inject.
KINDS = ("kill", "hang", "delay", "drop", "truncate")

#: Routed op names a fault may filter on (the backend wire ops).
ROUTED_OPS = ("apply", "query", "sample", "is_zero", "gquery", "gzero",
              "gscan")


@dataclass(frozen=True)
class Fault:
    """One planned failure of one worker.

    ``nth`` counts that worker's routed-op *sends* (1-based, retries
    included), optionally restricted to ops named ``op``; the fault
    fires on the first eligible send at or after the count.  One-shot
    by default; ``repeat`` re-arms it on every eligible send (how tests
    force retry exhaustion and graceful degradation).
    """

    kind: str
    worker: int
    nth: int = 1
    op: Optional[str] = None
    seconds: float = 0.0
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise SketchError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{list(KINDS)}"
            )
        if self.worker < 0:
            raise SketchError("fault worker id must be >= 0")
        if self.nth < 1:
            raise SketchError("fault nth is 1-based and must be >= 1")
        if self.op is not None and self.op not in ROUTED_OPS:
            raise SketchError(
                f"unknown routed op {self.op!r}; expected one of "
                f"{list(ROUTED_OPS)}"
            )
        if self.seconds < 0:
            raise SketchError("fault seconds must be >= 0")


class FaultPlan:
    """A deterministic schedule of worker faults.

    The backend calls :meth:`draw` exactly once per routed-op send (in
    worker-id order within a fan-out, so runs replay identically) and
    injects whatever comes back.  Explicit faults take priority over
    the chaos schedule.
    """

    def __init__(self, faults: "Tuple[Fault, ...] | List[Fault]" = (),
                 chaos_every: int = 0, chaos_seed: int = 0,
                 chaos_kind: str = "kill"):
        if chaos_every < 0:
            raise SketchError("chaos_every must be >= 0 (0 disables)")
        if chaos_kind not in KINDS:
            raise SketchError(
                f"unknown chaos fault kind {chaos_kind!r}"
            )
        self._armed: List[Fault] = list(faults)
        self.chaos_every = int(chaos_every)
        self.chaos_seed = int(chaos_seed)
        self.chaos_kind = chaos_kind
        self._rng = random.Random(chaos_seed)
        self._per_worker: dict = {}
        self._global = 0
        self._next_chaos = (self._draw_gap() if self.chaos_every else 0)
        #: Log of fired faults: ``(worker, worker_op_index, op, kind)``.
        self.fired: List[Tuple[int, int, str, str]] = []

    # -- construction ---------------------------------------------------
    @classmethod
    def kill_before(cls, worker: int, nth: int = 1,
                    op: Optional[str] = None) -> "FaultPlan":
        """Plan one SIGKILL of ``worker`` before its ``nth`` routed op."""
        return cls(faults=[Fault("kill", worker, nth=nth, op=op)])

    @classmethod
    def kill_always(cls, worker: int) -> "FaultPlan":
        """Kill ``worker`` on every send: exhausts retries, forcing the
        backend to degrade to the in-process sequential cores."""
        return cls(faults=[Fault("kill", worker, repeat=True)])

    @classmethod
    def parse(cls, spec: Optional[str],
              source: str = ENV_FAULTS) -> Optional["FaultPlan"]:
        """Build a plan from the spec grammar; ``None`` when unset/empty.

        Garbage raises :class:`~repro.errors.SketchError` naming
        ``source`` (the env variable, by default) at read time.
        """
        if spec is None or not spec.strip():
            return None
        faults: List[Fault] = []
        chaos_every = 0
        chaos_seed = 0
        chaos_kind = "kill"

        def bad(detail: str) -> SketchError:
            return SketchError(
                f"invalid {source}={spec!r}: {detail}"
            )

        for entry in spec.split(";"):
            entry = entry.strip()
            if not entry:
                continue
            parts = [p.strip() for p in entry.split(":")]
            kind = parts[0]
            if kind == "chaos":
                rest = parts[1:]
                if rest and "=" not in rest[0]:
                    chaos_kind = rest.pop(0)
                    if chaos_kind not in KINDS:
                        raise bad(f"unknown chaos kind {chaos_kind!r}")
                settings = dict(
                    _split_kv(kv, bad) for kv in rest
                )
                unknown = set(settings) - {"every", "seed"}
                if unknown:
                    raise bad(f"unknown chaos settings {sorted(unknown)}")
                chaos_every = _as_int(settings.get("every"), "every",
                                      bad, minimum=1, default=None)
                if chaos_every is None:
                    raise bad("chaos needs every=<N>")
                chaos_seed = _as_int(settings.get("seed"), "seed", bad,
                                     minimum=0, default=0)
                continue
            if kind not in KINDS:
                raise bad(f"unknown fault kind {kind!r}")
            settings = dict(_split_kv(kv, bad) for kv in parts[1:])
            unknown = set(settings) - {"w", "n", "op", "s", "repeat"}
            if unknown:
                raise bad(f"unknown settings {sorted(unknown)}")
            worker = _as_int(settings.get("w"), "w", bad, minimum=0,
                             default=None)
            if worker is None:
                raise bad(f"{kind} needs w=<worker id>")
            op = settings.get("op")
            if op is not None and op not in ROUTED_OPS:
                raise bad(f"unknown routed op {op!r}")
            try:
                fault = Fault(
                    kind=kind, worker=worker,
                    nth=_as_int(settings.get("n"), "n", bad, minimum=1,
                                default=1),
                    op=op,
                    seconds=_as_float(settings.get("s"), "s", bad),
                    repeat=bool(_as_int(settings.get("repeat"), "repeat",
                                        bad, minimum=0, default=0)),
                )
            except SketchError as exc:
                raise bad(str(exc)) from None
            faults.append(fault)
        if not faults and not chaos_every:
            return None
        return cls(faults=faults, chaos_every=chaos_every,
                   chaos_seed=chaos_seed, chaos_kind=chaos_kind)

    @classmethod
    def from_env(cls) -> Optional["FaultPlan"]:
        """The plan named by ``REPRO_BACKEND_FAULTS`` (validated now)."""
        return cls.parse(read_env(ENV_FAULTS))

    # -- the draw -------------------------------------------------------
    def _draw_gap(self) -> int:
        """Next chaos firing point: jittered around ``chaos_every`` so a
        fixed-stride workload cannot systematically dodge the schedule,
        while the seeded generator keeps runs reproducible."""
        lo = max(1, self.chaos_every // 2)
        hi = max(lo, (3 * self.chaos_every) // 2)
        return self._rng.randint(lo, hi)

    def draw(self, worker: int, op: str) -> Optional[Fault]:
        """The fault (if any) to inject before this send.

        Must be called exactly once per routed-op send, in a
        deterministic order; each call advances the per-worker and
        global op counters the schedule is keyed on.
        """
        n = self._per_worker.get(worker, 0) + 1
        self._per_worker[worker] = n
        self._global += 1
        for fault in list(self._armed):
            if (fault.worker == worker and n >= fault.nth
                    and (fault.op is None or fault.op == op)):
                if not fault.repeat:
                    self._armed.remove(fault)
                self.fired.append((worker, n, op, fault.kind))
                return fault
        if self.chaos_every and self._global >= self._next_chaos:
            self._next_chaos = self._global + self._draw_gap()
            self.fired.append((worker, n, op, self.chaos_kind))
            return Fault(self.chaos_kind, worker, nth=n, seconds=0.0)
        return None

    @property
    def exhausted(self) -> bool:
        """True when no one-shot fault remains armed (chaos never is)."""
        return not self._armed and not self.chaos_every

    def __repr__(self) -> str:
        bits = [f"{len(self._armed)} armed", f"{len(self.fired)} fired"]
        if self.chaos_every:
            bits.append(f"chaos:{self.chaos_kind}/{self.chaos_every}")
        return f"FaultPlan({', '.join(bits)})"


def _split_kv(kv: str, bad) -> Tuple[str, str]:
    if "=" not in kv:
        raise bad(f"expected key=value, got {kv!r}")
    key, _, value = kv.partition("=")
    return key.strip(), value.strip()


def _as_int(raw: Optional[str], key: str, bad, minimum: int,
            default: Optional[int]) -> Optional[int]:
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise bad(f"{key}={raw!r} is not an integer") from None
    if value < minimum:
        raise bad(f"{key}={raw!r} must be >= {minimum}")
    return value


def _as_float(raw: Optional[str], key: str, bad,
              default: float = 0.0) -> float:
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise bad(f"{key}={raw!r} is not a number") from None
    if not value >= 0:
        raise bad(f"{key}={raw!r} must be >= 0")
    return value
