"""The MPC cluster simulator: synchronous rounds over bounded machines.

Two complementary APIs live here, and the test suite ties them together:

1. **Real message passing** -- :meth:`Cluster.exchange` delivers a list of
   :class:`~repro.mpc.machine.Message` objects in one synchronous round,
   enforcing the model's per-machine send/receive budget of ``s`` words
   (paper, Section 1.2: "the total messages sent or received by each
   machine in each round should not exceed its memory").  The primitives
   in :mod:`repro.mpc.primitives` (broadcast tree, converge-cast,
   distributed sample sort) are built on this and are unit-tested for
   both correctness and round counts.

2. **Round accounting** -- ``charge_*`` methods that charge the *same*
   round counts the real primitives incur, computed from the cluster
   geometry (machine count and fanout).  The graph algorithms in
   :mod:`repro.core` keep their distributed state in partition-aware
   Python structures and charge rounds through this API; tests in
   ``tests/test_mpc_primitives.py`` assert that the closed-form charges
   equal the measured depths of the real executions, so the two APIs
   cannot drift apart silently.

This split is the standard trick for simulating MPC at laptop scale: the
theorems are statements about *counts*, and the counts are what both
paths produce.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Iterable, List, Optional

import numpy as np

from repro.errors import CapacityExceededError
from repro.mpc.backend import ExecutionBackend, resolve_backend
from repro.mpc.config import MPCConfig
from repro.mpc.machine import Machine, Message
from repro.mpc.metrics import CapacityViolation, ClusterMetrics, PhaseMetrics
from repro.mpc.partition import VertexPartition


def tree_depth(num_nodes: int, fanout: int) -> int:
    """Depth of a complete ``fanout``-ary dissemination tree over nodes.

    This is the number of rounds needed to move one value between a
    single machine and ``num_nodes`` machines when each machine can talk
    to ``fanout`` others per round.  ``tree_depth(1, f) == 0``.
    """
    if num_nodes <= 1:
        return 0
    if fanout < 2:
        raise ValueError("fanout must be at least 2")
    return max(1, math.ceil(math.log(num_nodes, fanout)))


class Cluster:
    """A simulated MPC cluster.

    Parameters
    ----------
    config:
        The model instantiation (machine memory ``s``, machine count,
        strictness, master seed).
    backend:
        Execution backend override (name or instance); defaults to the
        config's ``backend`` field, which itself defaults to the
        ``REPRO_BACKEND`` environment variable / sequential.  The
        backend decides where sketch-pool work *executes*; the round
        and word accounting is identical either way.
    """

    def __init__(self, config: MPCConfig, backend=None):
        self.config = config
        self.machines: List[Machine] = [
            Machine(i, config.local_memory) for i in range(config.machine_count)
        ]
        self.metrics = ClusterMetrics()
        self.rng = np.random.default_rng(config.seed)
        self._backend_spec = (backend if backend is not None
                              else config.backend)
        self._backend: Optional[ExecutionBackend] = resolve_backend(
            self._backend_spec, config.backend_workers
        )
        self._partition: Optional[VertexPartition] = None

    # ------------------------------------------------------------------
    # Backend / lifecycle
    # ------------------------------------------------------------------
    @property
    def backend(self) -> ExecutionBackend:
        """The execution backend, resolved lazily after unpickling."""
        if self._backend is None:
            self._backend = resolve_backend(self._backend_spec,
                                            self.config.backend_workers)
        return self._backend

    @property
    def resolved_backend(self) -> Optional[ExecutionBackend]:
        """The live backend, or ``None`` if never materialised.

        Teardown paths read this instead of :attr:`backend`: closing a
        cluster whose lazy backend was never forced (e.g. after a
        failed or partial checkpoint restore) must not spawn a worker
        fleet just to shut it down.
        """
        return self._backend

    @backend.setter
    def backend(self, value: ExecutionBackend) -> None:
        self._backend = value

    def rebind_backend(self, backend=None,
                       workers: Optional[int] = None) -> None:
        """Point this cluster at a live execution backend.

        Checkpoint restore uses this before any backend work happens:
        with no arguments the cluster re-resolves its original spec
        (name / env default); a name or instance overrides it.
        """
        if backend is not None:
            self._backend_spec = backend
        self._backend = resolve_backend(
            self._backend_spec,
            workers if workers is not None else self.config.backend_workers,
        )

    def reseed(self) -> None:
        """Reset the construction-randomness stream to the config seed.

        A fresh cluster starts its generator at ``config.seed``; a
        :class:`~repro.session.GraphSession` reseeds before constructing
        each member algorithm so every member draws *exactly* the
        randomness its standalone instance (own cluster, same config)
        would -- the parity guarantee the session tests pin down.
        """
        self.rng = np.random.default_rng(self.config.seed)

    def close(self, close_backend: Optional[bool] = None) -> None:
        """Shut down the execution backend deterministically.

        Releases the worker fleet (and its shared-memory segments) now
        instead of at GC / interpreter exit.  By default only a
        *privately owned* backend is closed: factory-cached backends
        (``backend.cached``) are shared by every cluster in the
        process, so killing one out from under the others is opt-in
        (``close_backend=True``; the factory re-creates a fleet on the
        next request).  In-process backends make this a no-op.
        """
        if self._backend is None:
            return
        if close_backend is None:
            close_backend = not self._backend.cached
        if close_backend:
            self._backend.close()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __getstate__(self):
        """Checkpoint without the backend: worker fleets, pipes, and
        shared-memory handles are process-local.  The spec (a name) is
        kept so the restored cluster can lazily re-resolve; an instance
        spec degrades to its name."""
        state = self.__dict__.copy()
        state["_backend"] = None
        spec = state.get("_backend_spec")
        if isinstance(spec, ExecutionBackend):
            state["_backend_spec"] = spec.name
        return state

    # ------------------------------------------------------------------
    # Geometry helpers
    # ------------------------------------------------------------------
    @property
    def num_machines(self) -> int:
        return len(self.machines)

    @property
    def local_memory(self) -> int:
        return self.config.local_memory

    def machine(self, machine_id: int) -> Machine:
        return self.machines[machine_id]

    @property
    def partition(self) -> VertexPartition:
        """The vertex -> machine block placement (Section 5)."""
        if self._partition is None:
            self._partition = VertexPartition(self.config.n,
                                              self.num_machines)
        return self._partition

    # ------------------------------------------------------------------
    # Real synchronous message passing (used by the primitives)
    # ------------------------------------------------------------------
    def exchange(self, messages: Iterable[Message]) -> Dict[int, List[Message]]:
        """Deliver ``messages`` in one synchronous round.

        Returns the inbox of each destination machine.  Per-machine send
        and receive word totals are checked against ``s``; violations
        either raise (strict mode) or are recorded in the ledger.
        """
        sent_words: Dict[int, int] = {}
        recv_words: Dict[int, int] = {}
        inboxes: Dict[int, List[Message]] = {}
        count = 0
        words = 0
        for msg in messages:
            if not (0 <= msg.src < self.num_machines):
                raise ValueError(f"bad source machine {msg.src}")
            if not (0 <= msg.dst < self.num_machines):
                raise ValueError(f"bad destination machine {msg.dst}")
            sent_words[msg.src] = sent_words.get(msg.src, 0) + msg.words
            recv_words[msg.dst] = recv_words.get(msg.dst, 0) + msg.words
            inboxes.setdefault(msg.dst, []).append(msg)
            count += 1
            words += msg.words

        self.metrics.charge_rounds(1, "exchange")
        self.metrics.charge_traffic(count, words)
        for mid, used in sent_words.items():
            self._check_budget(mid, used, "send")
        for mid, used in recv_words.items():
            # Delivered words are attributed to the receiving machine,
            # so PhaseMetrics shows where the data actually landed.
            self.metrics.charge_machine_words(mid, used)
            self._check_budget(mid, used, "recv")
        return inboxes

    def _check_budget(self, machine_id: int, used: int, what: str) -> None:
        capacity = self.local_memory
        if used <= capacity:
            return
        violation = CapacityViolation(
            machine_id=machine_id,
            what=what,
            used=used,
            capacity=capacity,
            round_index=self.metrics.rounds,
        )
        self.metrics.record_violation(violation)
        if self.config.strict_capacity:
            raise CapacityExceededError(machine_id, used, capacity, what)

    def check_store_capacities(self) -> None:
        """Audit machine stores; record/raise for any over-capacity store."""
        for machine in self.machines:
            if machine.over_capacity():
                self._check_budget(machine.machine_id, machine.used_words, "store")

    # ------------------------------------------------------------------
    # Round accounting (closed-form charges matching the primitives)
    # ------------------------------------------------------------------
    def charge_local(self, category: str = "local") -> int:
        """One round in which machines compute locally and reply in place."""
        self.metrics.charge_rounds(1, category)
        return 1

    def charge_exchange(self, messages: int, words: int,
                        category: str = "exchange") -> int:
        """One point-to-point routing round with the given traffic."""
        self.metrics.charge_rounds(1, category)
        self.metrics.charge_traffic(messages, words)
        return 1

    def charge_broadcast(self, words: int = 1, category: str = "broadcast") -> int:
        """Broadcast a ``words``-sized value from one machine to all.

        Cost: depth of the fanout tree.  Mirrors
        :func:`repro.mpc.primitives.broadcast_value`.
        """
        fanout = self.config.fanout(words)
        rounds = max(1, tree_depth(self.num_machines, fanout))
        self.metrics.charge_rounds(rounds, category)
        self.metrics.charge_traffic(
            self.num_machines - 1, words * max(0, self.num_machines - 1)
        )
        return rounds

    def charge_converge(self, words: int = 1, category: str = "converge") -> int:
        """Aggregate a ``words``-sized combinable value from all machines.

        Converge-cast up an aggregation tree; cost equals broadcast
        depth.  This is the "merging the sketches of the vertices in
        Z_u ... in O(1/phi) rounds" step (paper, Lemma 5.2 footnote 8).
        """
        fanout = self.config.fanout(words)
        rounds = max(1, tree_depth(self.num_machines, fanout))
        self.metrics.charge_rounds(rounds, category)
        self.metrics.charge_traffic(
            self.num_machines - 1, words * max(0, self.num_machines - 1)
        )
        return rounds

    def charge_gather(self, total_words: int, category: str = "gather",
                      per_machine: Optional[Dict[int, int]] = None) -> int:
        """Collect ``total_words`` of data onto a single machine.

        Valid only when the result fits in local memory; the paper uses
        this to move a batch of updates (or the auxiliary graph H) onto
        one machine.  The data travels up the aggregation tree, so the
        round cost is the tree depth.

        With ``per_machine`` given (machine id -> words), the data is
        *not* lumped onto machine 0: a parallel execution backend keeps
        each shard's work on its owning machine, so the budget check
        and the metrics attribution apply per machine.  The round and
        traffic charges are unchanged -- the model cost of the routing
        step does not depend on where the shards execute.
        """
        if per_machine:
            for mid, words in per_machine.items():
                self.metrics.charge_machine_words(mid, words)
                if words > self.local_memory:
                    self._check_budget(mid, words, "recv")
        elif total_words > self.local_memory:
            self._check_budget(0, total_words, "recv")
        rounds = max(1, tree_depth(self.num_machines, self.config.fanout(1)))
        self.metrics.charge_rounds(rounds, category)
        self.metrics.charge_traffic(self.num_machines, total_words)
        return rounds

    def charge_sort(self, num_items: int, category: str = "sort") -> int:
        """Sort ``num_items`` records spread across machines ([GSZ11]).

        Theoretical charge: sample sort recurses with branching ``s``,
        so the depth is ``ceil(log_s N)`` and the round count
        ``2 * depth + 1`` (sample converge, splitter dissemination,
        routing) -- O(1/phi) for constant ``phi``, independent of the
        machine count.  The reference implementation in
        :mod:`repro.mpc.primitives` is a *single-level* sample sort: it
        matches this charge whenever its splitter vector fits the tree
        fanout and is strictly slower otherwise, which the tests check
        in both directions.
        """
        if self.num_machines == 1 or num_items <= 1:
            self.metrics.charge_rounds(1, category)
            return 1
        depth = max(1, math.ceil(math.log(max(2, num_items),
                                          max(2, self.local_memory))))
        rounds = 2 * depth + 1
        self.metrics.charge_rounds(rounds, category)
        self.metrics.charge_traffic(num_items, num_items)
        return rounds

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _backend_health(self) -> Dict[str, int]:
        """The backend's cumulative fleet-health counters, without ever
        forcing a lazy backend into existence just to read zeros.

        With ``REPRO_KERNELS_PROFILE=1`` the parent-side kernel and
        dispatch-section accumulators ride along: they are cumulative
        monotone ints just like the fleet counters, so
        :meth:`~repro.mpc.metrics.ClusterMetrics.end_phase` diffs them
        into per-phase ``backend_events`` rows with no extra plumbing.
        """
        from repro.kernels import profile

        health: Dict[str, int] = {}
        if self._backend is not None:
            health.update(self._backend.health_counters())
        if profile.enabled():
            health.update(profile.counters())
        return health

    def begin_phase(self, label: str) -> None:
        self.metrics.begin_phase(label, health=self._backend_health())

    def end_phase(self, batch_size: int = 0) -> PhaseMetrics:
        return self.metrics.end_phase(batch_size,
                                      health=self._backend_health())

    def __repr__(self) -> str:
        return (
            f"Cluster({self.num_machines} machines x {self.local_memory} words, "
            f"rounds={self.metrics.rounds}, backend={self.backend.name})"
        )
