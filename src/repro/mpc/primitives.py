"""Real distributed implementations of the MPC building blocks.

These functions move actual data between :class:`~repro.mpc.machine.Machine`
objects through :meth:`Cluster.exchange`, so every synchronous round is
observable and every per-machine budget is enforced.  They exist for two
reasons:

* they are the ground truth for the closed-form ``charge_*`` round
  formulas on :class:`~repro.mpc.simulator.Cluster` (the test suite
  asserts measured == charged), and
* micro-benchmarks (EXP-11) exercise them directly.

All follow the standard constructions the paper cites: fanout trees for
broadcast/aggregation and one level of sample sort for [GSZ11]-style
constant-round sorting.
"""

from __future__ import annotations

import bisect
from typing import Any, Callable, Dict, List, Optional, Sequence, TypeVar

from repro.mpc.machine import Message
from repro.mpc.simulator import Cluster, tree_depth

T = TypeVar("T")


def broadcast_value(
    cluster: Cluster, value: Any, words: int = 1, root: int = 0
) -> List[Any]:
    """Disseminate ``value`` from ``root`` to every machine.

    Uses a fanout tree where each informed machine informs ``fanout - 1``
    new machines per round, so the number of informed machines multiplies
    by ``fanout`` each round and the depth is ``ceil(log_fanout M)`` --
    exactly :func:`~repro.mpc.simulator.tree_depth`.

    Returns the per-machine received values (index = machine id).
    """
    num = cluster.num_machines
    received: List[Any] = [None] * num
    received[root] = value
    if num == 1:
        return received

    fanout = cluster.config.fanout(words)
    # Order machines with the root first; inform them in blocks.
    order = [root] + [m for m in range(num) if m != root]
    informed = 1
    while informed < num:
        messages = []
        senders = order[:informed]
        new_count = min(informed * (fanout - 1), num - informed)
        targets = order[informed:informed + new_count]
        for idx, dst in enumerate(targets):
            src = senders[idx // (fanout - 1)]
            messages.append(Message(src=src, dst=dst, payload=value, words=words))
        inboxes = cluster.exchange(messages)
        for dst, msgs in inboxes.items():
            received[dst] = msgs[-1].payload
        informed += new_count
    return received


def converge_cast(
    cluster: Cluster,
    per_machine: Sequence[Any],
    combine: Callable[[Any, Any], Any],
    words: int = 1,
    root: int = 0,
) -> Any:
    """Aggregate one value per machine down to ``root`` with ``combine``.

    The aggregation tree mirrors the broadcast tree: in each round the
    active machines are grouped into blocks of ``fanout`` and every
    non-leader sends its running aggregate to the block leader.  Depth is
    ``ceil(log_fanout M)``.  ``combine`` must be associative and is
    applied in machine-id order, so non-commutative combines (e.g. list
    concatenation for gathers) behave deterministically.
    """
    num = cluster.num_machines
    if len(per_machine) != num:
        raise ValueError("need exactly one value per machine")
    if num == 1:
        return per_machine[0]

    fanout = cluster.config.fanout(words)
    order = [root] + [m for m in range(num) if m != root]
    values: Dict[int, Any] = {m: per_machine[m] for m in range(num)}
    active = sorted(order, key=lambda m: order.index(m))
    # Keep machine-id order within blocks for deterministic combining,
    # but ensure the root ends up the final survivor.
    active = [root] + sorted(m for m in range(num) if m != root)
    while len(active) > 1:
        messages = []
        survivors = []
        for block_start in range(0, len(active), fanout):
            block = active[block_start:block_start + fanout]
            leader = block[0]
            survivors.append(leader)
            for member in block[1:]:
                messages.append(
                    Message(src=member, dst=leader,
                            payload=values.pop(member), words=words)
                )
        inboxes = cluster.exchange(messages)
        for leader, msgs in inboxes.items():
            for msg in sorted(msgs, key=lambda m: m.src):
                values[leader] = combine(values[leader], msg.payload)
        active = survivors
    return values[active[0]]


def gather_to_root(
    cluster: Cluster,
    per_machine: Sequence[List[T]],
    words_per_item: int = 1,
    root: int = 0,
) -> List[T]:
    """Concatenate per-machine lists onto ``root`` (order by machine id).

    This is the "move all update requests to a dedicated single machine"
    preprocessing step (paper, Section 1.2); it is only legal when the
    result fits in local memory, which :meth:`Cluster.exchange` checks.
    """
    def combine(acc: List[T], more: List[T]) -> List[T]:
        return acc + more

    sized = [list(items) for items in per_machine]
    total = sum(len(items) for items in sized)
    words = max(1, words_per_item * max(1, total // max(1, cluster.num_machines)))
    return converge_cast(cluster, sized, combine, words=words, root=root)


def distributed_sort(
    cluster: Cluster,
    per_machine: Sequence[List[T]],
    key: Optional[Callable[[T], Any]] = None,
) -> List[List[T]]:
    """Sample sort across machines ([GSZ11], constant rounds).

    Phases: (1) free local sort; (2) converge-cast evenly spaced local
    samples to machine 0; (3) broadcast the chosen splitters; (4) one
    all-to-all routing round; (5) free local sort.  Total rounds:
    ``2 * depth + 1`` where ``depth = tree_depth(M, fanout)`` -- the same
    figure :meth:`Cluster.charge_sort` charges.

    Returns the new per-machine lists; concatenating them in machine-id
    order yields the globally sorted sequence.
    """
    num = cluster.num_machines
    keyf: Callable[[T], Any] = key if key is not None else (lambda x: x)

    locally_sorted = [sorted(items, key=keyf) for items in per_machine]
    if num == 1:
        cluster.charge_local("sort")
        return locally_sorted

    # Phase 2: sample gathering.  Each machine contributes <= num samples.
    samples_per_machine: List[List[Any]] = []
    for items in locally_sorted:
        if not items:
            samples_per_machine.append([])
            continue
        step = max(1, len(items) // num)
        samples_per_machine.append([keyf(x) for x in items[::step][:num]])
    all_samples = converge_cast(
        cluster, samples_per_machine, lambda a, b: a + b, words=max(1, num)
    )

    # Machine 0 picks num-1 splitters from the pooled samples.  The
    # splitter message is padded to ``num`` words so the broadcast tree
    # has the same fanout as the sample converge-cast (and the measured
    # depth matches charge_sort exactly).
    pooled = sorted(all_samples)
    splitters: List[Any] = []
    if pooled:
        for i in range(1, num):
            splitters.append(pooled[min(len(pooled) - 1,
                                        i * len(pooled) // num)])
    broadcast_value(cluster, splitters, words=max(1, num))

    # Phase 4: route every item to its splitter bucket.
    messages = []
    for src, items in enumerate(locally_sorted):
        for item in items:
            dst = bisect.bisect_right(splitters, keyf(item))
            messages.append(Message(src=src, dst=dst, payload=item, words=1))
    inboxes = cluster.exchange(messages)

    result: List[List[T]] = [[] for _ in range(num)]
    for dst, msgs in inboxes.items():
        result[dst] = sorted((m.payload for m in msgs), key=keyf)
    return result


def distributed_sort_flat(
    cluster: Cluster, items: Sequence[T],
    key: Optional[Callable[[T], Any]] = None,
) -> List[T]:
    """Convenience wrapper: scatter ``items`` round-robin, sort, flatten."""
    num = cluster.num_machines
    per_machine: List[List[T]] = [[] for _ in range(num)]
    for idx, item in enumerate(items):
        per_machine[idx % num].append(item)
    sorted_parts = distributed_sort(cluster, per_machine, key=key)
    flat: List[T] = []
    for part in sorted_parts:
        flat.extend(part)
    return flat
