"""Placement of vertices and edges onto machines.

The paper distributes edges "using a vertex-based partitioning (with all
edges incident to a vertex stored on consecutive machines)" (Section 5).
At our scale a single block partition suffices: vertex ``v`` lives on
machine ``v // block_size``, and an edge lives with its smaller endpoint.
The partition object is the one place that knows this mapping, so the
distributed data structures can compute per-machine footprints and the
simulator can attribute capacity violations.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.types import Edge


class VertexPartition:
    """Block partition of ``n`` vertices over ``num_machines`` machines."""

    def __init__(self, n: int, num_machines: int):
        if n < 1 or num_machines < 1:
            raise ValueError("need n >= 1 and num_machines >= 1")
        self.n = n
        self.num_machines = num_machines
        self.block_size = max(1, math.ceil(n / num_machines))

    def machine_of_vertex(self, v: int) -> int:
        if not 0 <= v < self.n:
            raise ValueError(f"vertex {v} out of range [0, {self.n})")
        return min(self.num_machines - 1, v // self.block_size)

    def machines_of_vertices(self, vs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`machine_of_vertex` (no range check).

        The execution backend's row sharding and the per-machine batch
        attribution both use this, so they can never drift from the
        scalar placement.
        """
        return np.minimum(vs // self.block_size, self.num_machines - 1)

    def machine_of_edge(self, edge: Edge) -> int:
        """Edges live with their smaller endpoint's block."""
        return self.machine_of_vertex(min(edge))

    def vertices_of(self, machine_id: int) -> range:
        lo = machine_id * self.block_size
        hi = min(self.n, lo + self.block_size)
        if machine_id == self.num_machines - 1:
            hi = self.n
        return range(min(lo, self.n), hi)

    def load_histogram(self, edges: Iterable[Edge]) -> List[int]:
        """Edges per machine -- used to audit balance in tests."""
        loads = [0] * self.num_machines
        for edge in edges:
            loads[self.machine_of_edge(edge)] += 1
        return loads

    def spread(self, items: int) -> Dict[int, int]:
        """Spread ``items`` uniformly over machines (for footprint audits)."""
        base, extra = divmod(items, self.num_machines)
        return {
            m: base + (1 if m < extra else 0) for m in range(self.num_machines)
        }
