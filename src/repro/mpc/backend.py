"""Execution backends: where the sketch-pool work actually runs.

The cluster simulator *charges* MPC rounds and words, but until now every
super-step still executed on one Python thread.  This module introduces
the execution layer underneath the accounting: an :class:`ExecutionBackend`
turns the family-level bulk operations -- edge-batch ingestion into a
:class:`~repro.sketch.sparse_recovery.RecoveryPool` and the fused
zero-test / cut-edge recovery over pool rows -- into *work descriptors*
(numpy index arrays, never pickled sketches) and decides where they run:

* :class:`SequentialBackend` (the default) runs them in-process, exactly
  as before.  Zero overhead, zero dependencies, fully deterministic.
* :class:`SharedMemoryBackend` spawns persistent worker processes, maps
  each attached pool's cell block into ``multiprocessing.shared_memory``,
  and shards vertex rows across workers with the same block partition
  :class:`~repro.mpc.partition.VertexPartition` uses for machines.  A
  batch is split by owning worker; each worker hashes its shard's
  coordinates (rebuilt from the family's spawn-safe randomness params)
  and scatters into its own rows, so no two workers ever write the same
  cache line and no sketch state ever crosses a pipe.

Choosing a backend
------------------
Results are **bit-identical** across backends: the scatter targets
disjoint rows, integer addition is order-independent, and fingerprint
renormalization stays in the parent at the same trigger points.  Pick by
workload, not by correctness:

* ``sequential`` -- always the right default, and the only sensible
  choice for small ``n`` or tiny batches, where descriptor shipping
  costs more than the scatter it parallelizes.
* ``shared_memory`` -- wins wall-clock when batches are large (thousands
  of entries per phase), ``n`` is large enough that pool scatters and
  row queries dominate, and real cores are available.  Worker count
  defaults to ``min(4, cpus)``.

Select it per run with ``MPCConfig(backend="shared_memory",
backend_workers=4)``, per algorithm with the ``backend=`` knob on
``MPCConnectivity`` / ``StreamingConnectivity`` / ``AGMStaticConnectivity``
/ ``SketchFamily``, or globally with the environment variables
``REPRO_BACKEND`` / ``REPRO_BACKEND_WORKERS`` (how CI runs the tier-1
suite against the cluster backend).

Failure model: a worker that dies or deadlocks surfaces as
:class:`~repro.errors.SketchError` on the next backend call (liveness is
polled while waiting, with a configurable ``REPRO_BACKEND_TIMEOUT``), so
a crashed shard can never silently corrupt a phase.  The environment
knobs are validated at read time: a garbage ``REPRO_BACKEND_WORKERS``
or ``REPRO_BACKEND_TIMEOUT`` value raises a ``SketchError`` naming the
variable instead of detonating deep inside backend startup.

Ring-buffer descriptor transport
--------------------------------
Shipping a routed call's index arrays through the pipes means pickling
a fresh ``(slots, idxs, deltas)`` descriptor per dispatch -- at small
batch sizes that serialisation, not the GF(2^61-1) work, dominates the
fan-out.  Each worker therefore owns a preallocated shared-memory
**ring buffer** for descriptors, and the pipe carries only a tiny
constant-size token.

*Wire layout.*  A ring is one int64 segment of ``ring_words`` words.
A dispatch packs its descriptor arrays in place at the current write
offset::

    [n_arrays, len_0 .. len_{n-1}, data_0 .. data_{n-1}]

wrapping to offset 0 when the tail is too short for the whole record.
The pipe command is then ``("rb", op, pool_token, seq, offset,
words)``; descriptors larger than the ring fall back to the legacy
pickled-pipe path (large batches amortise their pickling anyway).

*Seq/ack discipline.*  The parent increments a per-worker sequence
number on every ring write; the worker checks each token continues the
sequence and rejects any gap as a desync (stale bytes are never
silently decoded).  At most one command per worker is ever in flight
(:meth:`SharedMemoryBackend._dispatch` is a synchronous fan-out/fan-in)
and the worker acknowledges on the existing liveness channel only
*after* consuming the descriptor, so the parent can never overwrite a
region that is still being read -- the single-writer/single-reader ring
needs no locks.

*Crash semantics.*  The parent owns the ring segments and unlinks them
on :meth:`close` (or when the fleet degrades); workers hold only
name-based attachments that die with their process.  Rings are
process-local execution state: checkpoints never contain them, and a
checkpoint restored onto a fresh backend simply attaches its pools to
that backend's own rings.

Self-healing supervisor
-----------------------
A lost worker no longer bricks the backend.  Every routed dispatch runs
under a supervisor loop (:meth:`SharedMemoryBackend._dispatch_ops`):

* **Detection** -- a dead worker (liveness poll), a hung worker (the
  ``REPRO_BACKEND_TIMEOUT`` call deadline), and a rejected ring record
  (transport desync) all surface as per-worker transport failures, not
  exceptions.
* **Recovery** -- the failed worker is killed (if still wedged) and
  respawned in place: fresh process and pipe, ring seq/offset and
  status slot reset, and every registered pool re-attached by replaying
  its token through the new pipe -- the shared-memory segments
  themselves survived the child, so no sketch state is lost.  The
  failed share of the dispatch is then retried with bounded exponential
  backoff (``REPRO_BACKEND_RETRIES`` attempts beyond the first, base
  delay ``REPRO_BACKEND_BACKOFF`` seconds -- validated at read time
  like every other knob).
* **Scatter safety** -- a small shared **status slot** per worker makes
  mutating retries provably safe: the worker writes ``-opid`` before
  executing a routed op and ``+opid`` after, so the parent can classify
  a lost scatter as *never started* (safe to retry), *completed with
  the ack lost* (counted as success, never re-applied), or *partial*
  (the one unrecoverable case: the backend latches broken rather than
  serve corrupt cells).
* **Graceful degradation** -- when retries are exhausted (or a respawn
  itself fails), the backend *degrades* instead of breaking: the
  remaining shares of the in-flight call, and every later call, execute
  in-process through the same one-source-of-truth cores
  (``pool_scatter`` / ``query_cells`` / ``merge_group_cells``), so
  answers stay bit-identical -- only the parallelism is lost.  A
  degraded backend keeps ``usable`` true and reports itself in
  :meth:`describe`.

Respawn / retry / degrade counts are exposed via ``health_counters()``
and flow into :class:`~repro.mpc.metrics.PhaseMetrics` and
``GraphSession.report()``.  Deterministic fault injection for all of
the above lives in :mod:`repro.mpc.faults` (``REPRO_BACKEND_FAULTS``).

The seq/ack + status-slot + respawn discipline above is not just
documented -- it is *model checked*.  :mod:`repro.lint.protocol`
extracts the state machine from this module's AST
(``_worker_main`` / ``_classify_failures`` / ``_dispatch_ops`` /
``_respawn_worker``) and exhaustively explores bounded
parent x worker x fault interleavings on every lint run (rule RL012),
failing the run if an edit makes a double-apply, a half-applied retry,
or a stale ring read reachable.  See ``docs/protocol-model.md``.
"""

from __future__ import annotations

import atexit
import itertools
import math
import os
import time
import traceback
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, SketchError
from repro.lint.markers import hot_path
from repro.mpc.config import env_float, env_int, read_env
from repro.mpc.faults import FaultPlan
from repro.mpc.partition import VertexPartition

#: Environment knobs: backend name and worker count used when a config /
#: constructor leaves the backend unspecified.
ENV_BACKEND = "REPRO_BACKEND"
ENV_WORKERS = "REPRO_BACKEND_WORKERS"
#: Seconds a single backend call may wait on workers before the call is
#: declared dead (deadlocked worker -> SketchError instead of a hang).
ENV_TIMEOUT = "REPRO_BACKEND_TIMEOUT"
#: Supervisor knobs: retry attempts after respawning lost workers
#: (integer >= 0, default 2) and the exponential-backoff base between
#: attempts in seconds (positive, default 0.05).
ENV_RETRIES = "REPRO_BACKEND_RETRIES"
ENV_BACKOFF = "REPRO_BACKEND_BACKOFF"

SEQUENTIAL = "sequential"
SHARED_MEMORY = "shared_memory"
_ALIASES = {
    "sequential": SEQUENTIAL,
    "shared_memory": SHARED_MEMORY,  # hyphens normalize to underscores
    "shm": SHARED_MEMORY,
}

#: Default per-worker descriptor ring size, in int64 words (256 KiB).
#: Comfortably holds the small-batch descriptors the ring exists for;
#: anything larger falls back to the pickled pipe path.
DEFAULT_RING_WORDS = 1 << 15


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        return max(1, os.cpu_count() or 1)


# Validated env readers live in repro.mpc.config (the one audited home
# of os.environ access -- rule RL004); these aliases keep the backend's
# historical private names importable.
_env_int = env_int
_env_float = env_float


def default_worker_count() -> int:
    """Worker count when unspecified: env override, else ``min(4, cpus)``."""
    env = _env_int(ENV_WORKERS, minimum=1)
    if env is not None:
        return env
    return max(1, min(4, available_cpus()))


@dataclass
class PoolHandle:
    """A pool registered with a backend.

    Carries everything a routed call needs: the pool (for parent-side
    mass bookkeeping and zero-copy sequential reads), the shared
    randomness (hashing / fingerprint checks), the backend-assigned
    token, and the row shard map.  ``shards`` uses the same block
    partition as the machine placement in :mod:`repro.mpc.partition`,
    so row ownership lines up with the model's vertex placement.
    """

    pool: "object"
    randomness: "object"
    token: int
    shards: Optional[VertexPartition] = None

    def owners_of(self, slots: np.ndarray) -> np.ndarray:
        """The owning worker of each slot (the block partition map)."""
        assert self.shards is not None
        return self.shards.machines_of_vertices(slots)


def _rows_of(pool, slots: np.ndarray) -> np.ndarray:
    """The ``(k, 4, columns, levels)`` row stack for ``slots``.

    The identity selection (all rows in order) is a zero-copy view,
    mirroring :meth:`L0Sampler._stacked_cells`.
    """
    if (slots.shape[0] == pool.count
            and np.array_equal(slots,
                               np.arange(pool.count, dtype=np.int64))):
        return pool.cells
    return pool.cells[slots]


class ExecutionBackend:
    """Protocol for executing pool-level sketch work.

    ``attach_pool`` / ``detach_pool`` manage pool placement;
    ``scatter_edges`` ingests an edge batch into both endpoints'
    rows; ``query_rows`` / ``sample_rows`` / ``zero_rows`` answer the
    fused AGM-iteration queries over pool rows.  ``last_split`` is
    diagnostics: the per-*worker-shard* entry counts of the most recent
    routed call (tests and experiments read it to see how work fanned
    out).  Note worker shards are not model machines -- the per-machine
    metrics attribution lives in the cluster layer, keyed by the
    machine partition.
    """

    name: str = "abstract"
    parallel: bool = False
    num_workers: int = 1
    #: Why the backend fell back to a degraded execution mode, or
    #: ``None`` while healthy.  Only supervised parallel backends ever
    #: set it; a degraded backend stays ``usable`` (answers are
    #: bit-identical, only the parallelism is lost).
    degraded: Optional[str] = None
    #: True for instances handed out by the process-wide factory cache
    #: (:func:`get_backend`): many clusters/sessions share them, so
    #: owner-style teardown (``Cluster.close``, ``GraphSession.close``)
    #: leaves them running by default.  Privately constructed instances
    #: stay False and are closed deterministically by their owner.
    cached: bool = False

    def __init__(self) -> None:
        self.last_split: Dict[int, int] = {}

    # -- pool lifecycle -------------------------------------------------
    def attach_pool(self, pool, randomness) -> PoolHandle:
        raise NotImplementedError

    def detach_pool(self, handle: PoolHandle) -> None:
        raise NotImplementedError

    # -- routed work ----------------------------------------------------
    def scatter_edges(self, handle: PoolHandle, hi: np.ndarray,
                      lo: np.ndarray, idxs: np.ndarray,
                      deltas: np.ndarray) -> None:
        """Ingest one edge batch: ``+delta`` into row ``hi[i]``,
        ``-delta`` into row ``lo[i]`` at coordinate ``idxs[i]``."""
        raise NotImplementedError

    def query_rows(self, handle: PoolHandle, slots: np.ndarray,
                   cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Fused per-row zero test + one-column recovery."""
        raise NotImplementedError

    def sample_rows(self, handle: PoolHandle, slots: np.ndarray,
                    cols: np.ndarray) -> np.ndarray:
        """Per-row one-column recovery (no zero test)."""
        raise NotImplementedError

    def zero_rows(self, handle: PoolHandle,
                  slots: np.ndarray) -> np.ndarray:
        """Per-row all-columns zero test."""
        raise NotImplementedError

    # -- routed supernode (group) work ----------------------------------
    # The AGM halving iterations query *merged* supernode sketches.
    # Instead of materialising merged cells in the parent, these ops
    # ship fragment **membership** (per-group pool-row lists); the
    # backend merges the member rows where the pool lives and answers
    # bit-identically to merging first (sum + query commute, see
    # repro.sketch.sparse_recovery.merge_group_cells).

    def query_groups(self, handle: PoolHandle,
                     groups: "List[np.ndarray]",
                     cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Fused zero test + one-column recovery per merged group."""
        raise NotImplementedError

    def zero_groups(self, handle: PoolHandle,
                    groups: "List[np.ndarray]") -> np.ndarray:
        """Per-group all-columns zero test over merged member rows."""
        raise NotImplementedError

    def scan_group(self, handle: PoolHandle, members: np.ndarray,
                   cols: np.ndarray) -> Tuple[bool, np.ndarray]:
        """Zero test + whole column scan of one merged group."""
        raise NotImplementedError

    def close(self) -> None:
        """Release workers / shared segments (no-op when in-process)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Deterministic teardown: ``with SharedMemoryBackend(...) as
        backend`` shuts the worker fleet down on scope exit instead of
        waiting for GC / atexit finalizers."""
        self.close()

    @property
    def usable(self) -> bool:
        return True

    def health_counters(self) -> Dict[str, int]:
        """Cumulative fleet-health events (``respawns`` / ``retries`` /
        ``degrades`` / ``faults_injected``).  Empty when the backend
        has no fleet to supervise; the cluster metrics snapshot this
        around each phase to attribute events per phase."""
        return {}

    def describe(self) -> str:
        from repro import kernels

        return (f"{self.name}(workers={self.num_workers}, "
                f"kernels={kernels.active_tier()})")


class SequentialBackend(ExecutionBackend):
    """The in-process backend: today's vectorized code paths, verbatim."""

    name = SEQUENTIAL
    parallel = False
    num_workers = 1

    def __init__(self) -> None:
        super().__init__()
        self._tokens = itertools.count()

    def attach_pool(self, pool, randomness) -> PoolHandle:
        return PoolHandle(pool=pool, randomness=randomness,
                          token=next(self._tokens))

    def detach_pool(self, handle: PoolHandle) -> None:
        pass

    def scatter_edges(self, handle: PoolHandle, hi: np.ndarray,
                      lo: np.ndarray, idxs: np.ndarray,
                      deltas: np.ndarray) -> None:
        randomness = handle.randomness
        col_levels = randomness.levels_of_many(idxs)
        zpows = randomness.zpow_many(idxs)
        slots = np.concatenate([hi, lo])
        signed = np.concatenate([deltas, -deltas])
        handle.pool.apply_points(
            slots,
            np.concatenate([col_levels, col_levels], axis=0),
            np.concatenate([idxs, idxs]),
            signed,
            np.concatenate([zpows, zpows]),
        )
        self.last_split = {0: int(slots.shape[0])}

    def query_rows(self, handle: PoolHandle, slots: np.ndarray,
                   cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        from repro.sketch.l0_sampler import query_cells

        self.last_split = {0: int(slots.shape[0])}
        return query_cells(_rows_of(handle.pool, slots), cols,
                           handle.randomness)

    def sample_rows(self, handle: PoolHandle, slots: np.ndarray,
                    cols: np.ndarray) -> np.ndarray:
        from repro.sketch.l0_sampler import sample_cells

        self.last_split = {0: int(slots.shape[0])}
        return sample_cells(_rows_of(handle.pool, slots), cols,
                            handle.randomness)

    def zero_rows(self, handle: PoolHandle,
                  slots: np.ndarray) -> np.ndarray:
        from repro.sketch.l0_sampler import is_zero_cells

        self.last_split = {0: int(slots.shape[0])}
        return is_zero_cells(_rows_of(handle.pool, slots))

    def query_groups(self, handle: PoolHandle,
                     groups: "List[np.ndarray]",
                     cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        from repro.sketch.l0_sampler import query_group_cells

        self.last_split = {0: sum(int(g.shape[0]) for g in groups)}
        return query_group_cells(handle.pool.cells, groups, cols,
                                 handle.randomness)

    def zero_groups(self, handle: PoolHandle,
                    groups: "List[np.ndarray]") -> np.ndarray:
        from repro.sketch.l0_sampler import zero_group_cells

        self.last_split = {0: sum(int(g.shape[0]) for g in groups)}
        return zero_group_cells(handle.pool.cells, groups)

    def scan_group(self, handle: PoolHandle, members: np.ndarray,
                   cols: np.ndarray) -> Tuple[bool, np.ndarray]:
        from repro.sketch.l0_sampler import scan_group_cells

        self.last_split = {0: int(members.shape[0])}
        zero, found = scan_group_cells(handle.pool.cells, members, cols,
                                       handle.randomness)
        return bool(zero), found


# ---------------------------------------------------------------------------
# Shared-memory worker process
# ---------------------------------------------------------------------------

def _ring_read(view: np.ndarray, offset: int, words: int) -> List[np.ndarray]:
    """Unpack ``[n, len_0..len_{n-1}, data...]`` starting at ``offset``.

    Returns zero-copy views into the ring; they stay valid until the
    worker acknowledges the command (the parent never overwrites an
    unacknowledged record).
    """
    n = int(view[offset])
    lens = view[offset + 1:offset + 1 + n]
    args: List[np.ndarray] = []
    pos = offset + 1 + n
    for length in lens:
        length = int(length)
        args.append(view[pos:pos + length])
        pos += length
    if pos - offset != words:
        raise RuntimeError(
            f"ring descriptor length mismatch: token said {words} "
            f"words, header decodes to {pos - offset}"
        )
    return args


@hot_path
def _execute_op(op: str, cells: np.ndarray, randomness,
                args: List[np.ndarray]):
    """One routed op over descriptor arrays.

    The single source of truth shared by the worker processes and the
    parent's degraded-mode fallback (:meth:`SharedMemoryBackend.
    _run_local`): the same vectorized cores the sequential backend
    runs, so answers are bit-identical wherever the op executes.  Mass
    bookkeeping is deliberately *not* here -- it stays with the caller
    of ``scatter_edges``, the single parent-side trigger point.

    Group ops consume the wire shape (``glens``/flat ``members``)
    directly through the :mod:`repro.kernels` group-merge kernel --
    no per-group Python list is rebuilt on the hot path.
    """
    from repro import kernels as _kernels
    from repro.sketch.l0_sampler import (
        is_zero_cells,
        query_cells,
        sample_cells,
        scan_group_cells,
    )
    from repro.sketch.sparse_recovery import pool_scatter

    if op == "apply":
        slots, idxs, deltas = args
        col_levels = randomness.levels_of_many(idxs)
        zpows = randomness.zpow_many(idxs)
        _, _, columns, levels = cells.shape
        pool_scatter(cells.reshape(-1), columns, levels, slots,
                     col_levels, idxs, deltas, zpows)
        return None
    if op == "query":
        slots, cols = args
        return query_cells(cells[slots], cols, randomness)
    if op == "sample":
        slots, cols = args
        return sample_cells(cells[slots], cols, randomness)
    if op == "is_zero":
        (slots,) = args
        return is_zero_cells(cells[slots])
    if op == "gquery":
        glens, members, cols = args
        merged = _kernels.merge_groups(cells, members, glens)
        return query_cells(merged, cols, randomness)
    if op == "gzero":
        glens, members = args
        return is_zero_cells(_kernels.merge_groups(cells, members, glens))
    if op == "gscan":
        members, cols = args
        return scan_group_cells(cells, members, cols, randomness)
    raise ValueError(f"unknown backend op {op!r}")


def _worker_main(worker_id: int, conn, ring_name: Optional[str] = None,
                 status_name: Optional[str] = None) -> None:
    """Persistent worker loop: attach pools, scatter, answer queries.

    Runs in a *spawned* process: everything it needs arrives through
    the pipe (small commands, spawn-safe randomness params), the
    descriptor ring (index-array payloads, see the module docstring's
    wire protocol), or the named shared-memory cell blocks.  All heavy
    math goes through :func:`_execute_op` -- the same vectorized code
    the sequential backend runs -- so results are bit-identical by
    construction.

    Routed ops carry a per-worker monotone ``opid``; the worker writes
    ``-opid`` into its status slot before executing and ``+opid``
    after, so the parent supervisor can classify a crash as
    not-started / partial / completed (module docstring).  Transport-
    layer failures (ring seq gap, truncated record) reply with a
    ``("desync", reason)`` tag so the parent respawns-and-retries
    instead of treating them as application errors.
    """
    # Imports happen in the child; keep them inside so the parent's
    # module import stays cheap and cycle-free.
    from multiprocessing import shared_memory

    pools: Dict[int, tuple] = {}
    ring = None
    ring_view = None
    if ring_name is not None:
        ring = shared_memory.SharedMemory(name=ring_name)
        ring_view = np.ndarray((ring.size // 8,), dtype=np.int64,
                               buffer=ring.buf)
    status = None
    status_view = None
    if status_name is not None:
        status = shared_memory.SharedMemory(name=status_name)
        status_view = np.ndarray((status.size // 8,), dtype=np.int64,
                                 buffer=status.buf)
    expected_seq = 1
    drop_next_ack = False

    def run_op(op: str, token: int, args: List[np.ndarray]):
        _, cells, randomness = pools[token]
        return _execute_op(op, cells, randomness, args)

    while True:
        try:
            cmd = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        op = cmd[0]
        if op == "stop":
            conn.send(("ok", None))
            break
        if op == "fault":
            # One-way injected fault (repro.mpc.faults); never acked.
            _, kind, seconds = cmd
            if kind in ("hang", "delay"):
                time.sleep(seconds)
            elif kind == "drop":
                drop_next_ack = True
            continue
        try:
            if op == "ping":
                conn.send(("ok", worker_id))
            elif op == "attach":
                _, token, shm_name, shape, randomness = cmd
                # Spawned children share the parent's resource tracker,
                # so this attach-side register is an idempotent no-op;
                # the parent alone unlinks (and unregisters) on detach.
                shm = shared_memory.SharedMemory(name=shm_name)
                cells = np.ndarray(shape, dtype=np.int64, buffer=shm.buf)
                pools[token] = (shm, cells, randomness)
                conn.send(("ok", None))
            elif op == "detach":
                _, token = cmd
                entry = pools.pop(token, None)
                if entry is not None:
                    shm, cells, _ = entry
                    del cells
                    try:
                        shm.close()
                    except BufferError:  # pragma: no cover
                        pass
                conn.send(("ok", None))
            else:
                # A routed op: decode the descriptor (ring or pipe),
                # then execute inside status-slot brackets.
                if op == "rb":
                    # Ring-transported descriptor: the payload sits in
                    # the shared ring; the pipe carried only the token.
                    _, real_op, token, seq, offset, words, opid = cmd
                    try:
                        if ring_view is None:
                            raise RuntimeError(
                                "ring token without a ring")
                        if seq != expected_seq:
                            raise RuntimeError(
                                f"ring transport desync: expected seq "
                                f"{expected_seq}, got {seq}"
                            )
                        expected_seq += 1
                        args = _ring_read(ring_view, offset, words)
                    except Exception as exc:
                        # Transport-layer failure: tagged so the parent
                        # respawns this worker and retries, instead of
                        # surfacing a deterministic application error.
                        conn.send(("desync", str(exc)))
                        continue
                else:
                    real_op, token, opid = op, cmd[1], cmd[2]
                    args = list(cmd[3:])
                suppress_ack, drop_next_ack = drop_next_ack, False
                if status_view is not None:
                    status_view[worker_id] = -opid
                payload = run_op(real_op, token, args)
                if status_view is not None:
                    status_view[worker_id] = opid
                if not suppress_ack:
                    conn.send(("ok", payload))
        except Exception:
            conn.send(("error", traceback.format_exc()))
    for seg, view in ((ring, ring_view), (status, status_view)):
        if seg is not None:
            del view
            try:
                seg.close()
            except BufferError:  # pragma: no cover
                pass


class _RespawnFailed(RuntimeError):
    """A replacement worker could not be brought up (spawn, handshake,
    or attach replay failed): the supervisor degrades instead of
    retrying forever."""


class SharedMemoryBackend(ExecutionBackend):
    """Worker-process backend over shared-memory sketch pools.

    Spawns ``num_workers`` persistent processes up front.  Attached
    pools live in ``multiprocessing.shared_memory``; vertex rows are
    sharded across workers by the block partition, and every routed call
    is a synchronous fan-out/fan-in over small numpy descriptors.  Mass
    bookkeeping (and fingerprint-limb renormalization) stays in the
    parent, at exactly the sequential trigger points, so pool cells are
    bit-identical to :class:`SequentialBackend` after every call.
    """

    name = SHARED_MEMORY
    parallel = True

    def __init__(self, num_workers: Optional[int] = None,
                 call_timeout: Optional[float] = None,
                 start_timeout: float = 120.0,
                 ring_words: int = DEFAULT_RING_WORDS,
                 retries: Optional[int] = None,
                 backoff: Optional[float] = None,
                 faults: "FaultPlan | str | None" = None):
        super().__init__()
        self.num_workers = (num_workers if num_workers is not None
                            else default_worker_count())
        if self.num_workers < 1:
            raise ConfigurationError("need at least one worker")
        self.call_timeout = (call_timeout if call_timeout is not None
                             else _env_float(ENV_TIMEOUT, 120.0))
        self.start_timeout = float(start_timeout)
        if retries is None:
            env = _env_int(ENV_RETRIES, minimum=0)
            retries = env if env is not None else 2
        if retries < 0:
            raise ConfigurationError("retries must be >= 0")
        self.retries = int(retries)
        if backoff is None:
            backoff = _env_float(ENV_BACKOFF, 0.05)
        if backoff < 0:
            raise ConfigurationError("backoff must be >= 0 seconds")
        self.backoff = float(backoff)
        if isinstance(faults, str):
            faults = FaultPlan.parse(faults, source="faults")
        self._faults = faults if faults is not None else FaultPlan.from_env()
        #: Cumulative fleet-health events; snapshot via
        #: :meth:`health_counters`, surfaced in :meth:`describe` and the
        #: per-phase metrics rows.
        self.health: Dict[str, int] = {
            "respawns": 0, "retries": 0, "degrades": 0,
            "faults_injected": 0,
        }
        self.degraded = None
        self._tokens = itertools.count()
        self._handles: Dict[int, "object"] = {}  # token -> SharedMemory
        #: token -> (cells shape, randomness): everything a respawned
        #: worker needs to replay the pool's attach command.
        self._pool_meta: Dict[int, tuple] = {}
        self._closed = False
        self._broken: Optional[str] = None
        self._in_dispatch = False
        #: Tokens whose worker-side detach is deferred: pool finalizers
        #: can fire from GC at any allocation point -- including inside
        #: an in-flight dispatch -- and sending on the pipes reentrantly
        #: would desync the request/ack protocol.  The queue drains at
        #: the next top-level call.
        self._pending_detach: List[int] = []
        #: Descriptor rings, one per worker (module docstring has the
        #: wire protocol); ``ring_words=0`` disables the fast path so
        #: every dispatch takes the pickled pipe route.
        self.ring_words = int(ring_words)
        self.ring_dispatches = 0
        self.raw_dispatches = 0
        self._rings: List["object"] = []
        self._ring_views: List[np.ndarray] = []
        self._ring_offsets: List[int] = []
        self._ring_seqs: List[int] = []
        self._scan_cursor = 0
        self._status: Optional["object"] = None
        self._status_view: Optional[np.ndarray] = None
        self._op_ids = [0] * self.num_workers
        # Bound once so the per-dispatch profiling sections cost one
        # attribute lookup; :func:`repro.kernels.profile.timed` is a
        # shared no-op unless REPRO_KERNELS_PROFILE enabled it.
        from repro.kernels import profile as _kernel_profile
        self._profile = _kernel_profile
        import multiprocessing as mp
        from multiprocessing import shared_memory

        self._ctx = mp.get_context("spawn")
        self._procs: List["object"] = [None] * self.num_workers
        self._conns: List["object"] = [None] * self.num_workers
        self._conn_ids: Dict[int, int] = {}
        # Transport creation sits INSIDE the cleanup guard: each ring
        # segment is registered in self._rings the moment it exists, so
        # a failure creating a later ring (or the status slot, or a
        # worker) unwinds through close() -> _release_transport(),
        # which unlinks everything created so far instead of leaking
        # it until reboot.
        try:
            if self.ring_words > 0:
                for _ in range(self.num_workers):
                    shm = shared_memory.SharedMemory(
                        create=True, size=8 * self.ring_words
                    )
                    self._rings.append(shm)
                    self._ring_views.append(
                        np.ndarray((self.ring_words,), dtype=np.int64,
                                   buffer=shm.buf)
                    )
                    self._ring_offsets.append(0)
                    self._ring_seqs.append(0)
            # One status slot per worker: the worker brackets each
            # routed op with -opid / +opid writes so the supervisor can
            # classify a lost op as not-started / partial / completed.
            self._status = shared_memory.SharedMemory(
                create=True, size=8 * self.num_workers
            )
            self._status_view = np.ndarray(
                (self.num_workers,), dtype=np.int64,
                buffer=self._status.buf
            )
            self._status_view[:] = 0
            for wid in range(self.num_workers):
                self._spawn_worker(wid)
            # Handshake: workers are up once they answer a ping (spawned
            # interpreters import numpy + repro, which takes a moment).
            self._dispatch_control(
                [(w, ("ping",)) for w in range(self.num_workers)],
                timeout=self.start_timeout,
            )
        except BaseException:
            self.close()
            raise
        _ALL_BACKENDS.add(self)

    # ------------------------------------------------------------------
    @property
    def usable(self) -> bool:
        return not self._closed and self._broken is None

    def health_counters(self) -> Dict[str, int]:
        return dict(self.health)

    def _ensure_usable(self) -> None:
        if self._closed:
            raise SketchError("shared-memory backend is closed")
        if self._broken is not None:
            raise SketchError(
                f"shared-memory backend is broken: {self._broken}"
            )

    # ------------------------------------------------------------------
    # Supervisor: spawn / exchange / classify / respawn / degrade
    # ------------------------------------------------------------------
    def _spawn_worker(self, wid: int) -> None:
        """Start (or replace) worker ``wid``'s process and pipe."""
        parent_conn, child_conn = self._ctx.Pipe()
        ring_name = self._rings[wid].name if self._rings else None
        status_name = (self._status.name if self._status is not None
                       else None)
        proc = self._ctx.Process(
            target=_worker_main,
            args=(wid, child_conn, ring_name, status_name),
            daemon=True, name=f"repro-shm-worker-{wid}",
        )
        proc.start()
        child_conn.close()
        self._procs[wid] = proc
        self._conns[wid] = parent_conn
        self._conn_ids = {id(c): w for w, c in enumerate(self._conns)}

    def _exchange(self, wire: List[tuple], timeout: Optional[float] = None
                  ) -> Tuple[Dict[int, object], Dict[int, str],
                             Dict[int, str]]:
        """One fan-out/fan-in attempt over ``(worker_id, command)`` wire.

        Never raises on fleet trouble; instead returns
        ``(results, failures, app_errors)`` where ``failures`` maps
        worker id -> transport-level reason (dead pipe, death, timeout,
        ring desync) and ``app_errors`` maps worker id -> traceback
        text from a worker-side exception.  The supervisor decides what
        each of those means.
        """
        from multiprocessing import connection as mpc

        limit = timeout if timeout is not None else self.call_timeout
        deadline = time.monotonic() + limit
        results: Dict[int, object] = {}
        failures: Dict[int, str] = {}
        app_errors: Dict[int, str] = {}
        pending = set()
        self._in_dispatch = True
        timer = self._profile.timed("backend.exchange")
        timer.__enter__()
        try:
            for wid, cmd in wire:
                try:
                    self._conns[wid].send(cmd)
                except (BrokenPipeError, OSError):
                    failures[wid] = "pipe closed on send"
                    continue
                pending.add(wid)
            while pending:
                ready = mpc.wait([self._conns[w] for w in pending],
                                 timeout=0.25)
                if not ready:
                    for wid in list(pending):
                        proc = self._procs[wid]
                        if not proc.is_alive():
                            failures[wid] = (f"worker died (exit code "
                                             f"{proc.exitcode})")
                            pending.discard(wid)
                    if pending and time.monotonic() > deadline:
                        for wid in pending:
                            failures[wid] = f"no ack within {limit:.0f}s"
                        pending.clear()
                    continue
                for conn in ready:
                    wid = self._conn_ids[id(conn)]
                    try:
                        status, payload = conn.recv()
                    except (EOFError, OSError):
                        failures[wid] = "worker hung up mid-call"
                        pending.discard(wid)
                        continue
                    pending.discard(wid)
                    if status == "error":
                        app_errors[wid] = payload
                    elif status == "desync":
                        failures[wid] = f"ring transport desync: {payload}"
                    else:
                        results[wid] = payload
            return results, failures, app_errors
        finally:
            self._in_dispatch = False
            timer.__exit__(None, None, None)

    def _kill_worker(self, wid: int) -> None:
        """SIGKILL worker ``wid`` (idempotent) and drop its pipe.

        Killing is always state-safe: sketch cells live in the shared
        segments, which belong to the parent.
        """
        proc = self._procs[wid]
        if proc.is_alive():
            proc.kill()
        proc.join(timeout=10.0)
        try:
            self._conns[wid].close()
        except OSError:  # pragma: no cover
            pass

    def _respawn_worker(self, wid: int) -> None:
        """Replace a lost worker in place and replay its shard state.

        Fresh process and pipe; ring seq/offset, status slot, and opid
        counter reset; every registered pool re-attached by replaying
        its token (the shared-memory segments survived the child).
        Wraps any startup trouble in :class:`_RespawnFailed` so the
        caller degrades instead of crashing.
        """
        self.health["respawns"] += 1
        self._kill_worker(wid)
        if self._ring_offsets:
            self._ring_offsets[wid] = 0
            self._ring_seqs[wid] = 0
        if self._status_view is not None:
            self._status_view[wid] = 0
        self._op_ids[wid] = 0
        try:
            self._spawn_worker(wid)
            self._await_one(wid, ("ping",), timeout=self.start_timeout)
            for token in sorted(self._handles):
                shm = self._handles[token]
                shape, randomness = self._pool_meta[token]
                self._await_one(
                    wid, ("attach", token, shm.name, shape, randomness),
                    timeout=self.call_timeout,
                )
        except Exception as exc:
            raise _RespawnFailed(
                f"respawn of worker {wid} failed: {exc}"
            ) from exc

    def _await_one(self, wid: int, cmd: tuple, timeout: float) -> object:
        """Send one command to one worker and wait for its ack."""
        conn = self._conns[wid]
        conn.send(cmd)
        deadline = time.monotonic() + timeout
        while not conn.poll(0.25):
            if not self._procs[wid].is_alive():
                raise RuntimeError(f"worker {wid} died during respawn")
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"worker {wid} unresponsive during respawn"
                )
        status, payload = conn.recv()
        if status != "ok":
            raise RuntimeError(
                f"worker {wid} rejected {cmd[0]!r} during respawn:\n"
                f"{payload}"
            )
        return payload

    def _enter_degraded(self, reason: str) -> None:
        """Give up on the fleet; all later ops run in-process.

        The pool segments are kept -- the parent's adopted cell views
        live in them and the in-process cores keep operating on exactly
        those bytes, so answers stay bit-identical.  Only the transport
        (workers, pipes, rings, status slots) is torn down.
        """
        if self.degraded is not None:
            return
        self.degraded = reason
        self.health["degrades"] += 1
        self._pending_detach.clear()
        for wid in range(self.num_workers):
            proc = self._procs[wid]
            if proc is None:
                continue
            if proc.is_alive():
                proc.kill()
            proc.join(timeout=5.0)
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        self._release_transport()

    def _release_transport(self) -> None:
        """Unlink ring + status segments (views dropped first)."""
        self._ring_views.clear()
        rings, self._rings = self._rings, []
        for shm in rings:
            try:
                shm.close()
            except BufferError:  # pragma: no cover
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        status, self._status = self._status, None
        self._status_view = None
        if status is not None:
            try:
                status.close()
            except BufferError:  # pragma: no cover
                pass
            try:
                status.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def _run_local(self, handle: PoolHandle, op: str,
                   arrays: List[np.ndarray]) -> object:
        """Degraded-mode execution of one shard's op, in-process.

        ``handle.pool.cells`` *is* the shared segment the workers were
        writing (``adopt_buffer``), and :func:`_execute_op` is the same
        code they ran, so completing a half-dispatched call locally is
        bit-identical to the fleet finishing it.
        """
        return _execute_op(op, handle.pool.cells, handle.randomness,
                           list(arrays))

    def _classify_failures(self, failures: Dict[int, str],
                           pending: Dict[int, tuple], mutating: bool,
                           results: Dict[int, object]) -> None:
        """Decide what each lost routed op means via the status slots.

        Every failed worker is killed first (a hung-but-alive worker
        might otherwise execute its queued op *after* the retry,
        double-applying a scatter), then its status slot is read:

        * ``+opid`` -- the op completed and only the ack was lost.  A
          mutating op is counted as success (never re-applied); a query
          is idempotent and simply retried.
        * ``-opid`` on a mutating op -- the worker died mid-scatter:
          the shard is partially updated and unrecoverable, so the
          backend latches broken.
        * anything else -- the op never started; retrying is safe.

        Retryable shares stay in ``pending``; satisfied ones move to
        ``results``.
        """
        for wid in sorted(failures):
            reason = failures[wid]
            opid = self._op_ids[wid]
            self._kill_worker(wid)
            slot = (int(self._status_view[wid])
                    if self._status_view is not None else 0)
            if slot == opid and mutating:
                results[wid] = None
                pending.pop(wid, None)
                continue
            if mutating and slot == -opid:
                self._broken = (
                    f"worker {wid} was lost mid-scatter ({reason}); "
                    f"pool state is partial"
                )
                raise SketchError(
                    f"shared-memory worker {wid} was lost mid-scatter "
                    f"({reason}); sketch state may be incomplete"
                )

    def _inject_fault(self, fault, wid: int) -> None:
        """Apply a planned fault to worker ``wid`` before a send."""
        self.health["faults_injected"] += 1
        if fault.kind == "kill":
            self._kill_worker(wid)
        elif fault.kind in ("hang", "delay", "drop"):
            try:
                self._conns[wid].send(("fault", fault.kind,
                                       fault.seconds))
            except (BrokenPipeError, OSError):  # pragma: no cover
                pass
        # "truncate" is applied after the ring record is packed.

    def _dispatch_ops(self, handle: PoolHandle, jobs: List[tuple],
                      mutating: bool = False,
                      timeout: Optional[float] = None
                      ) -> Dict[int, object]:
        """Supervised fan-out of routed ops; ``jobs`` are logical
        ``(worker_id, op, arrays)`` shares.

        Descriptors are packed into the rings *per attempt*, at send
        time, so a share that is retried after a respawn is re-packed
        against the fresh worker's reset seq state -- the recovered
        transport can never read a stale record.  Worker-side
        exceptions (deterministic application errors) raise
        immediately; transport failures respawn-and-retry up to
        ``self.retries`` times with exponential backoff, then degrade.
        """
        self._ensure_usable()
        if not jobs:
            return {}
        if self.degraded is not None:
            return {wid: self._run_local(handle, op, arrays)
                    for wid, op, arrays in jobs}
        pending: Dict[int, tuple] = {wid: (op, arrays)
                                     for wid, op, arrays in jobs}
        results: Dict[int, object] = {}
        attempt = 0
        while True:
            wire: List[tuple] = []
            for wid in sorted(pending):
                op, arrays = pending[wid]
                fault = (self._faults.draw(wid, op)
                         if self._faults is not None else None)
                if fault is not None:
                    self._inject_fault(fault, wid)
                self._op_ids[wid] += 1
                opid = self._op_ids[wid]
                packed = self._ring_pack(wid, arrays)
                if packed is None:
                    self.raw_dispatches += 1
                    wire.append((wid, (op, handle.token, opid, *arrays)))
                else:
                    self.ring_dispatches += 1
                    seq, offset, words = packed
                    if fault is not None and fault.kind == "truncate":
                        # Corrupt the packed record's header so the
                        # worker's decoder rejects it as a desync.
                        self._ring_views[wid][offset] = len(arrays) + 1
                    wire.append((wid, ("rb", op, handle.token, seq,
                                       offset, words, opid)))
            res, failures, app_errors = self._exchange(wire,
                                                       timeout=timeout)
            results.update(res)
            for wid in res:
                pending.pop(wid, None)
            if app_errors:
                # Deterministic worker exceptions are the application's
                # problem, not the fleet's: no respawn can fix them, so
                # no retry.
                if mutating:
                    self._broken = ("worker exception during a scatter "
                                    "left the pool partially updated")
                raise SketchError("\n".join(
                    f"worker {wid} failed:\n{tb}"
                    for wid, tb in sorted(app_errors.items())
                ))
            if not failures:
                return results
            self._classify_failures(failures, pending, mutating, results)
            if not pending:
                # Every failure resolved as completed-with-lost-ack;
                # bring the (killed) workers back for the next call.
                try:
                    for wid in sorted(failures):
                        self._respawn_worker(wid)
                except _RespawnFailed as exc:
                    self._enter_degraded(str(exc))
                return results
            if attempt >= self.retries:
                self._enter_degraded(
                    "retries exhausted after "
                    f"{attempt + 1} attempt(s): " + "; ".join(
                        f"worker {w}: {failures[w]}"
                        for w in sorted(failures))
                )
                break
            attempt += 1
            self.health["retries"] += 1
            try:
                for wid in sorted(failures):
                    self._respawn_worker(wid)
            except _RespawnFailed as exc:
                self._enter_degraded(str(exc))
                break
            if self.backoff > 0:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
        # Degraded: finish the remaining shares in-process -- same
        # cores, same shared cells, bit-identical results.
        for wid in sorted(pending):
            op, arrays = pending[wid]
            results[wid] = self._run_local(handle, op, arrays)
        return results

    def _dispatch_control(self, jobs: List[tuple],
                          timeout: Optional[float] = None
                          ) -> Dict[int, object]:
        """Supervised fan-out for control commands (ping / attach /
        detach), ``jobs`` being ``(worker_id, command)`` pairs.

        Control traffic is satisfied by recovery itself: a respawned
        worker is pinged and re-attached to every *registered* pool
        during :meth:`_respawn_worker`, and a detached token is no
        longer registered, so a failed share is never re-sent -- the
        respawn either already did the work or made it moot.
        """
        self._ensure_usable()
        if not jobs or self.degraded is not None:
            return {}
        pending: Dict[int, tuple] = dict(jobs)
        results: Dict[int, object] = {}
        attempt = 0
        while pending:
            res, failures, app_errors = self._exchange(
                sorted(pending.items()), timeout=timeout
            )
            results.update(res)
            for wid in res:
                pending.pop(wid, None)
            if app_errors:
                raise SketchError("\n".join(
                    f"worker {wid} failed:\n{tb}"
                    for wid, tb in sorted(app_errors.items())
                ))
            if not failures:
                break
            if attempt >= self.retries:
                self._enter_degraded(
                    "retries exhausted on control traffic: " + "; ".join(
                        f"worker {w}: {failures[w]}"
                        for w in sorted(failures))
                )
                return results
            attempt += 1
            self.health["retries"] += 1
            for wid in sorted(failures):
                self._kill_worker(wid)
                try:
                    self._respawn_worker(wid)
                except _RespawnFailed as exc:
                    self._enter_degraded(str(exc))
                    return results
                pending.pop(wid, None)
                results[wid] = None
            if self.backoff > 0:
                time.sleep(self.backoff * (2 ** (attempt - 1)))
        return results

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def attach_pool(self, pool, randomness) -> PoolHandle:
        """Move ``pool`` into shared memory and register it everywhere.

        Must be called before the pool hands out row views (the
        :class:`~repro.sketch.graph_sketch.SketchFamily` constructor
        guarantees this ordering); existing cell contents are preserved.
        On a degraded backend there is no fleet to place the pool on:
        the handle simply routes every op through the in-process
        fallback, keeping attach usable after recovery gave up.
        """
        self._ensure_usable()
        self._flush_detaches()
        token = next(self._tokens)
        shards = VertexPartition(pool.count, self.num_workers)
        if self.degraded is not None:
            return PoolHandle(pool=pool, randomness=randomness,
                              token=token, shards=shards)
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(create=True,
                                         size=pool.cells.nbytes)
        cells = None
        try:
            cells = np.ndarray(pool.cells.shape, dtype=np.int64,
                               buffer=shm.buf)
            pool.adopt_buffer(cells)
        except BaseException:
            # Mid-attach failure: the fresh segment was never registered
            # anywhere, so unlink it here or it leaks until reboot.
            cells = None
            try:
                shm.close()
            except BufferError:  # pragma: no cover
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            raise
        self._handles[token] = shm
        self._pool_meta[token] = (pool.cells.shape, randomness)
        try:
            self._dispatch_control([
                (w, ("attach", token, shm.name, pool.cells.shape,
                     randomness))
                for w in range(self.num_workers)
            ])
        except SketchError:
            self._release_token(token)
            raise
        return PoolHandle(pool=pool, randomness=randomness, token=token,
                          shards=shards)

    def detach_pool(self, handle: PoolHandle) -> None:
        self.release_token(handle.token)

    def release_token(self, token: int) -> None:
        """Detach a pool by token (safe after close / worker death).

        The parent's shared-memory segment is released immediately (a
        pure-filesystem operation); the worker-side detach commands are
        *deferred* to the next top-level backend call, because this is
        typically invoked by a pool finalizer -- which the GC may run
        at any allocation point, including inside an in-flight
        :meth:`_dispatch`, where touching the pipes would desync the
        request/ack protocol.  Workers keep a stale (unlinked) mapping
        until the flush; the memory dies once they drop it.
        """
        if token not in self._handles:
            return
        self._release_token(token)
        if self.usable and self.degraded is None:
            self._pending_detach.append(token)

    def _flush_detaches(self) -> None:
        """Send deferred worker-side detaches (top-level calls only)."""
        if (not self._pending_detach or self._in_dispatch
                or not self.usable or self.degraded is not None):
            return
        tokens, self._pending_detach = self._pending_detach, []
        for token in tokens:
            # One dispatch per token: the exchange keys acks by worker
            # id, so a call may carry at most one command per worker.
            try:
                self._dispatch_control([(w, ("detach", token))
                                        for w in range(self.num_workers)])
            except SketchError:
                return

    def _release_token(self, token: int) -> None:
        self._pool_meta.pop(token, None)
        shm = self._handles.pop(token, None)
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:
            # A live ndarray still maps the segment (e.g. the pool is
            # being collected together with its views); unlinking alone
            # is enough -- the mapping dies with the arrays.
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # Routed work
    # ------------------------------------------------------------------
    def _ring_pack(self, wid: int,
                   arrays: List[np.ndarray]) -> Optional[Tuple[int, int, int]]:
        """Write a descriptor record into worker ``wid``'s ring.

        Returns the ``(seq, offset, words)`` token, or ``None`` when the
        ring is disabled or the record does not fit (the caller falls
        back to the pickled pipe path).  Safe to overwrite the previous
        record: at most one command per worker is in flight, and the
        worker acknowledged it before this call could have started.
        """
        if not self._rings:
            return None
        lens = [int(a.shape[0]) for a in arrays]
        words = 1 + len(arrays) + sum(lens)
        if words > self.ring_words:
            return None
        with self._profile.timed("backend.ring_pack"):
            offset = self._ring_offsets[wid]
            if offset + words > self.ring_words:
                offset = 0  # wrap: the tail is too short for this record
            view = self._ring_views[wid]
            view[offset] = len(arrays)
            header = offset + 1
            view[header:header + len(arrays)] = lens
            pos = header + len(arrays)
            for array, k in zip(arrays, lens):
                view[pos:pos + k] = array
                pos += k
            self._ring_offsets[wid] = pos
            self._ring_seqs[wid] += 1
        return self._ring_seqs[wid], offset, words

    def _sharded_jobs(self, handle: PoolHandle, slots: np.ndarray,
                      payloads: List[np.ndarray],
                      op: str) -> Tuple[List[tuple], Dict[int, np.ndarray]]:
        """Split entry arrays by owning worker.

        Returns logical ``(worker_id, op, arrays)`` shares plus the
        per-worker entry masks.  Transport packing happens later, at
        send time inside :meth:`_dispatch_ops`, so a retried share is
        always re-packed against the respawned worker's reset ring.
        """
        with self._profile.timed("backend.shard"):
            owners = handle.owners_of(slots)
            # One stable sort replaces a full ``owners == wid`` scan per
            # worker; each slice is the same ascending index mask the
            # scan produced.
            order = np.argsort(owners, kind="stable")
            counts = np.bincount(owners, minlength=self.num_workers)
            starts = np.zeros(self.num_workers + 1, dtype=np.int64)
            np.cumsum(counts, out=starts[1:])
            jobs: List[tuple] = []
            masks: Dict[int, np.ndarray] = {}
            split: Dict[int, int] = {}
            for wid in range(self.num_workers):
                lo, hi = int(starts[wid]), int(starts[wid + 1])
                if lo == hi:
                    continue
                mask = order[lo:hi]
                masks[wid] = mask
                split[wid] = hi - lo
                jobs.append((wid, op, [slots[mask],
                                       *[p[mask] for p in payloads]]))
            self.last_split = split
        return jobs, masks

    def _group_jobs(self, handle: PoolHandle, groups: "List[np.ndarray]",
                    cols: Optional[np.ndarray],
                    op: str) -> Tuple[List[tuple], Dict[int, np.ndarray]]:
        """Assign whole groups to workers (greedy least-loaded by member
        count -- deterministic) and pack each worker's share as
        ``[group_lengths, members_flat(, cols)]``.  Workers read any
        pool row read-only, so group placement is a load-balancing
        choice, not a correctness constraint like the scatter shards.
        """
        timer = self._profile.timed("backend.shard")
        timer.__enter__()
        loads = [0] * self.num_workers
        assignment: Dict[int, List[int]] = {}
        for i, members in enumerate(groups):
            wid = min(range(self.num_workers),
                      key=lambda w: (loads[w], w))
            assignment.setdefault(wid, []).append(i)
            loads[wid] += max(1, int(members.shape[0]))
        jobs: List[tuple] = []
        masks: Dict[int, np.ndarray] = {}
        split: Dict[int, int] = {}
        for wid, indices in assignment.items():
            idx = np.asarray(indices, dtype=np.int64)
            masks[wid] = idx
            split[wid] = int(sum(groups[i].shape[0] for i in indices))
            glens = np.fromiter((groups[i].shape[0] for i in indices),
                                dtype=np.int64, count=len(indices))
            members = np.concatenate([groups[i] for i in indices])
            arrays = [glens, members]
            if cols is not None:
                arrays.append(cols[idx])
            jobs.append((wid, op, arrays))
        self.last_split = split
        timer.__exit__(None, None, None)
        return jobs, masks

    def scatter_edges(self, handle: PoolHandle, hi: np.ndarray,
                      lo: np.ndarray, idxs: np.ndarray,
                      deltas: np.ndarray) -> None:
        self._flush_detaches()
        slots = np.concatenate([hi, lo])
        all_idxs = np.concatenate([idxs, idxs])
        signed = np.concatenate([deltas, -deltas])
        jobs, _ = self._sharded_jobs(handle, slots, [all_idxs, signed],
                                     "apply")
        self._dispatch_ops(handle, jobs, mutating=True)
        # Mass bookkeeping -- and any due renormalization -- happens in
        # the parent after the barrier, the same point in the update
        # order as the sequential path's apply_points.
        handle.pool.record_mass(slots, signed)

    def query_rows(self, handle: PoolHandle, slots: np.ndarray,
                   cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        self._flush_detaches()
        jobs, masks = self._sharded_jobs(handle, slots, [cols], "query")
        results = self._dispatch_ops(handle, jobs)
        zeros = np.zeros(slots.shape[0], dtype=bool)
        found = np.full(slots.shape[0], -1, dtype=np.int64)
        for wid, payload in results.items():
            z, f = payload
            zeros[masks[wid]] = z
            found[masks[wid]] = f
        return zeros, found

    def sample_rows(self, handle: PoolHandle, slots: np.ndarray,
                    cols: np.ndarray) -> np.ndarray:
        self._flush_detaches()
        jobs, masks = self._sharded_jobs(handle, slots, [cols], "sample")
        results = self._dispatch_ops(handle, jobs)
        found = np.full(slots.shape[0], -1, dtype=np.int64)
        for wid, payload in results.items():
            found[masks[wid]] = payload
        return found

    def zero_rows(self, handle: PoolHandle,
                  slots: np.ndarray) -> np.ndarray:
        self._flush_detaches()
        jobs, masks = self._sharded_jobs(handle, slots, [], "is_zero")
        results = self._dispatch_ops(handle, jobs)
        zeros = np.zeros(slots.shape[0], dtype=bool)
        for wid, payload in results.items():
            zeros[masks[wid]] = payload
        return zeros

    def query_groups(self, handle: PoolHandle,
                     groups: "List[np.ndarray]",
                     cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        self._flush_detaches()
        jobs, masks = self._group_jobs(handle, groups, cols, "gquery")
        results = self._dispatch_ops(handle, jobs)
        zeros = np.zeros(len(groups), dtype=bool)
        found = np.full(len(groups), -1, dtype=np.int64)
        for wid, payload in results.items():
            z, f = payload
            zeros[masks[wid]] = z
            found[masks[wid]] = f
        return zeros, found

    def zero_groups(self, handle: PoolHandle,
                    groups: "List[np.ndarray]") -> np.ndarray:
        self._flush_detaches()
        jobs, masks = self._group_jobs(handle, groups, None, "gzero")
        results = self._dispatch_ops(handle, jobs)
        zeros = np.zeros(len(groups), dtype=bool)
        for wid, payload in results.items():
            zeros[masks[wid]] = payload
        return zeros

    def scan_group(self, handle: PoolHandle, members: np.ndarray,
                   cols: np.ndarray) -> Tuple[bool, np.ndarray]:
        self._flush_detaches()
        # One group, one worker: rotate so consecutive replacement
        # searches spread over the fleet (deterministic round-robin).
        wid = self._scan_cursor % self.num_workers
        self._scan_cursor += 1
        self.last_split = {wid: int(members.shape[0])}
        results = self._dispatch_ops(
            handle, [(wid, "gscan", [members, cols])]
        )
        zero, found = results[wid]
        return bool(zero), found

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pending_detach.clear()
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            if proc is None:
                continue
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            if conn is None:
                continue
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for token in list(self._handles):
            self._release_token(token)
        # Transport last: drop our ring/status views, then close +
        # unlink each segment (workers only ever held name-based
        # attachments, which died with their processes).
        self._release_transport()

    def describe(self) -> str:
        from repro import kernels

        bits = [f"workers={self.num_workers}",
                f"pools={len(self._handles)}",
                f"kernels={kernels.active_tier()}"]
        labels = {"faults_injected": "faults"}
        for key, value in self.health.items():
            if value:
                bits.append(f"{labels.get(key, key)}={value}")
        if self.degraded is not None:
            bits.append("degraded")
        return f"{self.name}({', '.join(bits)})"


# ---------------------------------------------------------------------------
# Factory / registry
# ---------------------------------------------------------------------------

_SEQUENTIAL_SINGLETON = SequentialBackend()
_SEQUENTIAL_SINGLETON.cached = True
_SHARED_CACHE: Dict[int, SharedMemoryBackend] = {}
_ALL_BACKENDS: "weakref.WeakSet" = weakref.WeakSet()


def normalize_backend_name(name: str) -> str:
    """Canonical backend name; raises ConfigurationError if unknown."""
    key = name.strip().lower().replace("-", "_")
    key = _ALIASES.get(key)
    if key is None:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; expected one of "
            f"{sorted(set(_ALIASES))}"
        )
    return key


def get_backend(name: Optional[str] = None,
                workers: Optional[int] = None) -> ExecutionBackend:
    """The process-wide backend for ``name`` (env default: sequential).

    Shared-memory backends are cached per worker count so every cluster,
    family, and test in a process shares one worker fleet instead of
    spawning its own.
    """
    if name is None:
        name = read_env(ENV_BACKEND) or SEQUENTIAL
    name = normalize_backend_name(name)
    if name == SEQUENTIAL:
        return _SEQUENTIAL_SINGLETON
    count = workers if workers is not None else default_worker_count()
    backend = _SHARED_CACHE.get(count)
    if backend is None or not backend.usable or backend.degraded:
        # A degraded cached backend is replaced (new callers deserve a
        # fresh fleet) but NOT closed: sessions already holding it keep
        # working -- degraded mode is fully functional -- and the atexit
        # hook still tears it down.
        backend = SharedMemoryBackend(num_workers=count)
        backend.cached = True
        _SHARED_CACHE[count] = backend
    return backend


def resolve_backend(spec=None,
                    workers: Optional[int] = None) -> ExecutionBackend:
    """Coerce a backend spec (None / name / instance) to a backend."""
    if spec is None or isinstance(spec, str):
        return get_backend(spec, workers)
    if isinstance(spec, ExecutionBackend):
        return spec
    raise ConfigurationError(
        f"backend must be a name or an ExecutionBackend, got {spec!r}"
    )


@atexit.register
def _shutdown_backends() -> None:  # pragma: no cover - exit path
    for backend in list(_ALL_BACKENDS):
        try:
            backend.close()
        except Exception:
            pass
