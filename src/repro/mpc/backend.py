"""Execution backends: where the sketch-pool work actually runs.

The cluster simulator *charges* MPC rounds and words, but until now every
super-step still executed on one Python thread.  This module introduces
the execution layer underneath the accounting: an :class:`ExecutionBackend`
turns the family-level bulk operations -- edge-batch ingestion into a
:class:`~repro.sketch.sparse_recovery.RecoveryPool` and the fused
zero-test / cut-edge recovery over pool rows -- into *work descriptors*
(numpy index arrays, never pickled sketches) and decides where they run:

* :class:`SequentialBackend` (the default) runs them in-process, exactly
  as before.  Zero overhead, zero dependencies, fully deterministic.
* :class:`SharedMemoryBackend` spawns persistent worker processes, maps
  each attached pool's cell block into ``multiprocessing.shared_memory``,
  and shards vertex rows across workers with the same block partition
  :class:`~repro.mpc.partition.VertexPartition` uses for machines.  A
  batch is split by owning worker; each worker hashes its shard's
  coordinates (rebuilt from the family's spawn-safe randomness params)
  and scatters into its own rows, so no two workers ever write the same
  cache line and no sketch state ever crosses a pipe.

Choosing a backend
------------------
Results are **bit-identical** across backends: the scatter targets
disjoint rows, integer addition is order-independent, and fingerprint
renormalization stays in the parent at the same trigger points.  Pick by
workload, not by correctness:

* ``sequential`` -- always the right default, and the only sensible
  choice for small ``n`` or tiny batches, where descriptor shipping
  costs more than the scatter it parallelizes.
* ``shared_memory`` -- wins wall-clock when batches are large (thousands
  of entries per phase), ``n`` is large enough that pool scatters and
  row queries dominate, and real cores are available.  Worker count
  defaults to ``min(4, cpus)``.

Select it per run with ``MPCConfig(backend="shared_memory",
backend_workers=4)``, per algorithm with the ``backend=`` knob on
``MPCConnectivity`` / ``StreamingConnectivity`` / ``AGMStaticConnectivity``
/ ``SketchFamily``, or globally with the environment variables
``REPRO_BACKEND`` / ``REPRO_BACKEND_WORKERS`` (how CI runs the tier-1
suite against the cluster backend).

Failure model: a worker that dies or deadlocks surfaces as
:class:`~repro.errors.SketchError` on the next backend call (liveness is
polled while waiting, with a configurable ``REPRO_BACKEND_TIMEOUT``), so
a crashed shard can never silently corrupt a phase.  The environment
knobs are validated at read time: a garbage ``REPRO_BACKEND_WORKERS``
or ``REPRO_BACKEND_TIMEOUT`` value raises a ``SketchError`` naming the
variable instead of detonating deep inside backend startup.

Ring-buffer descriptor transport
--------------------------------
Shipping a routed call's index arrays through the pipes means pickling
a fresh ``(slots, idxs, deltas)`` descriptor per dispatch -- at small
batch sizes that serialisation, not the GF(2^61-1) work, dominates the
fan-out.  Each worker therefore owns a preallocated shared-memory
**ring buffer** for descriptors, and the pipe carries only a tiny
constant-size token.

*Wire layout.*  A ring is one int64 segment of ``ring_words`` words.
A dispatch packs its descriptor arrays in place at the current write
offset::

    [n_arrays, len_0 .. len_{n-1}, data_0 .. data_{n-1}]

wrapping to offset 0 when the tail is too short for the whole record.
The pipe command is then ``("rb", op, pool_token, seq, offset,
words)``; descriptors larger than the ring fall back to the legacy
pickled-pipe path (large batches amortise their pickling anyway).

*Seq/ack discipline.*  The parent increments a per-worker sequence
number on every ring write; the worker checks each token continues the
sequence and rejects any gap as a desync (stale bytes are never
silently decoded).  At most one command per worker is ever in flight
(:meth:`SharedMemoryBackend._dispatch` is a synchronous fan-out/fan-in)
and the worker acknowledges on the existing liveness channel only
*after* consuming the descriptor, so the parent can never overwrite a
region that is still being read -- the single-writer/single-reader ring
needs no locks.

*Crash semantics.*  A worker death mid-call is detected by the same
liveness poll as before (``SketchError``, backend marked broken); the
parent owns the ring segments and unlinks them on :meth:`close`, while
workers hold only name-based attachments that die with their process.
Rings are process-local execution state: checkpoints never contain
them, and a checkpoint restored onto a fresh backend simply attaches
its pools to that backend's own rings.
"""

from __future__ import annotations

import atexit
import itertools
import math
import os
import time
import traceback
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError, SketchError
from repro.mpc.partition import VertexPartition

#: Environment knobs: backend name and worker count used when a config /
#: constructor leaves the backend unspecified.
ENV_BACKEND = "REPRO_BACKEND"
ENV_WORKERS = "REPRO_BACKEND_WORKERS"
#: Seconds a single backend call may wait on workers before the call is
#: declared dead (deadlocked worker -> SketchError instead of a hang).
ENV_TIMEOUT = "REPRO_BACKEND_TIMEOUT"

SEQUENTIAL = "sequential"
SHARED_MEMORY = "shared_memory"
_ALIASES = {
    "sequential": SEQUENTIAL,
    "shared_memory": SHARED_MEMORY,  # hyphens normalize to underscores
    "shm": SHARED_MEMORY,
}

#: Default per-worker descriptor ring size, in int64 words (256 KiB).
#: Comfortably holds the small-batch descriptors the ring exists for;
#: anything larger falls back to the pickled pipe path.
DEFAULT_RING_WORDS = 1 << 15


def available_cpus() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        return max(1, os.cpu_count() or 1)


def _env_int(name: str, minimum: int) -> Optional[int]:
    """Read an integer env knob; ``None`` when unset.

    A set-but-garbage value (``"abc"``, ``""``, ``"-1"``) raises
    :class:`~repro.errors.SketchError` naming the variable at *read*
    time, instead of surfacing as a bare ``ValueError`` (or a silently
    clamped count) deep inside backend startup.
    """
    raw = os.environ.get(name)
    if raw is None:
        return None
    try:
        value = int(raw.strip())
    except ValueError:
        raise SketchError(
            f"invalid {name}={raw!r}: expected an integer >= {minimum}"
        ) from None
    if value < minimum:
        raise SketchError(
            f"invalid {name}={raw!r}: expected an integer >= {minimum}"
        )
    return value


def _env_float(name: str, default: float) -> float:
    """Read a positive-seconds env knob; ``default`` when unset.

    Validated at read time like :func:`_env_int`: garbage or
    non-positive values raise ``SketchError`` naming the variable.
    """
    raw = os.environ.get(name)
    if raw is None:
        return default
    try:
        value = float(raw.strip())
    except ValueError:
        value = math.nan
    if not math.isfinite(value) or value <= 0:
        raise SketchError(
            f"invalid {name}={raw!r}: expected a positive number of "
            f"seconds"
        )
    return value


def default_worker_count() -> int:
    """Worker count when unspecified: env override, else ``min(4, cpus)``."""
    env = _env_int(ENV_WORKERS, minimum=1)
    if env is not None:
        return env
    return max(1, min(4, available_cpus()))


@dataclass
class PoolHandle:
    """A pool registered with a backend.

    Carries everything a routed call needs: the pool (for parent-side
    mass bookkeeping and zero-copy sequential reads), the shared
    randomness (hashing / fingerprint checks), the backend-assigned
    token, and the row shard map.  ``shards`` uses the same block
    partition as the machine placement in :mod:`repro.mpc.partition`,
    so row ownership lines up with the model's vertex placement.
    """

    pool: "object"
    randomness: "object"
    token: int
    shards: Optional[VertexPartition] = None

    def owners_of(self, slots: np.ndarray) -> np.ndarray:
        """The owning worker of each slot (the block partition map)."""
        assert self.shards is not None
        return self.shards.machines_of_vertices(slots)


def _rows_of(pool, slots: np.ndarray) -> np.ndarray:
    """The ``(k, 4, columns, levels)`` row stack for ``slots``.

    The identity selection (all rows in order) is a zero-copy view,
    mirroring :meth:`L0Sampler._stacked_cells`.
    """
    if (slots.shape[0] == pool.count
            and np.array_equal(slots,
                               np.arange(pool.count, dtype=np.int64))):
        return pool.cells
    return pool.cells[slots]


class ExecutionBackend:
    """Protocol for executing pool-level sketch work.

    ``attach_pool`` / ``detach_pool`` manage pool placement;
    ``scatter_edges`` ingests an edge batch into both endpoints'
    rows; ``query_rows`` / ``sample_rows`` / ``zero_rows`` answer the
    fused AGM-iteration queries over pool rows.  ``last_split`` is
    diagnostics: the per-*worker-shard* entry counts of the most recent
    routed call (tests and experiments read it to see how work fanned
    out).  Note worker shards are not model machines -- the per-machine
    metrics attribution lives in the cluster layer, keyed by the
    machine partition.
    """

    name: str = "abstract"
    parallel: bool = False
    num_workers: int = 1
    #: True for instances handed out by the process-wide factory cache
    #: (:func:`get_backend`): many clusters/sessions share them, so
    #: owner-style teardown (``Cluster.close``, ``GraphSession.close``)
    #: leaves them running by default.  Privately constructed instances
    #: stay False and are closed deterministically by their owner.
    cached: bool = False

    def __init__(self) -> None:
        self.last_split: Dict[int, int] = {}

    # -- pool lifecycle -------------------------------------------------
    def attach_pool(self, pool, randomness) -> PoolHandle:
        raise NotImplementedError

    def detach_pool(self, handle: PoolHandle) -> None:
        raise NotImplementedError

    # -- routed work ----------------------------------------------------
    def scatter_edges(self, handle: PoolHandle, hi: np.ndarray,
                      lo: np.ndarray, idxs: np.ndarray,
                      deltas: np.ndarray) -> None:
        """Ingest one edge batch: ``+delta`` into row ``hi[i]``,
        ``-delta`` into row ``lo[i]`` at coordinate ``idxs[i]``."""
        raise NotImplementedError

    def query_rows(self, handle: PoolHandle, slots: np.ndarray,
                   cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Fused per-row zero test + one-column recovery."""
        raise NotImplementedError

    def sample_rows(self, handle: PoolHandle, slots: np.ndarray,
                    cols: np.ndarray) -> np.ndarray:
        """Per-row one-column recovery (no zero test)."""
        raise NotImplementedError

    def zero_rows(self, handle: PoolHandle,
                  slots: np.ndarray) -> np.ndarray:
        """Per-row all-columns zero test."""
        raise NotImplementedError

    # -- routed supernode (group) work ----------------------------------
    # The AGM halving iterations query *merged* supernode sketches.
    # Instead of materialising merged cells in the parent, these ops
    # ship fragment **membership** (per-group pool-row lists); the
    # backend merges the member rows where the pool lives and answers
    # bit-identically to merging first (sum + query commute, see
    # repro.sketch.sparse_recovery.merge_group_cells).

    def query_groups(self, handle: PoolHandle,
                     groups: "List[np.ndarray]",
                     cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Fused zero test + one-column recovery per merged group."""
        raise NotImplementedError

    def zero_groups(self, handle: PoolHandle,
                    groups: "List[np.ndarray]") -> np.ndarray:
        """Per-group all-columns zero test over merged member rows."""
        raise NotImplementedError

    def scan_group(self, handle: PoolHandle, members: np.ndarray,
                   cols: np.ndarray) -> Tuple[bool, np.ndarray]:
        """Zero test + whole column scan of one merged group."""
        raise NotImplementedError

    def close(self) -> None:
        """Release workers / shared segments (no-op when in-process)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        """Deterministic teardown: ``with SharedMemoryBackend(...) as
        backend`` shuts the worker fleet down on scope exit instead of
        waiting for GC / atexit finalizers."""
        self.close()

    @property
    def usable(self) -> bool:
        return True

    def describe(self) -> str:
        return f"{self.name}(workers={self.num_workers})"


class SequentialBackend(ExecutionBackend):
    """The in-process backend: today's vectorized code paths, verbatim."""

    name = SEQUENTIAL
    parallel = False
    num_workers = 1

    def __init__(self) -> None:
        super().__init__()
        self._tokens = itertools.count()

    def attach_pool(self, pool, randomness) -> PoolHandle:
        return PoolHandle(pool=pool, randomness=randomness,
                          token=next(self._tokens))

    def detach_pool(self, handle: PoolHandle) -> None:
        pass

    def scatter_edges(self, handle: PoolHandle, hi: np.ndarray,
                      lo: np.ndarray, idxs: np.ndarray,
                      deltas: np.ndarray) -> None:
        randomness = handle.randomness
        col_levels = randomness.levels_of_many(idxs)
        zpows = randomness.zpow_many(idxs)
        slots = np.concatenate([hi, lo])
        signed = np.concatenate([deltas, -deltas])
        handle.pool.apply_points(
            slots,
            np.concatenate([col_levels, col_levels], axis=0),
            np.concatenate([idxs, idxs]),
            signed,
            np.concatenate([zpows, zpows]),
        )
        self.last_split = {0: int(slots.shape[0])}

    def query_rows(self, handle: PoolHandle, slots: np.ndarray,
                   cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        from repro.sketch.l0_sampler import query_cells

        self.last_split = {0: int(slots.shape[0])}
        return query_cells(_rows_of(handle.pool, slots), cols,
                           handle.randomness)

    def sample_rows(self, handle: PoolHandle, slots: np.ndarray,
                    cols: np.ndarray) -> np.ndarray:
        from repro.sketch.l0_sampler import sample_cells

        self.last_split = {0: int(slots.shape[0])}
        return sample_cells(_rows_of(handle.pool, slots), cols,
                            handle.randomness)

    def zero_rows(self, handle: PoolHandle,
                  slots: np.ndarray) -> np.ndarray:
        from repro.sketch.l0_sampler import is_zero_cells

        self.last_split = {0: int(slots.shape[0])}
        return is_zero_cells(_rows_of(handle.pool, slots))

    def query_groups(self, handle: PoolHandle,
                     groups: "List[np.ndarray]",
                     cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        from repro.sketch.l0_sampler import query_group_cells

        self.last_split = {0: sum(int(g.shape[0]) for g in groups)}
        return query_group_cells(handle.pool.cells, groups, cols,
                                 handle.randomness)

    def zero_groups(self, handle: PoolHandle,
                    groups: "List[np.ndarray]") -> np.ndarray:
        from repro.sketch.l0_sampler import zero_group_cells

        self.last_split = {0: sum(int(g.shape[0]) for g in groups)}
        return zero_group_cells(handle.pool.cells, groups)

    def scan_group(self, handle: PoolHandle, members: np.ndarray,
                   cols: np.ndarray) -> Tuple[bool, np.ndarray]:
        from repro.sketch.l0_sampler import scan_group_cells

        self.last_split = {0: int(members.shape[0])}
        zero, found = scan_group_cells(handle.pool.cells, members, cols,
                                       handle.randomness)
        return bool(zero), found


# ---------------------------------------------------------------------------
# Shared-memory worker process
# ---------------------------------------------------------------------------

def _ring_read(view: np.ndarray, offset: int, words: int) -> List[np.ndarray]:
    """Unpack ``[n, len_0..len_{n-1}, data...]`` starting at ``offset``.

    Returns zero-copy views into the ring; they stay valid until the
    worker acknowledges the command (the parent never overwrites an
    unacknowledged record).
    """
    n = int(view[offset])
    lens = view[offset + 1:offset + 1 + n]
    args: List[np.ndarray] = []
    pos = offset + 1 + n
    for length in lens:
        length = int(length)
        args.append(view[pos:pos + length])
        pos += length
    if pos - offset != words:
        raise RuntimeError(
            f"ring descriptor length mismatch: token said {words} "
            f"words, header decodes to {pos - offset}"
        )
    return args


def _split_groups(members: np.ndarray,
                  glens: np.ndarray) -> List[np.ndarray]:
    """Cut a flattened membership array back into per-group arrays."""
    return np.split(members, np.cumsum(glens)[:-1])


def _worker_main(worker_id: int, conn, ring_name: Optional[str] = None
                 ) -> None:
    """Persistent worker loop: attach pools, scatter, answer queries.

    Runs in a *spawned* process: everything it needs arrives through
    the pipe (small commands, spawn-safe randomness params), the
    descriptor ring (index-array payloads, see the module docstring's
    wire protocol), or the named shared-memory cell blocks.  All heavy
    math is the same vectorized code the sequential backend runs --
    :func:`repro.sketch.sparse_recovery.pool_scatter` and the
    ``*_cells`` query cores -- so results are bit-identical by
    construction.
    """
    # Imports happen in the child; keep them inside so the parent's
    # module import stays cheap and cycle-free.
    from multiprocessing import shared_memory

    from repro.sketch.l0_sampler import (
        is_zero_cells,
        query_cells,
        query_group_cells,
        sample_cells,
        scan_group_cells,
        zero_group_cells,
    )
    from repro.sketch.sparse_recovery import pool_scatter

    pools: Dict[int, tuple] = {}
    ring = None
    ring_view = None
    if ring_name is not None:
        ring = shared_memory.SharedMemory(name=ring_name)
        ring_view = np.ndarray((ring.size // 8,), dtype=np.int64,
                               buffer=ring.buf)
    expected_seq = 1

    def run_op(op: str, token: int, args: List[np.ndarray]):
        """One routed op over descriptor arrays (ring or pipe alike)."""
        if op == "apply":
            slots, idxs, deltas = args
            _, cells, randomness = pools[token]
            col_levels = randomness.levels_of_many(idxs)
            zpows = randomness.zpow_many(idxs)
            _, _, columns, levels = cells.shape
            pool_scatter(cells.reshape(-1), columns, levels, slots,
                         col_levels, idxs, deltas, zpows)
            return None
        if op == "query":
            slots, cols = args
            _, cells, randomness = pools[token]
            return query_cells(cells[slots], cols, randomness)
        if op == "sample":
            slots, cols = args
            _, cells, randomness = pools[token]
            return sample_cells(cells[slots], cols, randomness)
        if op == "is_zero":
            (slots,) = args
            _, cells, _ = pools[token]
            return is_zero_cells(cells[slots])
        if op == "gquery":
            glens, members, cols = args
            _, cells, randomness = pools[token]
            return query_group_cells(cells, _split_groups(members, glens),
                                     cols, randomness)
        if op == "gzero":
            glens, members = args
            _, cells, _ = pools[token]
            return zero_group_cells(cells, _split_groups(members, glens))
        if op == "gscan":
            members, cols = args
            _, cells, randomness = pools[token]
            return scan_group_cells(cells, members, cols, randomness)
        raise ValueError(f"unknown backend op {op!r}")

    while True:
        try:
            cmd = conn.recv()
        except (EOFError, OSError):  # parent went away
            break
        op = cmd[0]
        if op == "stop":
            conn.send(("ok", None))
            break
        try:
            if op == "ping":
                conn.send(("ok", worker_id))
            elif op == "attach":
                _, token, shm_name, shape, randomness = cmd
                # Spawned children share the parent's resource tracker,
                # so this attach-side register is an idempotent no-op;
                # the parent alone unlinks (and unregisters) on detach.
                shm = shared_memory.SharedMemory(name=shm_name)
                cells = np.ndarray(shape, dtype=np.int64, buffer=shm.buf)
                pools[token] = (shm, cells, randomness)
                conn.send(("ok", None))
            elif op == "detach":
                _, token = cmd
                entry = pools.pop(token, None)
                if entry is not None:
                    shm, cells, _ = entry
                    del cells
                    try:
                        shm.close()
                    except BufferError:  # pragma: no cover
                        pass
                conn.send(("ok", None))
            elif op == "rb":
                # Ring-transported descriptor: the payload sits in the
                # shared ring; the token is all the pipe carried.
                _, real_op, token, seq, offset, words = cmd
                if ring_view is None:
                    raise RuntimeError("ring token without a ring")
                if seq != expected_seq:
                    raise RuntimeError(
                        f"ring transport desync: expected seq "
                        f"{expected_seq}, got {seq}"
                    )
                expected_seq += 1
                args = _ring_read(ring_view, offset, words)
                conn.send(("ok", run_op(real_op, token, args)))
            else:
                conn.send(("ok", run_op(op, cmd[1], list(cmd[2:]))))
        except Exception:
            conn.send(("error", traceback.format_exc()))
    if ring is not None:
        del ring_view
        try:
            ring.close()
        except BufferError:  # pragma: no cover
            pass


class SharedMemoryBackend(ExecutionBackend):
    """Worker-process backend over shared-memory sketch pools.

    Spawns ``num_workers`` persistent processes up front.  Attached
    pools live in ``multiprocessing.shared_memory``; vertex rows are
    sharded across workers by the block partition, and every routed call
    is a synchronous fan-out/fan-in over small numpy descriptors.  Mass
    bookkeeping (and fingerprint-limb renormalization) stays in the
    parent, at exactly the sequential trigger points, so pool cells are
    bit-identical to :class:`SequentialBackend` after every call.
    """

    name = SHARED_MEMORY
    parallel = True

    def __init__(self, num_workers: Optional[int] = None,
                 call_timeout: Optional[float] = None,
                 start_timeout: float = 120.0,
                 ring_words: int = DEFAULT_RING_WORDS):
        super().__init__()
        self.num_workers = (num_workers if num_workers is not None
                            else default_worker_count())
        if self.num_workers < 1:
            raise ConfigurationError("need at least one worker")
        self.call_timeout = (call_timeout if call_timeout is not None
                             else _env_float(ENV_TIMEOUT, 120.0))
        self._tokens = itertools.count()
        self._handles: Dict[int, "object"] = {}  # token -> SharedMemory
        self._closed = False
        self._broken: Optional[str] = None
        self._in_dispatch = False
        #: Tokens whose worker-side detach is deferred: pool finalizers
        #: can fire from GC at any allocation point -- including inside
        #: an in-flight :meth:`_dispatch` -- and sending on the pipes
        #: reentrantly would desync the request/ack protocol.  The
        #: queue drains at the next top-level call.
        self._pending_detach: List[int] = []
        #: Descriptor rings, one per worker (module docstring has the
        #: wire protocol); ``ring_words=0`` disables the fast path so
        #: every dispatch takes the pickled pipe route.
        self.ring_words = int(ring_words)
        self.ring_dispatches = 0
        self.raw_dispatches = 0
        self._rings: List["object"] = []
        self._ring_views: List[np.ndarray] = []
        self._ring_offsets: List[int] = []
        self._ring_seqs: List[int] = []
        self._scan_cursor = 0
        if self.ring_words > 0:
            from multiprocessing import shared_memory

            for _ in range(self.num_workers):
                shm = shared_memory.SharedMemory(
                    create=True, size=8 * self.ring_words
                )
                self._rings.append(shm)
                self._ring_views.append(
                    np.ndarray((self.ring_words,), dtype=np.int64,
                               buffer=shm.buf)
                )
                self._ring_offsets.append(0)
                self._ring_seqs.append(0)
        import multiprocessing as mp

        ctx = mp.get_context("spawn")
        self._procs = []
        self._conns = []
        for wid in range(self.num_workers):
            parent_conn, child_conn = ctx.Pipe()
            ring_name = self._rings[wid].name if self._rings else None
            proc = ctx.Process(target=_worker_main,
                               args=(wid, child_conn, ring_name),
                               daemon=True,
                               name=f"repro-shm-worker-{wid}")
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self._conn_ids = {id(c): w for w, c in enumerate(self._conns)}
        try:
            # Handshake: workers are up once they answer a ping (spawned
            # interpreters import numpy + repro, which takes a moment).
            self._dispatch(
                [(w, ("ping",)) for w in range(self.num_workers)],
                timeout=start_timeout,
            )
        except BaseException:
            self.close()
            raise
        _ALL_BACKENDS.add(self)

    # ------------------------------------------------------------------
    @property
    def usable(self) -> bool:
        return not self._closed and self._broken is None

    def _ensure_usable(self) -> None:
        if self._closed:
            raise SketchError("shared-memory backend is closed")
        if self._broken is not None:
            raise SketchError(
                f"shared-memory backend is broken: {self._broken}"
            )

    def _check_alive(self, pending) -> None:
        for wid in pending:
            proc = self._procs[wid]
            if not proc.is_alive():
                self._broken = (f"worker {wid} died "
                                f"(exit code {proc.exitcode})")
                raise SketchError(
                    f"shared-memory worker {wid} died with exit code "
                    f"{proc.exitcode}; sketch state may be incomplete"
                )

    def _dispatch(self, jobs: List[tuple],
                  timeout: Optional[float] = None,
                  mutating: bool = False) -> Dict[int, object]:
        """Send ``(worker_id, command)`` jobs, await one ack per job.

        Returns ``{worker_id: payload}``.  A worker-side exception, a
        dead worker, or a timeout surfaces as
        :class:`~repro.errors.SketchError`; remaining acks are drained
        first so the pipe protocol stays in sync after an error.  With
        ``mutating`` set, a worker-side exception additionally marks
        the backend broken: the other workers may already have
        scattered their shards, so the pool state is partial and no
        further calls may trust it.
        """
        self._ensure_usable()
        if not jobs:
            return {}
        from multiprocessing import connection as mpc

        limit = timeout if timeout is not None else self.call_timeout
        deadline = time.monotonic() + limit
        self._in_dispatch = True
        try:
            pending = set()
            for wid, cmd in jobs:
                try:
                    self._conns[wid].send(cmd)
                except (BrokenPipeError, OSError):
                    self._broken = f"worker {wid} died (pipe closed)"
                    raise SketchError(
                        f"shared-memory worker {wid} died (exit code "
                        f"{self._procs[wid].exitcode}); sketch state may "
                        f"be incomplete"
                    )
                pending.add(wid)
            results: Dict[int, object] = {}
            error: Optional[str] = None
            while pending:
                ready = mpc.wait([self._conns[w] for w in pending],
                                 timeout=0.25)
                if not ready:
                    self._check_alive(pending)
                    if time.monotonic() > deadline:
                        self._broken = (f"call timed out; workers "
                                        f"{sorted(pending)} unresponsive")
                        raise SketchError(
                            f"shared-memory backend call timed out after "
                            f"{limit:.0f}s waiting on workers "
                            f"{sorted(pending)} (deadlocked worker?)"
                        )
                    continue
                for conn in ready:
                    wid = self._conn_ids[id(conn)]
                    try:
                        status, payload = conn.recv()
                    except (EOFError, OSError):
                        self._broken = f"worker {wid} hung up mid-call"
                        raise SketchError(
                            f"shared-memory worker {wid} died mid-call"
                        )
                    pending.discard(wid)
                    if status == "error":
                        error = error or f"worker {wid} failed:\n{payload}"
                    else:
                        results[wid] = payload
            if error is not None:
                if mutating:
                    self._broken = ("worker exception during a scatter "
                                    "left the pool partially updated")
                raise SketchError(error)
            return results
        finally:
            self._in_dispatch = False

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def attach_pool(self, pool, randomness) -> PoolHandle:
        """Move ``pool`` into shared memory and register it everywhere.

        Must be called before the pool hands out row views (the
        :class:`~repro.sketch.graph_sketch.SketchFamily` constructor
        guarantees this ordering); existing cell contents are preserved.
        """
        self._ensure_usable()
        self._flush_detaches()
        from multiprocessing import shared_memory

        token = next(self._tokens)
        shm = shared_memory.SharedMemory(create=True,
                                         size=pool.cells.nbytes)
        cells = np.ndarray(pool.cells.shape, dtype=np.int64,
                           buffer=shm.buf)
        pool.adopt_buffer(cells)
        self._handles[token] = shm
        try:
            self._dispatch([
                (w, ("attach", token, shm.name, pool.cells.shape,
                     randomness))
                for w in range(self.num_workers)
            ])
        except SketchError:
            self._release_token(token)
            raise
        return PoolHandle(
            pool=pool, randomness=randomness, token=token,
            shards=VertexPartition(pool.count, self.num_workers),
        )

    def detach_pool(self, handle: PoolHandle) -> None:
        self.release_token(handle.token)

    def release_token(self, token: int) -> None:
        """Detach a pool by token (safe after close / worker death).

        The parent's shared-memory segment is released immediately (a
        pure-filesystem operation); the worker-side detach commands are
        *deferred* to the next top-level backend call, because this is
        typically invoked by a pool finalizer -- which the GC may run
        at any allocation point, including inside an in-flight
        :meth:`_dispatch`, where touching the pipes would desync the
        request/ack protocol.  Workers keep a stale (unlinked) mapping
        until the flush; the memory dies once they drop it.
        """
        if token not in self._handles:
            return
        self._release_token(token)
        if self.usable:
            self._pending_detach.append(token)

    def _flush_detaches(self) -> None:
        """Send deferred worker-side detaches (top-level calls only)."""
        if not self._pending_detach or self._in_dispatch or not self.usable:
            return
        tokens, self._pending_detach = self._pending_detach, []
        for token in tokens:
            # One dispatch per token: _dispatch keys acks by worker id,
            # so a call may carry at most one command per worker.
            try:
                self._dispatch([(w, ("detach", token))
                                for w in range(self.num_workers)])
            except SketchError:
                return

    def _release_token(self, token: int) -> None:
        shm = self._handles.pop(token, None)
        if shm is None:
            return
        try:
            shm.close()
        except BufferError:
            # A live ndarray still maps the segment (e.g. the pool is
            # being collected together with its views); unlinking alone
            # is enough -- the mapping dies with the arrays.
            pass
        try:
            shm.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass

    # ------------------------------------------------------------------
    # Routed work
    # ------------------------------------------------------------------
    def _ring_pack(self, wid: int,
                   arrays: List[np.ndarray]) -> Optional[Tuple[int, int, int]]:
        """Write a descriptor record into worker ``wid``'s ring.

        Returns the ``(seq, offset, words)`` token, or ``None`` when the
        ring is disabled or the record does not fit (the caller falls
        back to the pickled pipe path).  Safe to overwrite the previous
        record: at most one command per worker is in flight, and the
        worker acknowledged it before this call could have started.
        """
        if not self._rings:
            return None
        words = 1 + len(arrays) + sum(int(a.shape[0]) for a in arrays)
        if words > self.ring_words:
            return None
        offset = self._ring_offsets[wid]
        if offset + words > self.ring_words:
            offset = 0  # wrap: the tail is too short for this record
        view = self._ring_views[wid]
        view[offset] = len(arrays)
        pos = offset + 1
        for array in arrays:
            view[pos] = array.shape[0]
            pos += 1
        for array in arrays:
            k = array.shape[0]
            view[pos:pos + k] = array
            pos += k
        self._ring_offsets[wid] = pos
        self._ring_seqs[wid] += 1
        return self._ring_seqs[wid], offset, words

    def _job(self, wid: int, op: str, token: int,
             arrays: List[np.ndarray]) -> tuple:
        """One ``(worker_id, command)`` job, ring-transported when the
        descriptor fits (the small-batch fast path), pickled otherwise."""
        packed = self._ring_pack(wid, arrays)
        if packed is None:
            self.raw_dispatches += 1
            return (wid, (op, token, *arrays))
        self.ring_dispatches += 1
        seq, offset, words = packed
        return (wid, ("rb", op, token, seq, offset, words))

    def _sharded_jobs(self, handle: PoolHandle, slots: np.ndarray,
                      payloads: List[np.ndarray],
                      op: str) -> Tuple[List[tuple], Dict[int, np.ndarray]]:
        """Split entry arrays by owning worker; returns (jobs, masks)."""
        owners = handle.owners_of(slots)
        jobs: List[tuple] = []
        masks: Dict[int, np.ndarray] = {}
        split: Dict[int, int] = {}
        for wid in range(self.num_workers):
            mask = np.flatnonzero(owners == wid)
            if mask.size == 0:
                continue
            masks[wid] = mask
            split[wid] = int(mask.size)
            jobs.append(self._job(wid, op, handle.token,
                                  [slots[mask],
                                   *[p[mask] for p in payloads]]))
        self.last_split = split
        return jobs, masks

    def _group_jobs(self, handle: PoolHandle, groups: "List[np.ndarray]",
                    cols: Optional[np.ndarray],
                    op: str) -> Tuple[List[tuple], Dict[int, np.ndarray]]:
        """Assign whole groups to workers (greedy least-loaded by member
        count -- deterministic) and pack each worker's share as
        ``[group_lengths, members_flat(, cols)]``.  Workers read any
        pool row read-only, so group placement is a load-balancing
        choice, not a correctness constraint like the scatter shards.
        """
        loads = [0] * self.num_workers
        assignment: Dict[int, List[int]] = {}
        for i, members in enumerate(groups):
            wid = min(range(self.num_workers),
                      key=lambda w: (loads[w], w))
            assignment.setdefault(wid, []).append(i)
            loads[wid] += max(1, int(members.shape[0]))
        jobs: List[tuple] = []
        masks: Dict[int, np.ndarray] = {}
        split: Dict[int, int] = {}
        for wid, indices in assignment.items():
            idx = np.asarray(indices, dtype=np.int64)
            masks[wid] = idx
            split[wid] = int(sum(groups[i].shape[0] for i in indices))
            glens = np.fromiter((groups[i].shape[0] for i in indices),
                                dtype=np.int64, count=len(indices))
            members = np.concatenate([groups[i] for i in indices])
            arrays = [glens, members]
            if cols is not None:
                arrays.append(cols[idx])
            jobs.append(self._job(wid, op, handle.token, arrays))
        self.last_split = split
        return jobs, masks

    def scatter_edges(self, handle: PoolHandle, hi: np.ndarray,
                      lo: np.ndarray, idxs: np.ndarray,
                      deltas: np.ndarray) -> None:
        self._flush_detaches()
        slots = np.concatenate([hi, lo])
        all_idxs = np.concatenate([idxs, idxs])
        signed = np.concatenate([deltas, -deltas])
        jobs, _ = self._sharded_jobs(handle, slots, [all_idxs, signed],
                                     "apply")
        self._dispatch(jobs, mutating=True)
        # Mass bookkeeping -- and any due renormalization -- happens in
        # the parent after the barrier, the same point in the update
        # order as the sequential path's apply_points.
        handle.pool.record_mass(slots, signed)

    def query_rows(self, handle: PoolHandle, slots: np.ndarray,
                   cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        self._flush_detaches()
        jobs, masks = self._sharded_jobs(handle, slots, [cols], "query")
        results = self._dispatch(jobs)
        zeros = np.zeros(slots.shape[0], dtype=bool)
        found = np.full(slots.shape[0], -1, dtype=np.int64)
        for wid, payload in results.items():
            z, f = payload
            zeros[masks[wid]] = z
            found[masks[wid]] = f
        return zeros, found

    def sample_rows(self, handle: PoolHandle, slots: np.ndarray,
                    cols: np.ndarray) -> np.ndarray:
        self._flush_detaches()
        jobs, masks = self._sharded_jobs(handle, slots, [cols], "sample")
        results = self._dispatch(jobs)
        found = np.full(slots.shape[0], -1, dtype=np.int64)
        for wid, payload in results.items():
            found[masks[wid]] = payload
        return found

    def zero_rows(self, handle: PoolHandle,
                  slots: np.ndarray) -> np.ndarray:
        self._flush_detaches()
        jobs, masks = self._sharded_jobs(handle, slots, [], "is_zero")
        results = self._dispatch(jobs)
        zeros = np.zeros(slots.shape[0], dtype=bool)
        for wid, payload in results.items():
            zeros[masks[wid]] = payload
        return zeros

    def query_groups(self, handle: PoolHandle,
                     groups: "List[np.ndarray]",
                     cols: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        self._flush_detaches()
        jobs, masks = self._group_jobs(handle, groups, cols, "gquery")
        results = self._dispatch(jobs)
        zeros = np.zeros(len(groups), dtype=bool)
        found = np.full(len(groups), -1, dtype=np.int64)
        for wid, payload in results.items():
            z, f = payload
            zeros[masks[wid]] = z
            found[masks[wid]] = f
        return zeros, found

    def zero_groups(self, handle: PoolHandle,
                    groups: "List[np.ndarray]") -> np.ndarray:
        self._flush_detaches()
        jobs, masks = self._group_jobs(handle, groups, None, "gzero")
        results = self._dispatch(jobs)
        zeros = np.zeros(len(groups), dtype=bool)
        for wid, payload in results.items():
            zeros[masks[wid]] = payload
        return zeros

    def scan_group(self, handle: PoolHandle, members: np.ndarray,
                   cols: np.ndarray) -> Tuple[bool, np.ndarray]:
        self._flush_detaches()
        # One group, one worker: rotate so consecutive replacement
        # searches spread over the fleet (deterministic round-robin).
        wid = self._scan_cursor % self.num_workers
        self._scan_cursor += 1
        self.last_split = {wid: int(members.shape[0])}
        results = self._dispatch(
            [self._job(wid, "gscan", handle.token, [members, cols])]
        )
        zero, found = results[wid]
        return bool(zero), found

    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pending_detach.clear()
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover
                pass
        for token in list(self._handles):
            self._release_token(token)
        # Rings last: drop our views, then close + unlink each segment
        # (workers only ever held name-based attachments).
        self._ring_views.clear()
        rings, self._rings = self._rings, []
        for shm in rings:
            try:
                shm.close()
            except BufferError:  # pragma: no cover
                pass
            try:
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass

    def describe(self) -> str:
        return (f"{self.name}(workers={self.num_workers}, "
                f"pools={len(self._handles)})")


# ---------------------------------------------------------------------------
# Factory / registry
# ---------------------------------------------------------------------------

_SEQUENTIAL_SINGLETON = SequentialBackend()
_SEQUENTIAL_SINGLETON.cached = True
_SHARED_CACHE: Dict[int, SharedMemoryBackend] = {}
_ALL_BACKENDS: "weakref.WeakSet" = weakref.WeakSet()


def normalize_backend_name(name: str) -> str:
    """Canonical backend name; raises ConfigurationError if unknown."""
    key = name.strip().lower().replace("-", "_")
    key = _ALIASES.get(key)
    if key is None:
        raise ConfigurationError(
            f"unknown execution backend {name!r}; expected one of "
            f"{sorted(set(_ALIASES))}"
        )
    return key


def get_backend(name: Optional[str] = None,
                workers: Optional[int] = None) -> ExecutionBackend:
    """The process-wide backend for ``name`` (env default: sequential).

    Shared-memory backends are cached per worker count so every cluster,
    family, and test in a process shares one worker fleet instead of
    spawning its own.
    """
    if name is None:
        name = os.environ.get(ENV_BACKEND) or SEQUENTIAL
    name = normalize_backend_name(name)
    if name == SEQUENTIAL:
        return _SEQUENTIAL_SINGLETON
    count = workers if workers is not None else default_worker_count()
    backend = _SHARED_CACHE.get(count)
    if backend is None or not backend.usable:
        backend = SharedMemoryBackend(num_workers=count)
        backend.cached = True
        _SHARED_CACHE[count] = backend
    return backend


def resolve_backend(spec=None,
                    workers: Optional[int] = None) -> ExecutionBackend:
    """Coerce a backend spec (None / name / instance) to a backend."""
    if spec is None or isinstance(spec, str):
        return get_backend(spec, workers)
    if isinstance(spec, ExecutionBackend):
        return spec
    raise ConfigurationError(
        f"backend must be a name or an ExecutionBackend, got {spec!r}"
    )


@atexit.register
def _shutdown_backends() -> None:  # pragma: no cover - exit path
    for backend in list(_ALL_BACKENDS):
        try:
            backend.close()
        except Exception:
            pass
