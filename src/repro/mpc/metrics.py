"""Round, communication, and memory accounting for the MPC simulator.

The paper's theorems are statements about three counters:

* **rounds** per update phase (the headline: O(1) for constant ``phi``),
* **total memory** in words across all machines (~O(n)),
* **communication** per round (bounded by total memory).

This module owns those counters.  :class:`ClusterMetrics` is attached to a
:class:`~repro.mpc.simulator.Cluster`; every primitive operation charges
rounds/words into it, every distributed data structure registers its
footprint with it, and :meth:`ClusterMetrics.end_phase` snapshots the
deltas into an immutable :class:`PhaseMetrics` that benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class PhaseMetrics:
    """Resource usage of one update phase (one batch) or one query.

    ``rounds_by_category`` breaks the round count down by primitive kind
    (``broadcast``, ``converge``, ``sort``, ``exchange``, ``local``),
    which the ablation benchmarks use to attribute cost.
    """

    label: str
    batch_size: int
    rounds: int
    messages: int
    words_sent: int
    peak_total_memory: int
    rounds_by_category: Dict[str, int]
    capacity_violations: int
    #: Words of per-shard work attributed to each machine id during the
    #: phase.  Populated when work is genuinely distributed -- real
    #: message deliveries, and batch routing under a parallel execution
    #: backend -- so the ledger shows where work landed instead of
    #: lumping everything on machine 0.
    words_by_machine: Dict[int, int] = field(default_factory=dict)
    #: Fleet-health events that occurred during the phase (worker
    #: ``respawns`` / dispatch ``retries`` / ``degrades`` /
    #: ``faults_injected``), as deltas of the execution backend's
    #: cumulative ``health_counters()``.  Empty on backends with no
    #: supervised fleet and in phases where nothing went wrong.
    backend_events: Dict[str, int] = field(default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Flatten into a dict suitable for table rendering."""
        return {
            "phase": self.label,
            "batch": self.batch_size,
            "rounds": self.rounds,
            "messages": self.messages,
            "words_sent": self.words_sent,
            "peak_total_memory": self.peak_total_memory,
            "violations": self.capacity_violations,
            "fleet": " ".join(f"{k}={v}" for k, v
                              in sorted(self.backend_events.items())),
        }


@dataclass
class CapacityViolation:
    """Record of a machine exceeding a per-round or storage budget."""

    machine_id: int
    what: str  # 'store' | 'send' | 'recv'
    used: int
    capacity: int
    round_index: int


class ClusterMetrics:
    """Mutable ledgers for a cluster; one instance per :class:`Cluster`.

    Memory model: distributed structures *register* their total word
    footprint under a name (``register_memory``); the ledger maintains
    the current sum and its high-water mark.  This measures exactly the
    quantity Theorem 1.1 bounds -- the sum of storage over machines --
    without requiring every algorithm to serialise its state into
    machine stores on every step.
    """

    def __init__(self) -> None:
        self.rounds: int = 0
        self.rounds_by_category: Dict[str, int] = {}
        self.messages: int = 0
        self.words_sent: int = 0
        self.words_by_machine: Dict[int, int] = {}
        #: Cumulative fleet-health events fed in by the cluster from its
        #: execution backend at phase boundaries (see ``begin_phase`` /
        #: ``end_phase`` ``health=`` parameters).
        self.backend_events: Dict[str, int] = {}
        self.violations: List[CapacityViolation] = []
        self._memory: Dict[str, int] = {}
        self.peak_total_memory: int = 0
        # Phase bookkeeping: snapshot of counters at begin_phase().
        self._phase_label: Optional[str] = None
        self._phase_start: Dict[str, object] = {}
        self._phase_peak: int = 0

    # ------------------------------------------------------------------
    # Round / communication charging
    # ------------------------------------------------------------------
    def charge_rounds(self, count: int, category: str) -> None:
        if count < 0:
            raise ValueError("round count must be non-negative")
        self.rounds += count
        self.rounds_by_category[category] = (
            self.rounds_by_category.get(category, 0) + count
        )

    def charge_traffic(self, messages: int, words: int) -> None:
        self.messages += messages
        self.words_sent += words

    def charge_machine_words(self, machine_id: int, words: int) -> None:
        """Attribute ``words`` of delivered/processed data to a machine.

        Fed by real message deliveries (:meth:`Cluster.exchange`) and by
        per-shard batch routing when the execution backend runs shards
        in parallel on their owning machines.
        """
        if words < 0:
            raise ValueError("machine words must be non-negative")
        self.words_by_machine[machine_id] = (
            self.words_by_machine.get(machine_id, 0) + words
        )

    def record_violation(self, violation: CapacityViolation) -> None:
        self.violations.append(violation)

    # ------------------------------------------------------------------
    # Memory registration
    # ------------------------------------------------------------------
    def register_memory(self, name: str, words: int) -> None:
        """Set the current footprint of a named distributed structure."""
        if words < 0:
            raise ValueError(f"negative footprint for {name!r}")
        self._memory[name] = words
        self._update_peak()

    def release_memory(self, name: str) -> None:
        self._memory.pop(name, None)

    @property
    def total_memory(self) -> int:
        """Current total words across all registered structures."""
        return sum(self._memory.values())

    def memory_breakdown(self) -> Dict[str, int]:
        return dict(self._memory)

    def _update_peak(self) -> None:
        total = self.total_memory
        if total > self.peak_total_memory:
            self.peak_total_memory = total

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def begin_phase(self, label: str,
                    health: Optional[Dict[str, int]] = None) -> None:
        """Open a phase.  ``health`` is the execution backend's
        cumulative ``health_counters()`` at phase start; ``end_phase``
        diffs against it to attribute fleet events to the phase."""
        if self._phase_label is not None:
            raise RuntimeError(
                f"phase {self._phase_label!r} still open; nested phases "
                "are not supported"
            )
        self._phase_label = label
        self._phase_start = {
            "rounds": self.rounds,
            "messages": self.messages,
            "words_sent": self.words_sent,
            "violations": len(self.violations),
            "by_cat": dict(self.rounds_by_category),
            "by_machine": dict(self.words_by_machine),
            "peak": self.total_memory,
            "health": dict(health or {}),
        }
        # Peak within the phase starts from the current footprint.
        self._phase_peak = self.total_memory

    def note_memory_peak(self) -> None:
        """Fold the current footprint into the open phase's peak."""
        if self._phase_label is not None:
            self._phase_peak = max(self._phase_peak, self.total_memory)
        self._update_peak()

    def end_phase(self, batch_size: int = 0,
                  health: Optional[Dict[str, int]] = None) -> PhaseMetrics:
        if self._phase_label is None:
            raise RuntimeError("no phase is open")
        start = self._phase_start
        health_start = start.get("health", {})
        health_delta = {
            key: value - health_start.get(key, 0)  # type: ignore[union-attr]
            for key, value in (health or {}).items()
            if value - health_start.get(key, 0) > 0  # type: ignore[union-attr]
        }
        for key, value in health_delta.items():
            self.backend_events[key] = (
                self.backend_events.get(key, 0) + value
            )
        by_cat_delta = {
            cat: count - start["by_cat"].get(cat, 0)  # type: ignore[union-attr]
            for cat, count in self.rounds_by_category.items()
            if count - start["by_cat"].get(cat, 0) > 0  # type: ignore[union-attr]
        }
        by_machine_delta = {
            mid: words - start["by_machine"].get(mid, 0)  # type: ignore[union-attr]
            for mid, words in self.words_by_machine.items()
            if words - start["by_machine"].get(mid, 0) > 0  # type: ignore[union-attr]
        }
        snapshot = PhaseMetrics(
            label=self._phase_label,
            batch_size=batch_size,
            rounds=self.rounds - start["rounds"],  # type: ignore[operator]
            messages=self.messages - start["messages"],  # type: ignore[operator]
            words_sent=self.words_sent - start["words_sent"],  # type: ignore[operator]
            peak_total_memory=max(self._phase_peak, self.total_memory),
            rounds_by_category=by_cat_delta,
            capacity_violations=len(self.violations) - start["violations"],  # type: ignore[operator]
            words_by_machine=by_machine_delta,
            backend_events=health_delta,
        )
        self._phase_label = None
        self._phase_start = {}
        return snapshot
