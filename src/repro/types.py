"""Shared value types: edge updates, batches, and solution containers.

The whole library speaks a single update vocabulary defined here.  An
:class:`Update` is an (op, u, v, weight) record; a batch is a sequence of
updates applied in one MPC *phase* (paper, Section 1.2).  Helper
constructors :func:`ins` and :func:`dele` keep call-sites terse.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

Edge = Tuple[int, int]


def canonical(u: int, v: int) -> Edge:
    """Return the canonical (min, max) representation of an undirected edge."""
    if u == v:
        raise ValueError(f"self-loop ({u}, {v}) is not a valid edge")
    return (u, v) if u < v else (v, u)


class Op(enum.Enum):
    """Kind of a single edge update."""

    INSERT = "+"
    DELETE = "-"


@dataclass(frozen=True)
class Update:
    """A single edge insertion or deletion, optionally weighted.

    Weights are only meaningful to the minimum-spanning-forest
    algorithms; connectivity and matching ignore them.
    """

    op: Op
    u: int
    v: int
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.u == self.v:
            raise ValueError(f"self-loop update on vertex {self.u}")

    @property
    def edge(self) -> Edge:
        """Canonical (min, max) endpoint pair."""
        return canonical(self.u, self.v)

    @property
    def is_insert(self) -> bool:
        return self.op is Op.INSERT

    @property
    def is_delete(self) -> bool:
        return self.op is Op.DELETE

    def inverse(self) -> "Update":
        """The update that undoes this one (used by churn generators)."""
        other = Op.DELETE if self.op is Op.INSERT else Op.INSERT
        return Update(other, self.u, self.v, self.weight)


def ins(u: int, v: int, weight: float = 1.0) -> Update:
    """Shorthand for an insertion update."""
    return Update(Op.INSERT, u, v, weight)


def dele(u: int, v: int, weight: float = 1.0) -> Update:
    """Shorthand for a deletion update."""
    return Update(Op.DELETE, u, v, weight)


class Batch(Sequence[Update]):
    """An ordered batch of updates applied within a single phase.

    The paper assumes w.l.o.g. that a batch is processed insertions
    first, then deletions (Section 1.2); :meth:`split` provides that
    partition while preserving the original order inside each part.
    """

    __slots__ = ("_updates",)

    def __init__(self, updates: Iterable[Update]):
        self._updates: List[Update] = list(updates)

    def __len__(self) -> int:
        return len(self._updates)

    def __getitem__(self, idx):  # type: ignore[override]
        return self._updates[idx]

    def __iter__(self) -> Iterator[Update]:
        return iter(self._updates)

    def __repr__(self) -> str:
        return f"Batch({len(self._updates)} updates)"

    @property
    def insertions(self) -> List[Update]:
        return [up for up in self._updates if up.is_insert]

    @property
    def deletions(self) -> List[Update]:
        return [up for up in self._updates if up.is_delete]

    def split(self) -> Tuple["Batch", "Batch"]:
        """Partition into (insertions, deletions) sub-batches."""
        return Batch(self.insertions), Batch(self.deletions)


@dataclass
class ForestSolution:
    """A (spanning or minimum-spanning) forest reported by a query.

    ``edges`` hold canonical endpoint pairs; ``weights`` is parallel to
    ``edges`` for weighted problems and empty otherwise.
    """

    n: int
    edges: List[Edge]
    weights: List[float]

    @property
    def total_weight(self) -> float:
        return float(sum(self.weights))

    @property
    def num_components(self) -> int:
        return self.n - len(self.edges)


@dataclass
class MatchingSolution:
    """A matching reported by a query, with the size estimate if any."""

    edges: List[Edge]
    size_estimate: Optional[float] = None

    @property
    def size(self) -> int:
        return len(self.edges)
