"""mpc-streaming: streaming graph algorithms in the MPC model.

Reproduction of Czumaj, Mishra, Mukherjee, *Streaming Graph Algorithms
in the Massively Parallel Computation Model* (PODC 2024).  See README.md
for the tour and DESIGN.md for the system inventory.
"""

from repro._version import __version__
from repro.types import Batch, ForestSolution, MatchingSolution, Op, Update, dele, ins

__all__ = [
    "__version__",
    "Batch",
    "ForestSolution",
    "MatchingSolution",
    "Op",
    "Update",
    "dele",
    "ins",
]
