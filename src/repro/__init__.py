"""mpc-streaming: streaming graph algorithms in the MPC model.

Reproduction of Czumaj, Mishra, Mukherjee, *Streaming Graph Algorithms
in the Massively Parallel Computation Model* (PODC 2024).  See README.md
for the tour and DESIGN.md for the system inventory.

The one-stop serving surface is :class:`repro.session.GraphSession`:
one cluster and execution backend multiplexing every maintained
algorithm over a shared update stream, with auto-batching,
checkpoint/restore, and deterministic teardown.  The standalone
algorithm classes remain in :mod:`repro.core` for single-task use.
"""

from repro._version import __version__
from repro.errors import (
    BatchTooLargeError,
    ConfigurationError,
    InvalidUpdateError,
    QueryError,
    ReproError,
    SketchError,
    SketchFailureError,
)
from repro.session import GraphSession, SessionPhase
from repro.types import Batch, ForestSolution, MatchingSolution, Op, Update, dele, ins

__all__ = [
    "__version__",
    "Batch",
    "ForestSolution",
    "MatchingSolution",
    "Op",
    "Update",
    "dele",
    "ins",
    "GraphSession",
    "SessionPhase",
    "ReproError",
    "ConfigurationError",
    "BatchTooLargeError",
    "InvalidUpdateError",
    "QueryError",
    "SketchError",
    "SketchFailureError",
]
