"""Union-find and a recompute-from-scratch dynamic connectivity oracle.

These are *test oracles and comparators*, not MPC algorithms: plain
sequential structures holding the whole graph.  The stress tests compare
every maintained solution against
:class:`DynamicConnectivityOracle`, and the benchmarks use it to verify
solution quality cheaply.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.types import Edge, Update, canonical


class UnionFind:
    """Path-halving union-find over ``0 .. n-1``."""

    def __init__(self, n: int):
        self.parent = list(range(n))
        self.size = [1] * n
        self.components = n

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        if self.size[ra] < self.size[rb]:
            ra, rb = rb, ra
        self.parent[rb] = ra
        self.size[ra] += self.size[rb]
        self.components -= 1
        return True

    def connected(self, a: int, b: int) -> bool:
        return self.find(a) == self.find(b)


class DynamicConnectivityOracle:
    """Exact dynamic connectivity by storing the graph and recomputing.

    Component labels are recomputed lazily (after any deletion) with a
    BFS sweep; insertions fold into the cached union-find.  O(n + m) per
    recompute -- fine for oracles.
    """

    def __init__(self, n: int):
        self.n = n
        self.adj: Dict[int, Set[int]] = {v: set() for v in range(n)}
        self._uf: Optional[UnionFind] = UnionFind(n)
        self._num_edges = 0

    # ------------------------------------------------------------------
    def apply(self, update: Update) -> None:
        u, v = update.edge
        if update.is_insert:
            self.insert(u, v)
        else:
            self.delete(u, v)

    def apply_batch(self, updates: Iterable[Update]) -> None:
        batch = list(updates)
        for up in batch:
            if up.is_insert:
                self.insert(*up.edge)
        for up in batch:
            if up.is_delete:
                self.delete(*up.edge)

    def insert(self, u: int, v: int) -> None:
        if v in self.adj[u]:
            raise ValueError(f"duplicate insert ({u}, {v})")
        self.adj[u].add(v)
        self.adj[v].add(u)
        self._num_edges += 1
        if self._uf is not None:
            self._uf.union(u, v)

    def delete(self, u: int, v: int) -> None:
        if v not in self.adj[u]:
            raise ValueError(f"delete of missing edge ({u}, {v})")
        self.adj[u].discard(v)
        self.adj[v].discard(u)
        self._num_edges -= 1
        self._uf = None  # labels stale; recompute on demand

    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        return self._num_edges

    def edges(self) -> List[Edge]:
        out = []
        for u, neighbors in self.adj.items():
            for v in neighbors:
                if u < v:
                    out.append((u, v))
        return sorted(out)

    def _refresh(self) -> UnionFind:
        if self._uf is None:
            uf = UnionFind(self.n)
            for u, neighbors in self.adj.items():
                for v in neighbors:
                    if u < v:
                        uf.union(u, v)
            self._uf = uf
        return self._uf

    def connected(self, u: int, v: int) -> bool:
        return self._refresh().connected(u, v)

    def num_components(self) -> int:
        return self._refresh().components

    def component_sets(self) -> List[Tuple[int, ...]]:
        uf = self._refresh()
        groups: Dict[int, List[int]] = {}
        for v in range(self.n):
            groups.setdefault(uf.find(v), []).append(v)
        return sorted(tuple(sorted(g)) for g in groups.values())
