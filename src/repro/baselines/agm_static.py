"""Baseline: pure AGM sketching, no maintained forest (Section 4.1).

This is the algorithm the paper's contribution is measured against.
Updates cost O(1) rounds (sketches are linear), total memory is the
same ~O(n log^3 n) -- but a *query* must run the full AGM contraction,
O(log n) supernode-halving iterations each costing MPC rounds, because
nothing but the sketches is stored.  EXP-3 plots this query cost against
:class:`~repro.core.connectivity.MPCConnectivity`'s O(1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.api import BatchDynamicAlgorithm
from repro.mpc.config import MPCConfig
from repro.mpc.metrics import PhaseMetrics
from repro.mpc.simulator import Cluster
from repro.sketch.graph_sketch import SketchFamily
from repro.types import Edge, ForestSolution, Update


class AGMStaticConnectivity(BatchDynamicAlgorithm):
    """Sketch-only dynamic connectivity with O(log n)-round queries."""

    name = "agm-static"

    def __init__(self, config: MPCConfig, cluster: Optional[Cluster] = None,
                 columns: Optional[int] = None,
                 batch_limit: Optional[int] = None, backend=None):
        super().__init__(config, cluster=cluster, batch_limit=batch_limit,
                         backend=backend)
        if columns is None:
            columns = config.sketch_columns
        self.family = SketchFamily(config.n, columns=columns,
                                   rng=self.cluster.rng,
                                   backend=self.cluster.backend)
        self.sketches = {v: self.family.new_vertex_sketch(v)
                         for v in range(config.n)}
        self.stats = {"query_iterations": 0, "sketch_failures": 0}
        self._register_memory()

    # ------------------------------------------------------------------
    def _process_batch(self, inserts: List[Update],
                       deletes: List[Update]) -> None:
        updates = inserts + deletes
        self.cluster.charge_broadcast(words=max(1, len(updates)),
                                      category="sketch-update")
        self.family.apply_updates_bulk(updates)

    # ------------------------------------------------------------------
    def query_with_metrics(self) -> Tuple[ForestSolution, PhaseMetrics]:
        """Run the O(log n)-round AGM contraction from scratch.

        Every halving iteration is a genuine MPC super-step here: the
        supernode sketches must be merged across machines (converge) and
        the recovered edges exchanged, so each iteration charges rounds
        -- unlike the maintained-forest algorithm, whose query is one
        sort.
        """
        self.cluster.begin_phase(f"{self.name}-query")
        solution = self._agm_forest()
        metrics = self.cluster.end_phase(batch_size=0)
        return solution, metrics

    def query_spanning_forest(self) -> ForestSolution:
        solution, _ = self.query_with_metrics()
        return solution

    def _agm_forest(self) -> ForestSolution:
        n = self.n
        leader: Dict[int, int] = {v: v for v in range(n)}

        def find(x: int) -> int:
            while leader[x] != x:
                leader[x] = leader[leader[x]]
                x = leader[x]
            return x

        # Supernodes are *membership* lists over the family pool's
        # vertex rows, starting as singletons.  Every halving iteration
        # re-merges each live supernode's member rows through the
        # execution backend -- exactly the per-iteration converge-cast
        # the model charges -- and the parent only ever sees the
        # recovered edges, never materialised supernode cells.
        members: Dict[int, np.ndarray] = {
            v: np.array([v], dtype=np.int64) for v in range(n)
        }
        forest_edges: List[Edge] = []
        iterations = 0
        for column in range(self.family.columns):
            roots = sorted(r for r in members if find(r) == r)
            # One halving iteration: merge supernode sketches (converge
            # tree), query every live supernode *in parallel* -- one
            # fused zero-test + recovery pass over the shipped
            # memberships -- and route the recovered edges (one
            # exchange).  Gathering all samples before contracting is
            # the faithful MPC super-step: within an iteration every
            # machine queries the sketch state from the iteration's
            # start.
            zeros, sampled = self.family.query_iteration_groups(
                [members[r] for r in roots], column
            )
            if zeros.all():
                break
            iterations += 1
            live_count = int((~zeros).sum())
            self.cluster.charge_converge(
                words=self.family.words_per_vertex, category="query-merge"
            )
            self.cluster.charge_exchange(
                messages=live_count, words=live_count,
                category="query-route",
            )
            for root, edge in zip(roots, sampled):
                if edge is None:
                    continue
                a, b = edge
                ra, rb = find(a), find(b)
                if ra == rb:
                    continue
                leader[ra] = rb
                members[rb] = np.concatenate((members[rb], members[ra]))
                del members[ra]
                forest_edges.append((a, b))
        self.stats["query_iterations"] = iterations
        remaining = sorted(r for r in members if find(r) == r)
        zero = self.family.cuts_empty_groups(
            [members[r] for r in remaining]
        )
        leftovers = [r for r, is_z in zip(remaining, zero) if not is_z]
        self.stats["sketch_failures"] += len(leftovers)
        return ForestSolution(n=n, edges=sorted(forest_edges), weights=[])

    def connected(self, u: int, v: int) -> bool:
        """Connectivity answered by running a full query (the point)."""
        solution, _ = self.query_with_metrics()
        uf: Dict[int, int] = {x: x for x in range(self.n)}

        def find(x: int) -> int:
            while uf[x] != x:
                uf[x] = uf[uf[x]]
                x = uf[x]
            return x

        for a, b in solution.edges:
            uf[find(a)] = find(b)
        return find(u) == find(v)

    # ------------------------------------------------------------------
    def _register_memory(self) -> None:
        self.cluster.metrics.register_memory(
            "sketches", self.n * self.family.words_per_vertex
        )
