"""Baselines and oracles: the comparators the paper's evaluation needs.

* :class:`AGMStaticConnectivity` -- sketch-only, O(log n)-round queries
  (the Section 4.1 starting point).
* :class:`FullGraphConnectivity` -- prior-work Theta(n+m) total memory
  ([ILMP19]/[NO21] regime).
* :class:`DynamicConnectivityOracle` / :class:`UnionFind` -- exact test
  oracles.
* :mod:`repro.baselines.matching_offline` -- networkx-based exact
  comparators for quality measurements.
"""

from repro.baselines.agm_static import AGMStaticConnectivity
from repro.baselines.full_graph import FullGraphConnectivity
from repro.baselines.matching_offline import (
    component_sets,
    greedy_matching_size,
    is_bipartite,
    maximum_matching_size,
    msf_weight,
)
from repro.baselines.union_find import DynamicConnectivityOracle, UnionFind

__all__ = [
    "AGMStaticConnectivity",
    "FullGraphConnectivity",
    "component_sets",
    "greedy_matching_size",
    "is_bipartite",
    "maximum_matching_size",
    "msf_weight",
    "DynamicConnectivityOracle",
    "UnionFind",
]
