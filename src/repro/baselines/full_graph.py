"""Baseline: full-graph dynamic MPC connectivity ([ILMP19]/[NO21] regime).

The prior-work setting the paper's total-memory contribution is measured
against: the whole graph is stored across the machines (Theta(n + m)
total memory), updates and queries are fast -- the *memory* is the cost.
EXP-2 plots this baseline's footprint growing linearly in m while the
paper's algorithm stays ~O(n).

The maintained spanning forest is recomputed incrementally: insertions
union into a forest, deletions of tree edges trigger a replacement scan
over the stored adjacency (the luxury of having the graph).  Round
charges follow the constant-round claims of the baseline papers.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.core.api import BatchDynamicAlgorithm
from repro.core.components import ComponentIds
from repro.euler.distributed import DistributedEulerForest
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import Cluster
from repro.types import Edge, ForestSolution, Update, canonical


class FullGraphConnectivity(BatchDynamicAlgorithm):
    """Batch-dynamic connectivity storing the whole graph."""

    name = "full-graph"

    def __init__(self, config: MPCConfig, cluster: Optional[Cluster] = None,
                 batch_limit: Optional[int] = None):
        super().__init__(config, cluster=cluster, batch_limit=batch_limit)
        self.adj: Dict[int, Set[int]] = {v: set() for v in range(config.n)}
        self.forest = DistributedEulerForest(config.n)
        self.components = ComponentIds(config.n)
        self._register_memory()

    # ------------------------------------------------------------------
    def _process_batch(self, inserts: List[Update],
                       deletes: List[Update]) -> None:
        if inserts:
            self.cluster.charge_broadcast(words=len(inserts),
                                          category="batch")
            links = []
            for up in inserts:
                u, v = up.edge
                self.adj[u].add(v)
                self.adj[v].add(u)
                if not self.forest.connected(u, v):
                    # Defer conflicts to a local union-find pass.
                    links.append((u, v))
            chosen = self._forest_subset(links)
            if chosen:
                report = self.forest.batch_link(chosen)
                self.cluster.charge_broadcast(
                    words=max(1, report.messages), category="tour-update"
                )
                for tid in report.new_tours:
                    self.components.relabel_min(
                        self.forest.tour_vertices(tid)
                    )
        if deletes:
            self.cluster.charge_broadcast(words=len(deletes),
                                          category="batch")
            tree_edges = []
            for up in deletes:
                u, v = up.edge
                self.adj[u].discard(v)
                self.adj[v].discard(u)
                if self.forest.has_edge(u, v):
                    tree_edges.append((u, v))
            if tree_edges:
                cut_report = self.forest.batch_cut(tree_edges)
                self.cluster.charge_broadcast(
                    words=max(1, cut_report.messages),
                    category="tour-update",
                )
                self._reconnect(cut_report.new_tours)

    def _forest_subset(self, links: List[Edge]) -> List[Edge]:
        leader: Dict[int, int] = {}

        def find(x: int) -> int:
            while leader.setdefault(x, x) != x:
                leader[x] = leader[leader[x]]
                x = leader[x]
            return x

        chosen = []
        for u, v in links:
            ru, rv = find(self.forest.tree_id(u)), find(self.forest.tree_id(v))
            if ru != rv:
                leader[ru] = rv
                chosen.append((u, v))
        return chosen

    def _reconnect(self, fragment_tids: List[int]) -> None:
        """Replacement scan over the stored adjacency (BFS per fragment).

        Having the graph makes this easy -- the scan is over local
        machine state, charged as one constant-round super-step per the
        baseline papers' claims.
        """
        self.cluster.charge_local(category="replacement-scan")
        links: List[Edge] = []
        for tid in fragment_tids:
            if not self.forest.has_tour(tid):
                continue
            for x in sorted(self.forest.tour_vertices(tid)):
                for y in sorted(self.adj[x]):
                    if self.forest.tree_id(y) != self.forest.tree_id(x):
                        links.append((x, y))
        chosen = self._forest_subset(links)
        while chosen:
            report = self.forest.batch_link(chosen)
            self.cluster.charge_broadcast(words=max(1, report.messages),
                                          category="tour-update")
            # Re-scan: merging fragments can expose further links.
            links = []
            for tid in report.new_tours:
                for x in sorted(self.forest.tour_vertices(tid)):
                    for y in sorted(self.adj[x]):
                        if self.forest.tree_id(y) != self.forest.tree_id(x):
                            links.append((x, y))
            chosen = self._forest_subset(links)
        touched = {self.forest.tree_id(v) for v in range(self.n)}
        for tid in touched:
            self.components.relabel_min(self.forest.tour_vertices(tid))

    # ------------------------------------------------------------------
    def connected(self, u: int, v: int) -> bool:
        return self.forest.connected(u, v)

    def num_components(self) -> int:
        return self.forest.num_components()

    def query_spanning_forest(self) -> ForestSolution:
        return ForestSolution(n=self.n, edges=sorted(self.forest.all_edges()),
                              weights=[])

    # ------------------------------------------------------------------
    def _register_memory(self) -> None:
        m = sum(len(neighbors) for neighbors in self.adj.values()) // 2
        metrics = self.cluster.metrics
        # Theta(n + m): the stored graph dominates.
        metrics.register_memory("graph", self.n + 2 * m)
        metrics.register_memory("forest", self.forest.words)
        metrics.register_memory("component-ids", self.components.words)
