"""Offline comparators computed with networkx (quality measurement only).

The benchmarks measure approximation ratios against these exact/offline
solutions; they are not part of any maintained algorithm.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import networkx as nx

from repro.types import Edge


def maximum_matching_size(n: int, edges: Iterable[Edge]) -> int:
    """Exact maximum-cardinality matching size (blossom algorithm)."""
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    return len(nx.max_weight_matching(graph, maxcardinality=True))


def greedy_matching_size(edges: Iterable[Edge]) -> int:
    """Sequential greedy maximal matching (the 2-approx yardstick)."""
    matched = set()
    size = 0
    for u, v in edges:
        if u not in matched and v not in matched:
            matched.add(u)
            matched.add(v)
            size += 1
    return size


def msf_weight(n: int, weighted_edges: Iterable[Tuple[int, int, float]]
               ) -> float:
    """Exact minimum spanning forest weight."""
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for u, v, w in weighted_edges:
        graph.add_edge(u, v, weight=w)
    return float(sum(
        data["weight"]
        for _, _, data in nx.minimum_spanning_edges(graph, data=True)
    ))


def component_sets(n: int, edges: Iterable[Edge]) -> List[Tuple[int, ...]]:
    """Sorted connected components of the (n, edges) graph."""
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    return sorted(tuple(sorted(c)) for c in nx.connected_components(graph))


def is_bipartite(n: int, edges: Iterable[Edge]) -> bool:
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    graph.add_edges_from(edges)
    return nx.is_bipartite(graph)
