"""Analysis helpers: theoretical bounds and table rendering."""

from repro.analysis.tables import print_table, ratio, render_table
from repro.analysis.theory import (
    agm_query_rounds_bound,
    batch_bound,
    connectivity_total_memory_bound,
    full_graph_total_memory_bound,
    log2p,
    matching_memory_bound_dynamic,
    matching_memory_bound_insert_only,
    msf_approx_memory_bound,
    rounds_bound_per_batch,
    size_estimation_memory_bound,
)

__all__ = [
    "print_table",
    "ratio",
    "render_table",
    "agm_query_rounds_bound",
    "batch_bound",
    "connectivity_total_memory_bound",
    "full_graph_total_memory_bound",
    "log2p",
    "matching_memory_bound_dynamic",
    "matching_memory_bound_insert_only",
    "msf_approx_memory_bound",
    "rounds_bound_per_batch",
    "size_estimation_memory_bound",
]
