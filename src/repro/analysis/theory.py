"""Theoretical resource bounds, as checkable formulas.

The benchmarks print measured values next to these bounds so every
EXPERIMENTS.md row is a direct theorem-vs-measurement comparison.  All
constants are explicit arguments: the theorems hide them in O(.), the
experiments sweep them.
"""

from __future__ import annotations

import math


def log2p(n: int) -> float:
    """log2(n) clamped below at 1 (polylog conventions for tiny n)."""
    return max(1.0, math.log2(max(2, n)))


def connectivity_total_memory_bound(n: int, c: float = 12.0) -> float:
    """Theorem 1.1: ~O(n) = c * n * log^3 n words (sketches dominate:
    n vertices x O(log n) columns x O(log^2 n) cells)."""
    return c * n * log2p(n) ** 3


def full_graph_total_memory_bound(n: int, m: int, c: float = 4.0) -> float:
    """Prior work ([ILMP19]/[NO21]): Theta(n + m)."""
    return c * (n + m)


def rounds_bound_per_batch(phi: float, c: float = 60.0) -> float:
    """Theorem 6.7: O(1/phi) rounds per update batch."""
    return c / phi


def agm_query_rounds_bound(n: int, c: float = 3.0) -> float:
    """AGM static query: O(log n) halving iterations."""
    return c * log2p(n)


def batch_bound(n: int, phi: float) -> int:
    """Theorem 6.7's batch size: O(n^phi / log^3 n)."""
    return max(1, int(n ** phi / log2p(n) ** 3))


def matching_memory_bound_insert_only(n: int, alpha: float,
                                      c: float = 4.0) -> float:
    """Theorem 1.3: ~O(n / alpha) for insertion-only matching."""
    return c * n / alpha * log2p(n)


def matching_memory_bound_dynamic(n: int, alpha: float,
                                  c: float = 60.0) -> float:
    """Theorem 1.3: ~O(max(n^2/alpha^3, n/alpha)) for dynamic matching."""
    return c * max(n * n / alpha ** 3, n / alpha) * log2p(n)


def size_estimation_memory_bound(n: int, alpha: float, dynamic: bool,
                                 c: float = 60.0) -> float:
    """Theorem 1.3 (estimation): ~O(n/alpha^2) / ~O(n^2/alpha^4).

    The dynamic tester stores an O(log^3 n)-bit L0-sampler per group
    pair, so its ~O(.) hides a log^3 factor on top of the pair count.
    """
    if dynamic:
        return c * (n / alpha ** 2) ** 2 * log2p(n) ** 3
    return c * n / alpha ** 2 * log2p(n)


def msf_approx_memory_bound(n: int, eps: float, max_weight: float,
                            c: float = 12.0) -> float:
    """Theorem 1.2(ii): one connectivity instance per weight class."""
    levels = max(1, math.ceil(math.log(max_weight, 1 + eps))) + 1
    return levels * connectivity_total_memory_bound(n, c)
