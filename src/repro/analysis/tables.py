"""Paper-style table rendering for the benchmark harness.

Benchmarks accumulate dict rows and print them through
:func:`render_table`, producing the aligned, monospaced tables recorded
in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def _fmt(value: object) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.2f}"
    return str(value)


def render_table(rows: Sequence[Dict[str, object]],
                 columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render dict rows as an aligned text table."""
    if not rows:
        return f"{title or 'table'}: (no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    header = [str(c) for c in columns]
    body = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(line[i]) for line in body))
        for i in range(len(header))
    ]
    sep = "-+-".join("-" * w for w in widths)
    out_lines: List[str] = []
    if title:
        out_lines.append(title)
    out_lines.append(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
    out_lines.append(sep)
    for line in body:
        out_lines.append(
            " | ".join(cell.ljust(w) for cell, w in zip(line, widths))
        )
    return "\n".join(out_lines)


def print_table(rows: Sequence[Dict[str, object]],
                columns: Optional[Sequence[str]] = None,
                title: Optional[str] = None) -> None:
    print()
    print(render_table(rows, columns=columns, title=title))
    print()


def ratio(measured: float, bound: float) -> float:
    """measured / bound -- a row passes its theorem check when <= 1."""
    if bound <= 0:
        return float("inf")
    return measured / bound
