"""Unified serving layer: many maintained algorithms, one stream.

:class:`GraphSession` is the package's front door for multi-algorithm
deployments -- one cluster, one execution backend, one stream
validator, uniform ingestion/query surfaces, deterministic teardown,
and checkpoint/restore.  See :mod:`repro.session.graph_session`.
"""

from repro.session.graph_session import (
    CHECKPOINT_FORMAT,
    GraphSession,
    SessionPhase,
)

__all__ = [
    "CHECKPOINT_FORMAT",
    "GraphSession",
    "SessionPhase",
]
