"""`GraphSession`: one front door for every maintained algorithm.

The paper's phase model (Section 1.2) maintains *a* solution per batch;
a deployment serving many query types wants *several* maintained
solutions -- connectivity, MSF, bipartiteness, matching -- over the
**same** update stream.  [CMM24] frames all of them as sketch-maintained
queries over one stream, and the batch-dynamic framework of [NO20]
treats algorithms as pluggable consumers of a shared batch pipeline.
Driving the standalone classes side by side duplicates the expensive
shared plumbing: each builds its own :class:`~repro.mpc.simulator.
Cluster`, resolves its own execution backend, validates the stream
independently, and charges the batch-routing step once per instance.

:class:`GraphSession` multiplexes instead.  It constructs **one**
cluster (one backend worker fleet, one vertex partition, one metrics
ledger) and **one** :class:`~repro.core.api.UpdateValidator`, then
registers each requested task against them through
:meth:`~repro.core.api.BatchDynamicAlgorithm.attach`.  Per session
phase, stream validation and the ``route-updates`` gather happen once;
each task then processes the batch under its own phase label on the
shared ledger.

Parity guarantee
----------------
Every task answers **bit-identically** to its standalone class fed the
same batches.  Two mechanisms make that exact rather than approximate:

* the cluster's construction-randomness stream is :meth:`~repro.mpc.
  simulator.Cluster.reseed`-reset before each member is constructed, so
  each member draws exactly the randomness its standalone instance
  (fresh cluster, same config) would;
* validation and routing are pure accounting -- skipping the per-task
  copies changes no maintained state.

``tests/test_session.py`` pins this down on both execution backends.

Checkpoint / restore
--------------------
:meth:`GraphSession.checkpoint` serialises the full maintained state --
sketch pools (pool-backed cell views survive as views), spawn-safe
randomness params (``SamplerRandomness.from_params``), validator edge
set, forests, metrics, and generator states -- to one file.
:meth:`GraphSession.restore` rebuilds a live session on any backend;
answers, and all further ingestion, match the uninterrupted run.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Union

import repro.core  # noqa: F401  (importing defines every task's class,
#                    which is what populates the session task registry)
from repro._version import __version__
from repro.analysis.tables import print_table, render_table
from repro.core.api import (
    BatchDynamicAlgorithm,
    UpdateValidator,
    charge_route_updates,
)
from repro.errors import (
    BatchTooLargeError,
    ConfigurationError,
    InvalidUpdateError,
    QueryError,
)
from repro.mpc.config import MPCConfig
from repro.mpc.metrics import PhaseMetrics
from repro.mpc.simulator import Cluster
from repro.streams.batching import iter_batches
from repro.types import Batch, Edge, ForestSolution, MatchingSolution, Update, ins

#: On-disk checkpoint format version (bumped on layout changes).
CHECKPOINT_FORMAT = 1

#: Anything `ingest` coerces into an :class:`Update`.
UpdateLike = Union[Update, tuple]


@dataclass
class SessionPhase:
    """Resource record of one session phase (one shared batch).

    ``route`` is the once-per-phase shared work (stream validation is
    free in the model; the batch-routing gather is the charged part);
    ``per_task`` holds each task's own phase snapshot.
    """

    index: int
    batch_size: int
    route: PhaseMetrics
    per_task: Dict[str, PhaseMetrics] = field(default_factory=dict)

    @property
    def rounds(self) -> int:
        """Model rounds for the phase: routing + the slowest task (the
        tasks run on disjoint machine groups, i.e. in parallel)."""
        task_rounds = max((m.rounds for m in self.per_task.values()),
                          default=0)
        return self.route.rounds + task_rounds


def _as_update(item: UpdateLike) -> Update:
    """Coerce one ingestion item to an :class:`Update`.

    Accepted shapes: an :class:`Update` (passes through, the only way
    to express deletions), an ``(u, v)`` pair (insertion, unit weight),
    or an ``(u, v, weight)`` triple (weighted insertion).
    """
    if isinstance(item, Update):
        return item
    if isinstance(item, (tuple, list)):
        if len(item) == 2:
            return ins(int(item[0]), int(item[1]))
        if len(item) == 3:
            return ins(int(item[0]), int(item[1]), float(item[2]))
    raise InvalidUpdateError(
        f"cannot interpret {item!r} as an update; expected an Update, "
        "a (u, v) pair, or a (u, v, weight) triple"
    )


def _coerce_stream(updates: Iterable[UpdateLike]) -> Iterator[Update]:
    """Lazily coerce an ingestion stream (generators stay generators)."""
    for item in updates:
        yield _as_update(item)


class GraphSession:
    """Maintain several algorithms over one update stream.

    Parameters
    ----------
    n:
        Number of vertices; alternatively pass a full ``config``.
    tasks:
        The algorithms to maintain: an iterable of task names from the
        registry (``"connectivity"``, ``"msf"``, ``"msf_approx"``,
        ``"bipartiteness"``, ``"matching"``, ...) or a mapping
        ``{name: constructor_kwargs}`` for per-task options
        (e.g. ``{"msf_approx": {"eps": 0.1}}``).
    config:
        Explicit :class:`~repro.mpc.config.MPCConfig`; built from
        ``n`` / ``phi`` / ``seed`` when omitted.
    backend, backend_workers:
        Execution backend for the shared cluster (name, instance, or
        ``None`` for the config / environment default).  One worker
        fleet serves every task.
    batch_size:
        Auto-batching size for :meth:`ingest`; defaults to (and may
        not exceed) the model's per-phase batch bound.

    The session is a context manager; :meth:`close` tears the backend
    down deterministically.
    """

    def __init__(self, n: Optional[int] = None,
                 tasks: Union[Iterable[str], Dict[str, dict]] = ("connectivity",),
                 config: Optional[MPCConfig] = None, backend=None,
                 backend_workers: Optional[int] = None, *,
                 phi: float = 0.5, seed: int = 0,
                 batch_size: Optional[int] = None):
        if config is None:
            if n is None:
                raise ConfigurationError("pass n= or a full config=")
            config = MPCConfig(
                n=n, phi=phi, seed=seed,
                backend=backend if isinstance(backend, str) else None,
                backend_workers=backend_workers,
            )
        elif n is not None and n != config.n:
            raise ConfigurationError(
                f"n={n} conflicts with config.n={config.n}"
            )
        self.config = config
        if backend_workers is not None and (backend is None
                                            or isinstance(backend, str)):
            # Honour an explicit worker count even alongside an
            # explicit config= (an instance backend fixes its own).
            from repro.mpc.backend import resolve_backend

            backend = resolve_backend(
                backend if backend is not None else config.backend,
                backend_workers,
            )
        self.cluster = Cluster(config, backend=backend)
        self.validator = UpdateValidator(track=True)
        self._algs: Dict[str, BatchDynamicAlgorithm] = {}
        if isinstance(tasks, str):
            tasks = (tasks,)  # a bare name, not an iterable of chars
        if isinstance(tasks, dict):
            task_options = dict(tasks)
        else:
            names = list(tasks)
            if len(set(names)) != len(names):
                raise ConfigurationError(
                    f"duplicate task names in {names!r}"
                )
            task_options = {name: {} for name in names}
        if not task_options:
            raise ConfigurationError("need at least one task")
        for task, options in task_options.items():
            cls = BatchDynamicAlgorithm.class_for_task(task)
            # Reset the construction-randomness stream so this member
            # draws exactly what its standalone instance would -- the
            # bit-identical parity contract (module docstring).
            self.cluster.reseed()
            alg = cls(config, cluster=self.cluster, **(options or {}))
            alg.attach(self.cluster, self.validator)
            self._algs[task] = alg
        limit = min(alg.batch_limit for alg in self._algs.values())
        if batch_size is None:
            self.batch_size = limit
        elif not 1 <= batch_size <= limit:
            raise ConfigurationError(
                f"batch_size={batch_size} outside [1, {limit}] "
                "(the model's per-phase batch bound)"
            )
        else:
            self.batch_size = batch_size
        self.phases: List[SessionPhase] = []
        self._closed = False
        self._broken: Optional[str] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        return self.config.n

    @property
    def tasks(self) -> List[str]:
        return list(self._algs)

    @property
    def num_edges(self) -> int:
        """Current number of edges of the maintained graph."""
        return self.validator.num_edges

    def edges(self) -> set:
        return self.validator.edges()

    def query(self, task: str) -> BatchDynamicAlgorithm:
        """The live algorithm handle for ``task`` (its concrete class
        carries the task's full typed query surface)."""
        self._check_consistent()
        try:
            return self._algs[task]
        except KeyError:
            raise QueryError(
                f"task {task!r} is not maintained by this session; "
                f"active tasks: {self.tasks}"
            ) from None

    def _first_task(self, *names: str) -> Optional[BatchDynamicAlgorithm]:
        self._check_consistent()
        for name in names:
            if name in self._algs:
                return self._algs[name]
        return None

    def _all_algorithms(self) -> List[BatchDynamicAlgorithm]:
        """Top-level tasks plus nested members, transitively."""
        out: List[BatchDynamicAlgorithm] = []
        stack = list(self._algs.values())
        while stack:
            alg = stack.pop()
            out.append(alg)
            stack.extend(alg._members())
        return out

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise QueryError("session is closed")
        self._check_consistent()

    def _check_consistent(self) -> None:
        if self._broken is not None:
            raise QueryError(
                f"session state is inconsistent: {self._broken}; "
                "restore the last checkpoint or start a fresh session"
            )

    def _apply_phase(self, batch: Batch) -> SessionPhase:
        self._check_open()
        if len(batch) > self.batch_size:
            raise BatchTooLargeError(len(batch), self.batch_size)
        if batch.deletions:
            for task, alg in self._algs.items():
                if not alg.supports_deletions:
                    raise InvalidUpdateError(
                        f"task {task!r} ({alg.name}) maintains an "
                        "insertion-only theorem; remove it from the "
                        "session or keep the stream insertion-only"
                    )
        # Once per phase for every task: stream validation ...
        self.validator.check_and_apply(batch)
        # ... and the route-updates charge, on the shared ledger.
        label = f"session-phase-{len(self.phases)}"
        self.cluster.begin_phase(label)
        charge_route_updates(self.cluster, batch)
        route = self.cluster.end_phase(batch_size=len(batch))
        phase = SessionPhase(index=len(self.phases),
                             batch_size=len(batch), route=route)
        for task, alg in self._algs.items():
            try:
                phase.per_task[task] = alg.apply_batch(batch)
            except Exception as exc:
                # The shared validator (and any earlier task) already
                # applied the batch; the remaining tasks have not.  The
                # tasks now sit at different stream positions, so no
                # further ingestion or query may trust the session.
                self._broken = (
                    f"task {task!r} raised {type(exc).__name__} "
                    f"mid-phase; earlier tasks applied the batch, "
                    f"later ones did not"
                )
                raise
        self.phases.append(phase)
        return phase

    def apply_batch(self, updates: Iterable[UpdateLike]) -> SessionPhase:
        """Process exactly one phase (raises if the batch exceeds the
        model bound; use :meth:`ingest` for auto-batching)."""
        return self._apply_phase(Batch(_coerce_stream(updates)))

    def ingest(self, updates: Iterable[UpdateLike],
               batch_size: Optional[int] = None) -> List[SessionPhase]:
        """Stream updates through every maintained task, auto-batched.

        ``updates`` may be a list, any iterable, or a lazy generator --
        items are (u, v) pairs, (u, v, weight) triples, or
        :class:`Update` objects (the only way to express deletions) --
        and is consumed incrementally in stream order, one batch of at
        most ``batch_size`` (default: the model's per-phase bound)
        buffered at a time.  Returns the resource record of every phase
        applied.
        """
        size = batch_size if batch_size is not None else self.batch_size
        if not 1 <= size <= self.batch_size:
            raise ConfigurationError(
                f"batch_size={size} outside [1, {self.batch_size}]"
            )
        return [
            self._apply_phase(batch)
            for batch in iter_batches(_coerce_stream(updates), size)
        ]

    # ------------------------------------------------------------------
    # Uniform query surface
    # ------------------------------------------------------------------
    def connected(self, u: int, v: int) -> bool:
        """Are ``u`` and ``v`` connected? (any connectivity-maintaining
        task answers; O(1) rounds)."""
        alg = self._first_task("connectivity", "msf", "msf_approx")
        if alg is None:
            raise QueryError(
                "no connectivity-maintaining task in this session "
                f"(active: {self.tasks})"
            )
        return alg.connected(u, v)

    def num_components(self) -> int:
        alg = self._first_task("connectivity", "msf", "bipartiteness",
                               "msf_approx")
        if alg is None:
            raise QueryError(
                "no component-maintaining task in this session "
                f"(active: {self.tasks})"
            )
        return alg.num_components()

    def spanning_forest(self) -> ForestSolution:
        """The maintained (minimum) spanning forest."""
        self._check_consistent()
        if "connectivity" in self._algs:
            return self._algs["connectivity"].query_spanning_forest()
        if "msf" in self._algs:
            return self._algs["msf"].query_msf()
        if "msf_approx" in self._algs:
            return self._algs["msf_approx"].query_forest()
        raise QueryError(
            f"no forest-maintaining task in this session "
            f"(active: {self.tasks})"
        )

    def msf_weight(self) -> float:
        """Exact MSF weight (``msf`` task) or the (1+eps)-approximate
        estimate (``msf_approx``)."""
        self._check_consistent()
        if "msf" in self._algs:
            return self._algs["msf"].msf_weight()
        if "msf_approx" in self._algs:
            return self._algs["msf_approx"].weight_estimate()
        raise QueryError(
            f"no MSF task in this session (active: {self.tasks})"
        )

    def is_bipartite(self) -> bool:
        return self.query("bipartiteness").is_bipartite()

    def matching(self) -> MatchingSolution:
        alg = self._first_task("matching", "matching_greedy")
        if alg is None:
            raise QueryError(
                f"no matching task in this session (active: {self.tasks})"
            )
        return alg.matching()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, include_route: bool = True) -> List[Dict[str, object]]:
        """Per-task, per-phase resource rows for :mod:`repro.analysis.
        tables` (``render_table`` / ``print_table``).

        ``(route)`` rows are the once-per-phase shared work; each task
        row is that task's own phase snapshot on the shared ledger.
        """
        rows: List[Dict[str, object]] = []
        for phase in self.phases:
            if include_route:
                row = phase.route.row()
                row.update(phase=phase.index, task="(route)")
                rows.append(row)
            for task, snap in phase.per_task.items():
                row = snap.row()
                row.update(phase=phase.index, task=task)
                rows.append(row)
        return rows

    #: Column order for rendered reports.  ``fleet`` carries the
    #: phase's fleet-health events (worker respawns / dispatch retries
    #: / degrades / injected faults) and is blank in healthy phases.
    REPORT_COLUMNS = ("phase", "task", "batch", "rounds", "messages",
                      "words_sent", "peak_total_memory", "violations",
                      "fleet")

    def fleet_health(self) -> Dict[str, int]:
        """Cumulative fleet-health counters of the live backend.

        Mirrors ``ExecutionBackend.health_counters()``: ``respawns`` /
        ``retries`` / ``degrades`` / ``faults_injected``.  Empty when
        the backend has no supervised fleet (sequential) or was never
        materialised; per-phase deltas appear in the ``fleet`` column
        of :meth:`report`.
        """
        backend = self.cluster.resolved_backend
        if backend is None:
            return {}
        return backend.health_counters()

    def report_table(self) -> str:
        return render_table(
            self.report(), columns=list(self.REPORT_COLUMNS),
            title=f"session report ({', '.join(self.tasks)}; "
                  f"backend={self.cluster.backend.describe()})",
        )

    def print_report(self) -> None:
        print_table(
            self.report(), columns=list(self.REPORT_COLUMNS),
            title=f"session report ({', '.join(self.tasks)}; "
                  f"backend={self.cluster.backend.describe()})",
        )

    def summary(self) -> List[Dict[str, object]]:
        """One row per task: phase count, worst rounds, the task's own
        memory share of the shared ledger, and where the phases
        executed (``backend.describe()``)."""
        backend = self.cluster.backend.describe()
        return [
            {
                "task": task,
                "algorithm": alg.name,
                "phases": len(alg.phases),
                "rounds/batch(max)": alg.max_rounds(),
                "words_sent": sum(p.words_sent for p in alg.phases),
                "memory_words": alg.registered_memory_words(),
                "backend": backend,
            }
            for task, alg in self._algs.items()
        ]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self, close_backend: Optional[bool] = None) -> None:
        """Deterministic teardown (idempotent).

        Detaches every sketch family from the execution backend
        (releasing worker-side pool mappings and shared-memory
        segments) and, when the session *owns* a parallel backend (a
        privately constructed fleet, not the process-cached one other
        sessions share), shuts its workers down -- they are gone when
        this returns, not when the GC gets around to it.  Pass
        ``close_backend=True`` to force-close even a shared cached
        fleet (the factory re-spawns one for later users) or ``False``
        to never close.

        Safe on any session state: double-close is a no-op even when
        the session is latched inconsistent, and a session whose lazy
        backend property was never forced (a failed or partial
        :meth:`restore`) is torn down without materialising a worker
        fleet first -- there is nothing live to stop.
        """
        if self._closed:
            return
        self._closed = True
        # Families detach from whatever backend they were attached to
        # directly; reading the cluster's *resolved* backend (never the
        # lazy property) keeps teardown from spawning a fleet.
        backend = self.cluster.resolved_backend
        for alg in self._all_algorithms():
            for family in alg._sketch_families():
                family.detach_backend()
        if backend is None:
            return
        if close_backend is None:
            close_backend = backend.parallel and not backend.cached
        if close_backend:
            backend.close()

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return (f"GraphSession(n={self.n}, tasks={self.tasks}, "
                f"phases={len(self.phases)}, edges={self.num_edges}, "
                f"{state})")

    # ------------------------------------------------------------------
    # Checkpoint / restore
    # ------------------------------------------------------------------
    def checkpoint(self, path: str) -> None:
        """Serialise the full session state to ``path``.

        Everything needed to answer queries and continue the stream
        goes in: sketch pools (views stay views of one pool), spawn-
        safe randomness params, validator edge set, forests/component
        ids, per-task stats and cursors, metrics ledgers, and generator
        states.  Process-local execution state (worker fleets, shared-
        memory handles) is excluded and re-created on restore.
        """
        self._check_open()
        payload = {
            "format": CHECKPOINT_FORMAT,
            "version": __version__,
            "config": self.config,
            "tasks": self.tasks,
            "batch_size": self.batch_size,
            "validator": self.validator,
            "cluster": self.cluster,
            "algorithms": self._algs,
            "phases": self.phases,
        }
        with open(path, "wb") as fh:
            pickle.dump(payload, fh, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def restore(cls, path: str, backend=None,
                backend_workers: Optional[int] = None) -> "GraphSession":
        """Rebuild a live session from :meth:`checkpoint` output.

        ``backend`` overrides the checkpoint's backend spec -- a
        session checkpointed under ``shared_memory`` restores cleanly
        onto ``sequential`` and vice versa (results are bit-identical
        across backends).  All sketch families are re-attached to the
        chosen backend before the session is handed back; on the
        shared-memory backend that re-attach also re-routes all future
        dispatches through the live fleet's descriptor ring buffers
        (rings are process-local, never checkpointed).

        A failure part-way through (a backend that cannot spawn or
        attach) rolls the half-built session back -- families detached,
        nothing left half-attached -- and re-raises, so the checkpoint
        file stays restorable.
        """
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        fmt = payload.get("format")
        if fmt != CHECKPOINT_FORMAT:
            raise ConfigurationError(
                f"checkpoint format {fmt!r} is not supported "
                f"(expected {CHECKPOINT_FORMAT})"
            )
        session = cls.__new__(cls)
        session.config = payload["config"]
        session.validator = payload["validator"]
        session.cluster = payload["cluster"]
        session._algs = payload["algorithms"]
        session.phases = payload["phases"]
        session.batch_size = payload["batch_size"]
        session._closed = False
        session._broken = None
        try:
            session.cluster.rebind_backend(backend, backend_workers)
            live = session.cluster.backend
            rebound = {id(session.cluster)}
            for alg in session._all_algorithms():
                if id(alg.cluster) not in rebound:
                    rebound.add(id(alg.cluster))
                    alg.cluster.rebind_backend(live)
                for family in alg._sketch_families():
                    family.attach_backend(live)
        except Exception:
            # Partial restore: latch the half-built session broken and
            # close it the non-forcing way (detach whatever attached;
            # never materialise a fleet just to tear it down).
            session._broken = "restore failed part-way"
            session.close(close_backend=False)
            raise
        return session
