"""Named workloads shared by the benchmark harness (EXPERIMENTS.md).

Each workload function returns ``(description, batches)`` so that a
bench both runs and documents the exact stream it used.  Seeds are
fixed: every table row in EXPERIMENTS.md is reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.streams.batching import as_batches
from repro.streams.generators import (
    ChurnStream,
    erdos_renyi_insertions,
    even_cycle_insertions,
    odd_cycle_insertions,
    planted_matching_insertions,
    weighted_insertions,
)
from repro.types import Batch


def er_insert_only(n: int, density: float, batch_size: int,
                   seed: int = 0) -> Tuple[str, List[Batch]]:
    """Erdos-Renyi insertions with m = density * n edges."""
    m = int(density * n)
    updates = erdos_renyi_insertions(n, m, seed=seed)
    return (
        f"ER insert-only n={n} m={m} batch={batch_size}",
        as_batches(updates, batch_size),
    )


def er_churn(n: int, phases: int, batch_size: int, target_density: float,
             seed: int = 0) -> Tuple[str, List[Batch]]:
    """Mixed insert/delete batches steered to m ~= target_density * n."""
    stream = ChurnStream(n, seed=seed, delete_fraction=0.3,
                         target_edges=int(target_density * n))
    batches = list(stream.batches(phases, batch_size))
    return (
        f"ER churn n={n} phases={phases} batch={batch_size} "
        f"target_m={int(target_density * n)}",
        batches,
    )


def weighted_er_insert_only(n: int, density: float, batch_size: int,
                            max_weight: float = 100.0,
                            seed: int = 0) -> Tuple[str, List[Batch]]:
    m = int(density * n)
    updates = weighted_insertions(n, m, max_weight=max_weight, seed=seed)
    return (
        f"weighted ER insert-only n={n} m={m} W={max_weight}",
        as_batches(updates, batch_size),
    )


def weighted_churn(n: int, phases: int, batch_size: int,
                   max_weight: int = 100,
                   seed: int = 0) -> Tuple[str, List[Batch]]:
    stream = ChurnStream(n, seed=seed, delete_fraction=0.25,
                         target_edges=4 * n, weights=(1, max_weight))
    return (
        f"weighted churn n={n} phases={phases} batch={batch_size}",
        list(stream.batches(phases, batch_size)),
    )


def bipartite_probe(n: int, batch_size: int) -> Tuple[str, List[Batch]]:
    """Even cycle, then an odd chord, then its removal (EXP-10)."""
    length = n if n % 2 == 0 else n - 1
    updates = even_cycle_insertions(length)
    return (
        f"even cycle n={length} + odd chord probes",
        as_batches(updates, batch_size),
    )


def odd_cycle_probe(length: int, batch_size: int) -> Tuple[str, List[Batch]]:
    if length % 2 == 0:
        length -= 1
    updates = odd_cycle_insertions(length)
    return (
        f"odd cycle length={length}",
        as_batches(updates, batch_size),
    )


def planted_matching(n: int, size: int, noise: int, batch_size: int,
                     seed: int = 0) -> Tuple[str, List[Batch]]:
    updates = planted_matching_insertions(n, size, noise=noise, seed=seed)
    return (
        f"planted matching n={n} OPT>={size} noise={noise}",
        as_batches(updates, batch_size),
    )
