"""Batch partitioning helpers."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.types import Batch, Update


def as_batches(updates: Sequence[Update], batch_size: int) -> List[Batch]:
    """Split an update sequence into consecutive batches.

    The split preserves stream order, so the phase-by-phase graph
    evolution matches the single-update stream exactly.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    return [
        Batch(updates[i:i + batch_size])
        for i in range(0, len(updates), batch_size)
    ]


class _BatchIterator(Iterator[Batch]):
    """The iterator behind :func:`iter_batches`.

    A plain iterator object, deliberately *not* a generator: generator
    state dies on ``close()`` / ``GeneratorExit``, which has two sharp
    edges this class removes.

    * **Empty sources yield nothing.**  ``__next__`` raises
      ``StopIteration`` immediately instead of ever producing an empty
      :class:`Batch` (an empty phase would still charge routing).
    * **Abandonment never drops buffered updates.**  Items pulled from
      the source but not yet delivered (a partial batch interrupted by
      a source exception, or a consumer that walked away mid-fill)
      stay in :attr:`_pending`; the next ``__next__`` resumes with
      them at the front, in stream order.  A generator would discard
      that buffer on teardown and silently lose part of the stream on
      a subsequent resume.
    """

    __slots__ = ("_source", "_size", "_pending")

    def __init__(self, source: Iterable[Update], batch_size: int):
        self._source = iter(source)
        self._size = batch_size
        self._pending: List[Update] = []

    def __iter__(self) -> "Iterator[Batch]":
        return self

    def __next__(self) -> Batch:
        # Fill into the *retained* buffer so a mid-fill exception from
        # the source keeps the partial batch for the next call.
        pending = self._pending
        while len(pending) < self._size:
            try:
                pending.append(next(self._source))
            except StopIteration:
                break
        if not pending:
            raise StopIteration
        self._pending = []
        return Batch(pending)


def iter_batches(updates: Iterable[Update],
                 batch_size: int) -> Iterator[Batch]:
    """Lazy, incremental flavour of :func:`as_batches`.

    Consumes ``updates`` incrementally -- the source may be an unbounded
    generator -- and yields full :class:`Batch` objects of exactly
    ``batch_size`` updates (the final batch may be shorter).  Stream
    order is preserved: concatenating the yielded batches reproduces the
    input sequence exactly, so the phase-by-phase graph evolution
    matches the single-update stream.  At most one batch of updates is
    buffered at a time, which is what lets
    :meth:`repro.session.GraphSession.ingest` accept lazy iterables
    without materialising them.

    Tail handling: an empty source yields nothing (never an empty
    batch), and abandoning the iterator mid-stream -- a consumer
    breaking out, or the source raising mid-fill -- never drops
    buffered updates: a subsequent ``next()`` on the same iterator
    resumes with the retained partial batch (see :class:`_BatchIterator`).
    """
    # Validate eagerly (deferring the error to the first ``next`` would
    # surface it far from the buggy call site).
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    return _BatchIterator(updates, batch_size)


def singleton_batches(updates: Sequence[Update]) -> List[Batch]:
    """One update per phase (the [ILMP19] single-update regime)."""
    return [Batch([up]) for up in updates]
