"""Batch partitioning helpers."""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from repro.types import Batch, Update


def as_batches(updates: Sequence[Update], batch_size: int) -> List[Batch]:
    """Split an update sequence into consecutive batches.

    The split preserves stream order, so the phase-by-phase graph
    evolution matches the single-update stream exactly.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    return [
        Batch(updates[i:i + batch_size])
        for i in range(0, len(updates), batch_size)
    ]


def iter_batches(updates: Iterable[Update],
                 batch_size: int) -> Iterator[Batch]:
    """Lazy, generator flavour of :func:`as_batches`.

    Consumes ``updates`` incrementally -- the source may be an unbounded
    generator -- and yields full :class:`Batch` objects of exactly
    ``batch_size`` updates (the final batch may be shorter).  Stream
    order is preserved: concatenating the yielded batches reproduces the
    input sequence exactly, so the phase-by-phase graph evolution
    matches the single-update stream.  At most one batch of updates is
    buffered at a time, which is what lets
    :meth:`repro.session.GraphSession.ingest` accept lazy iterables
    without materialising them.
    """
    # Validate eagerly (a generator body would defer the error to the
    # first ``next``, far from the buggy call site).
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")

    def batches() -> Iterator[Batch]:
        buffer: List[Update] = []
        for update in updates:
            buffer.append(update)
            if len(buffer) == batch_size:
                yield Batch(buffer)
                buffer = []
        if buffer:
            yield Batch(buffer)

    return batches()


def singleton_batches(updates: Sequence[Update]) -> List[Batch]:
    """One update per phase (the [ILMP19] single-update regime)."""
    return [Batch([up]) for up in updates]
