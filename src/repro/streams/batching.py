"""Batch partitioning helpers."""

from __future__ import annotations

from typing import Iterable, List, Sequence

from repro.types import Batch, Update


def as_batches(updates: Sequence[Update], batch_size: int) -> List[Batch]:
    """Split an update sequence into consecutive batches.

    The split preserves stream order, so the phase-by-phase graph
    evolution matches the single-update stream exactly.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    return [
        Batch(updates[i:i + batch_size])
        for i in range(0, len(updates), batch_size)
    ]


def singleton_batches(updates: Sequence[Update]) -> List[Batch]:
    """One update per phase (the [ILMP19] single-update regime)."""
    return [Batch([up]) for up in updates]
