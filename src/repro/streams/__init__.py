"""Dynamic graph stream generators, batching, and named workloads."""

from repro.streams.batching import as_batches, iter_batches, singleton_batches
from repro.streams.generators import (
    ChurnStream,
    SplitMergeStream,
    erdos_renyi_insertions,
    even_cycle_insertions,
    odd_cycle_insertions,
    path_insertions,
    planted_matching_insertions,
    power_law_insertions,
    random_tree_insertions,
    star_insertions,
    weighted_insertions,
)

__all__ = [
    "as_batches",
    "iter_batches",
    "singleton_batches",
    "ChurnStream",
    "SplitMergeStream",
    "erdos_renyi_insertions",
    "even_cycle_insertions",
    "odd_cycle_insertions",
    "path_insertions",
    "planted_matching_insertions",
    "power_law_insertions",
    "random_tree_insertions",
    "star_insertions",
    "weighted_insertions",
]
