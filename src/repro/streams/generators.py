"""Dynamic graph stream generators (oblivious adversaries, seeded).

Every generator is deterministic given its seed and produces *valid*
update streams for the model: the maintained graph stays simple, a
deletion always targets a live edge, and no edge is touched twice within
one batch (the paper processes a batch insertions-first, so an
insert-then-delete of the same edge inside one batch is ill-defined).

:class:`ChurnStream` is the workhorse: it keeps a live edge set and
emits mixed batches with a configurable deletion fraction, optionally
steering the live-edge count toward a target density.
"""

from __future__ import annotations

import math
from typing import Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.types import Batch, Edge, Update, dele, ins

__all__ = [
    "erdos_renyi_insertions",
    "weighted_insertions",
    "power_law_insertions",
    "path_insertions",
    "star_insertions",
    "random_tree_insertions",
    "even_cycle_insertions",
    "odd_cycle_insertions",
    "planted_matching_insertions",
    "ChurnStream",
    "SplitMergeStream",
]


def _sample_new_edge(n: int, live: Set[Edge], blocked: Set[Edge],
                     rng: np.random.Generator,
                     max_tries: int = 200) -> Optional[Edge]:
    for _ in range(max_tries):
        u = int(rng.integers(0, n))
        v = int(rng.integers(0, n))
        if u == v:
            continue
        edge = (u, v) if u < v else (v, u)
        if edge not in live and edge not in blocked:
            return edge
    return None


def erdos_renyi_insertions(n: int, m: int, seed: int = 0) -> List[Update]:
    """``m`` distinct uniform random edges, insertion order randomised."""
    rng = np.random.default_rng(seed)
    live: Set[Edge] = set()
    out: List[Update] = []
    while len(out) < m:
        edge = _sample_new_edge(n, live, set(), rng)
        if edge is None:
            break
        live.add(edge)
        out.append(ins(*edge))
    return out


def weighted_insertions(n: int, m: int, max_weight: float = 100.0,
                        seed: int = 0) -> List[Update]:
    """Random edges with uniform integer weights in [1, max_weight]."""
    rng = np.random.default_rng(seed)
    base = erdos_renyi_insertions(n, m, seed=seed + 1)
    return [
        ins(up.u, up.v, float(rng.integers(1, int(max_weight) + 1)))
        for up in base
    ]


def power_law_insertions(n: int, m: int, exponent: float = 2.5,
                         seed: int = 0) -> List[Update]:
    """Degree-skewed edges: endpoints drawn with P[v] ~ (v+1)^-exponent.

    Produces the hub-dominated streams the paper's motivation cites
    (social networks, the Web).
    """
    rng = np.random.default_rng(seed)
    weights = np.arange(1, n + 1, dtype=float) ** (-exponent)
    weights /= weights.sum()
    live: Set[Edge] = set()
    out: List[Update] = []
    tries = 0
    while len(out) < m and tries < 50 * m + 100:
        tries += 1
        u, v = rng.choice(n, size=2, p=weights)
        if u == v:
            continue
        edge = (int(min(u, v)), int(max(u, v)))
        if edge in live:
            continue
        live.add(edge)
        out.append(ins(*edge))
    return out


def path_insertions(n: int, seed: int = 0) -> List[Update]:
    """A Hamiltonian path in random vertex order (deep trees stress
    the Euler-tour machinery)."""
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    return [ins(int(order[i]), int(order[i + 1])) for i in range(n - 1)]


def star_insertions(n: int, center: int = 0) -> List[Update]:
    """A star (max-degree stress for tour index bookkeeping)."""
    return [ins(center, v) for v in range(n) if v != center]


def random_tree_insertions(n: int, seed: int = 0) -> List[Update]:
    """A uniform random recursive tree."""
    rng = np.random.default_rng(seed)
    return [ins(int(rng.integers(0, v)), v) for v in range(1, n)]


def even_cycle_insertions(length: int) -> List[Update]:
    if length % 2 or length < 4:
        raise ValueError("even cycle length must be even and >= 4")
    return [ins(i, (i + 1) % length) for i in range(length)]


def odd_cycle_insertions(length: int) -> List[Update]:
    if length % 2 == 0 or length < 3:
        raise ValueError("odd cycle length must be odd and >= 3")
    return [ins(i, (i + 1) % length) for i in range(length)]


def planted_matching_insertions(n: int, size: int, noise: int = 0,
                                seed: int = 0) -> List[Update]:
    """A perfect-on-support matching of ``size`` edges plus noise edges.

    The planted matching pins OPT >= size, which the matching
    experiments use to measure approximation ratios.
    """
    if 2 * size > n:
        raise ValueError("matching size cannot exceed n/2")
    rng = np.random.default_rng(seed)
    vertices = rng.permutation(n)
    live: Set[Edge] = set()
    out: List[Update] = []
    for i in range(size):
        u, v = int(vertices[2 * i]), int(vertices[2 * i + 1])
        edge = (min(u, v), max(u, v))
        live.add(edge)
        out.append(ins(*edge))
    for _ in range(noise):
        edge = _sample_new_edge(n, live, set(), rng)
        if edge is None:
            break
        live.add(edge)
        out.append(ins(*edge))
    order = rng.permutation(len(out))
    return [out[i] for i in order]


class ChurnStream:
    """Mixed insert/delete batches against a maintained live edge set.

    Parameters
    ----------
    n, seed:
        Vertex count and randomness.
    delete_fraction:
        Probability that a batch slot is a deletion (when edges exist).
    target_edges:
        If set, the generator steers the live count toward this target
        (sliding-window-style workloads keep m roughly constant while
        the paper's memory bound stays ~O(n)).
    weights:
        Optional (lo, hi) integer weight range for MSF workloads.
    """

    def __init__(self, n: int, seed: int = 0, delete_fraction: float = 0.3,
                 target_edges: Optional[int] = None,
                 weights: Optional[Tuple[int, int]] = None):
        self.n = n
        self.rng = np.random.default_rng(seed)
        self.delete_fraction = delete_fraction
        self.target_edges = target_edges
        self.weights = weights
        self.live: Set[Edge] = set()
        self._weight_of = {}

    @property
    def num_live(self) -> int:
        return len(self.live)

    def _weight(self) -> float:
        if self.weights is None:
            return 1.0
        lo, hi = self.weights
        return float(self.rng.integers(lo, hi + 1))

    def next_batch(self, size: int) -> Batch:
        """One valid batch of up to ``size`` updates."""
        updates: List[Update] = []
        touched: Set[Edge] = set()
        for _ in range(size):
            want_delete = self.live - touched and (
                self.rng.random() < self._delete_bias()
            )
            if want_delete:
                pool = sorted(self.live - touched)
                edge = pool[int(self.rng.integers(0, len(pool)))]
                touched.add(edge)
                self.live.discard(edge)
                updates.append(
                    dele(*edge, weight=self._weight_of.pop(edge, 1.0))
                )
            else:
                edge = _sample_new_edge(self.n, self.live, touched, self.rng)
                if edge is None:
                    continue
                touched.add(edge)
                self.live.add(edge)
                weight = self._weight()
                self._weight_of[edge] = weight
                updates.append(ins(*edge, weight=weight))
        return Batch(updates)

    def _delete_bias(self) -> float:
        """Deletion probability, steered toward the live-count target."""
        if self.target_edges is None:
            return self.delete_fraction
        if len(self.live) > self.target_edges:
            return min(0.95, self.delete_fraction + 0.35)
        if len(self.live) < 0.5 * self.target_edges:
            return max(0.02, self.delete_fraction - 0.25)
        return self.delete_fraction

    def batches(self, count: int, size: int) -> Iterator[Batch]:
        for _ in range(count):
            yield self.next_batch(size)


class SplitMergeStream:
    """Adversarial component surgery: build a tree, then alternately cut
    random tree edges and re-link the pieces.

    This maximises the deletion path's work (every deletion is a tree
    edge; replacements must come from the sketches when spare edges are
    planted) -- the stress case for Section 6.3.
    """

    def __init__(self, n: int, seed: int = 0, spare_edges: int = 0):
        self.n = n
        self.rng = np.random.default_rng(seed)
        self.tree_edges: List[Edge] = []
        self.spare: Set[Edge] = set()
        self._built = False
        self.spare_count = spare_edges

    def build_batches(self, batch_size: int) -> List[Batch]:
        """Initial batches creating the tree plus planted spare edges."""
        updates = random_tree_insertions(self.n, seed=int(
            self.rng.integers(0, 2 ** 31)
        ))
        self.tree_edges = [up.edge for up in updates]
        live = set(self.tree_edges)
        for _ in range(self.spare_count):
            edge = _sample_new_edge(self.n, live, set(), self.rng)
            if edge is None:
                break
            live.add(edge)
            self.spare.add(edge)
            updates.append(ins(*edge))
        self._built = True
        return [Batch(updates[i:i + batch_size])
                for i in range(0, len(updates), batch_size)]

    def surgery_batch(self, cuts: int) -> Batch:
        """Delete ``cuts`` random current tree edges in one batch."""
        if not self._built:
            raise RuntimeError("call build_batches first")
        cuts = min(cuts, len(self.tree_edges))
        picks = self.rng.choice(len(self.tree_edges), size=cuts,
                                replace=False)
        chosen = [self.tree_edges[i] for i in sorted(picks, reverse=True)]
        for i in sorted(picks, reverse=True):
            del self.tree_edges[i]
        return Batch([dele(*edge) for edge in chosen])

    def relink_batch(self, edges: Sequence[Edge]) -> Batch:
        self.tree_edges.extend(edges)
        return Batch([ins(*edge) for edge in edges])
