"""Streaming connectivity with an explicit spanning forest (Section 4).

The paper's reference algorithm: alongside the AGM sketches it keeps a
spanning forest ``F`` and the component-id array ``C``, which is what
later buys O(1)-round queries in MPC.  This module is the *sequential*
single-update version (Algorithms 1-4) -- ~O(n) work per update, O(n
log^3 n) bits of space -- used as the semantic reference for
:class:`~repro.core.connectivity.MPCConnectivity` and as a standalone
streaming implementation.
"""

from __future__ import annotations

from typing import List, Optional, Set

import numpy as np

from repro.core.components import ComponentIds
from repro.errors import InvalidUpdateError, SketchFailureError
from repro.euler.sequential import EulerTourForest
from repro.sketch.graph_sketch import SketchFamily
from repro.types import Edge, ForestSolution, Op, Update, canonical


class StreamingConnectivity:
    """Single-update dynamic connectivity in the streaming model.

    Parameters
    ----------
    n:
        Number of vertices (fixed; the stream starts from the empty
        graph, paper Section 1.2).
    columns:
        Independent sketch repetitions per vertex.  One suffices for a
        constant success probability per deletion; the default boosts to
        the paper's w.h.p. regime.
    seed:
        Randomness for the sketch family.
    strict:
        If True, a sketch failure (no replacement edge recovered even
        though one may exist) raises :class:`SketchFailureError`;
        otherwise the component is conservatively split and the failure
        counted in :attr:`sketch_failures`.
    backend:
        Execution backend (name, instance, or ``None`` for the
        ``REPRO_BACKEND`` environment default) running the bulk sketch
        work -- see :mod:`repro.mpc.backend`.  Single-update streaming
        mostly exercises the scalar path; the backend matters for
        :meth:`preload`'s bulk ingestion.
    """

    def __init__(self, n: int, columns: Optional[int] = None, seed: int = 0,
                 strict: bool = False, backend=None):
        if n < 2:
            raise ValueError("need at least two vertices")
        self.n = n
        rng = np.random.default_rng(seed)
        if columns is None:
            columns = max(4, int(2 * np.log2(n)))
        self.family = SketchFamily(n, columns=columns, rng=rng,
                                   backend=backend)
        self.sketches = {v: self.family.new_vertex_sketch(v)
                         for v in range(n)}
        self.forest = EulerTourForest(n)
        self.components = ComponentIds(n)
        self.strict = strict
        self.sketch_failures = 0
        self._column_cursor = 0
        self._edges: Set[Edge] = set()

    # ------------------------------------------------------------------
    # Queries (Algorithm 4)
    # ------------------------------------------------------------------
    def connected(self, u: int, v: int) -> bool:
        return self.components.same(u, v)

    def num_components(self) -> int:
        return self.components.num_components()

    def query(self) -> ForestSolution:
        """Report the maintained spanning forest."""
        edges = sorted(self.forest.all_edges())
        return ForestSolution(n=self.n, edges=edges, weights=[])

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    # ------------------------------------------------------------------
    # Updates (Algorithms 2-3)
    # ------------------------------------------------------------------
    def apply(self, update: Update) -> None:
        if update.is_insert:
            self.insert(update.u, update.v)
        else:
            self.delete(update.u, update.v)

    def preload(self, edges: "list[Edge]") -> None:
        """Bulk-load a starting graph before streaming begins.

        The paper's pre-computation hand-over (end of Section 1.1) for
        the sequential algorithm: the sketches ingest the whole edge
        set through the family's vectorized bulk router (bit-identical
        to inserting one edge at a time), then the forest and component
        ids are built incrementally.  Only valid on a fresh instance.
        """
        if self._edges:
            raise InvalidUpdateError("preload requires a fresh instance")
        canon = [canonical(u, v) for u, v in edges]
        if len(set(canon)) != len(canon):
            raise InvalidUpdateError("preload with duplicate edges")
        k = len(canon)
        if not k:
            return
        us = np.fromiter((e[0] for e in canon), dtype=np.int64, count=k)
        vs = np.fromiter((e[1] for e in canon), dtype=np.int64, count=k)
        self.family.apply_edges_bulk(us, vs, np.ones(k, dtype=np.int64))
        for u, v in canon:
            self._edges.add((u, v))
            if self.components.same(u, v):
                continue
            self.forest.link(u, v)
            self.components.relabel_min(self.forest.tree_vertices(u))

    def insert(self, u: int, v: int) -> None:
        edge = canonical(u, v)
        if edge in self._edges:
            raise InvalidUpdateError(f"insert of existing edge {edge}")
        self._edges.add(edge)
        self.sketches[u].apply_edge(u, v, +1)
        self.sketches[v].apply_edge(u, v, +1)
        if self.components.same(u, v):
            return  # non-tree edge: sketches only
        self.forest.link(u, v)
        self.components.relabel_min(self.forest.tree_vertices(u))

    def delete(self, u: int, v: int) -> None:
        edge = canonical(u, v)
        if edge not in self._edges:
            raise InvalidUpdateError(f"delete of missing edge {edge}")
        self._edges.discard(edge)
        self.sketches[u].apply_edge(u, v, -1)
        self.sketches[v].apply_edge(u, v, -1)
        if not self.forest.has_edge(u, v) and not self.forest.has_edge(v, u):
            return  # non-tree edge: sketches only
        self.forest.cut(u, v)
        z_u = self.forest.tree_vertices(u)
        z_v = self.forest.tree_vertices(v)
        replacement = self._find_replacement(z_u, z_v)
        if replacement is None:
            self.components.relabel_min(z_u)
            self.components.relabel_min(z_v)
        else:
            a, b = replacement
            self.forest.link(a, b)
            # Component membership is unchanged; C stays as it was.

    def _find_replacement(self, z_u: Set[int],
                          z_v: Set[int]) -> Optional[Edge]:
        """Query the merged sketch of Z_u for an edge into Z_v.

        Tries every column starting from a rotating cursor so repeated
        deletions do not keep consuming the same randomness.  A sampled
        edge is accepted only if it genuinely crosses the split (the
        fingerprint makes anything else vanishingly unlikely).

        Z_u ships as *membership* (its vertices are rows of the family
        pool): the execution backend merges the member rows where the
        pool lives and decodes the whole column scan in one pass
        (:meth:`SketchFamily.scan_group`), so no merged sketch is ever
        materialised here.  The accept/reject walk over the per-column
        results is unchanged, and summing rows commutes with querying,
        so the outcome is bit-identical to the merged-sketch scan.
        """
        members = np.fromiter(sorted(z_u), dtype=np.int64,
                              count=len(z_u))
        columns = self.family.columns
        order = [(self._column_cursor + offset) % columns
                 for offset in range(columns)]
        cut_empty, sampled = self.family.scan_group(
            members, np.asarray(order, dtype=np.int64)
        )
        if cut_empty:
            return None
        for column, candidate in zip(order, sampled):
            if candidate is None:
                continue
            a, b = candidate
            if (a in z_u) != (b in z_u):
                self._column_cursor = (column + 1) % columns
                if a in z_v or b in z_v:
                    return candidate
                # Edge leaves Z_u but not into Z_v: cannot happen for a
                # valid stream (non-tree edges stay within components).
                raise SketchFailureError(
                    f"recovered edge {candidate} leaves the old component"
                )
        self.sketch_failures += 1
        if self.strict:
            raise SketchFailureError(
                f"no replacement edge recovered between components of "
                f"sizes {len(z_u)} and {len(z_v)}"
            )
        return None

    # ------------------------------------------------------------------
    @property
    def space_words(self) -> int:
        """Total words: sketches + forest + C (the O(n log^3 n) claim)."""
        sketch_words = self.n * self.family.words_per_vertex
        forest_words = 4 * len(self.forest.all_edges()) + self.n
        return sketch_words + forest_words + self.components.words
