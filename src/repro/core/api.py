"""Common protocol and helpers for the batch-dynamic MPC algorithms.

Every algorithm in :mod:`repro.core` follows the paper's phase model
(Section 1.2): a *phase* receives one batch of edge updates, runs a
constant number of MPC rounds, and leaves the maintained solution
queryable.  :class:`BatchDynamicAlgorithm` fixes that surface --
``apply_batch`` returning a :class:`~repro.mpc.metrics.PhaseMetrics`
snapshot -- plus shared bookkeeping: batch-size enforcement, insertion/
deletion ordering, and the update-stream validity guard.

The validity guard deserves a note: the model *assumes* the adversary
only deletes existing edges and never inserts duplicates (paper,
Section 1.2).  The tracked edge set that enforces this is a harness
aid, deliberately excluded from the memory ledger -- a production
deployment would simply trust its ingestion layer, and counting it
would spuriously inflate every ~O(n) memory measurement to O(m).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.errors import (
    BatchTooLargeError,
    ConfigurationError,
    InvalidUpdateError,
)
from repro.mpc.config import MPCConfig
from repro.mpc.metrics import PhaseMetrics
from repro.mpc.simulator import Cluster
from repro.types import Batch, Edge, Update


class UpdateValidator:
    """Tracks the current edge set and rejects invalid updates.

    Enforces the model's stream-validity assumptions; see the module
    docstring for why this is outside the memory accounting.
    """

    def __init__(self, track: bool = True):
        self.track = track
        self._edges: Set[Edge] = set()
        self._weights: Dict[Edge, float] = {}

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def edges(self) -> Set[Edge]:
        return set(self._edges)

    def weight_of(self, edge: Edge) -> float:
        return self._weights[edge]

    def check_and_apply(self, batch: Iterable[Update]) -> None:
        """Validate a batch (insertions first, then deletions) and
        record the post-batch edge set.

        Validation is **atomic**: the whole batch is checked against
        the current state before anything is applied, so a rejected
        batch leaves the tracked edge set untouched.  This matters for
        shared validators (:class:`~repro.session.GraphSession`): a
        partially applied edge set would let later "valid" updates
        desync the validator from every algorithm's maintained state.
        """
        if not self.track:
            return
        inserts: List[Update] = []
        deletes: List[Update] = []
        for update in batch:
            (inserts if update.is_insert else deletes).append(update)
        added: Set[Edge] = set()
        for update in inserts:
            if update.edge in self._edges or update.edge in added:
                raise InvalidUpdateError(
                    f"insert of existing edge {update.edge}"
                )
            added.add(update.edge)
        removed: Set[Edge] = set()
        for update in deletes:
            present = (update.edge in self._edges
                       or update.edge in added)
            if not present or update.edge in removed:
                raise InvalidUpdateError(
                    f"delete of missing edge {update.edge}"
                )
            removed.add(update.edge)
        # Nothing below can fail: apply insertions then deletions.
        for update in inserts:
            self._edges.add(update.edge)
            self._weights[update.edge] = update.weight
        for update in deletes:
            self._edges.discard(update.edge)
            self._weights.pop(update.edge, None)


def _machine_histogram(batch, partition) -> Dict[int, int]:
    """Updates per owning machine (edges live with the smaller
    endpoint's block), vectorized -- the batch sizes a parallel backend
    targets make a per-update Python loop noticeable."""
    k = len(batch)
    lo = np.fromiter((up.u if up.u < up.v else up.v for up in batch),
                     dtype=np.int64, count=k)
    counts = np.bincount(partition.machines_of_vertices(lo))
    return {int(mid): int(count) for mid, count in enumerate(counts)
            if count}


def charge_route_updates(cluster: Cluster, batch) -> None:
    """Charge the Section 1.2 batch-routing step for one phase.

    Route all update requests to a dedicated machine first (a batch
    fits in one machine's memory, and moving it there is one
    aggregation tree, O(1/phi) rounds).  Under a parallel execution
    backend the shards stay on their owning machines, so the words are
    attributed per machine instead of lumped on the gather root.

    One definition shared by standalone :meth:`BatchDynamicAlgorithm.
    apply_batch` phases and :class:`~repro.session.GraphSession` (which
    charges it once per *session* phase, not once per task).
    """
    if not len(batch):
        return
    per_machine = None
    if cluster.backend.parallel:
        per_machine = _machine_histogram(batch, cluster.partition)
    cluster.charge_gather(len(batch), category="route-updates",
                          per_machine=per_machine)


class BatchDynamicAlgorithm:
    """Base class for phase-structured MPC algorithms.

    Subclasses implement :meth:`_process_batch` (already split into
    insertions-then-deletions per the paper's w.l.o.g. reduction) and
    :meth:`_register_memory` (refresh the ledger's view of their
    distributed state).

    Session integration
    -------------------
    Subclasses that can be driven as one task of a shared
    :class:`~repro.session.GraphSession` declare registration metadata:
    a ``task`` key (which also enters the session task registry via
    ``__init_subclass__``) and, where applicable, ``supports_deletions
    = False`` for insertion-only theorems.  :meth:`attach` switches a
    constructed instance into session mode -- shared cluster, shared
    validator, per-task memory namespacing -- after which validation
    and the route-updates charge happen once per *session* phase
    instead of once per algorithm.  :meth:`_members` /
    :meth:`_sketch_families` expose nested instances and sketch
    families so checkpoint restore can re-attach execution backends.
    """

    #: Human-readable algorithm name for table rows.
    name: str = "batch-dynamic"
    #: Session-task key; ``None`` means not constructible by task name.
    task: Optional[str] = None
    #: Whether the maintained theorem admits deletion updates.
    supports_deletions: bool = True
    #: Task name -> class, filled by ``__init_subclass__``.
    _TASKS: Dict[str, type] = {}

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        task = cls.__dict__.get("task")
        if task:
            BatchDynamicAlgorithm._TASKS[task] = cls

    @classmethod
    def task_registry(cls) -> Dict[str, type]:
        """Registered session tasks (name -> algorithm class)."""
        return dict(cls._TASKS)

    @classmethod
    def class_for_task(cls, task: str) -> type:
        try:
            return cls._TASKS[task]
        except KeyError:
            raise ConfigurationError(
                f"unknown task {task!r}; registered tasks: "
                f"{sorted(cls._TASKS)}"
            ) from None

    def __init__(self, config: MPCConfig, cluster: Optional[Cluster] = None,
                 batch_limit: Optional[int] = None, track_edges: bool = True,
                 backend=None):
        self.config = config
        # ``backend`` (name or instance) overrides the config's backend
        # when this algorithm builds its own cluster; an explicitly
        # passed cluster keeps its backend.
        self.cluster = cluster if cluster is not None else Cluster(
            config, backend=backend
        )
        self.batch_limit = (batch_limit if batch_limit is not None
                            else config.batch_bound)
        self.validator = UpdateValidator(track=track_edges)
        self.phases: List[PhaseMetrics] = []
        self._attached = False
        self._memory_ns = ""
        self._registered: Set[str] = set()

    # -- session integration --------------------------------------------
    def attach(self, cluster: Cluster, validator: UpdateValidator) -> None:
        """Register this algorithm against a shared session cluster.

        The instance must have been *constructed on* ``cluster`` (the
        session passes ``cluster=`` through the constructor; attach
        only switches modes, it cannot migrate state between clusters).
        Afterwards:

        * ``validator`` replaces the private one -- the session
          validates each batch once for all tasks, so
          :meth:`apply_batch` skips ``check_and_apply``;
        * the route-updates gather is skipped too (the session charges
          it once per phase on the shared metrics ledger);
        * memory registrations are namespaced ``"<name>/"`` so
          co-resident tasks do not overwrite each other's ledger
          entries.
        """
        if cluster is not self.cluster:
            raise ConfigurationError(
                f"{self.name} was not constructed on the shared cluster; "
                "pass cluster= at construction before attaching"
            )
        if self.phases:
            raise ConfigurationError(
                f"cannot attach {self.name} after it has processed phases"
            )
        for key in self._registered:
            self.cluster.metrics.release_memory(key)
        self._registered.clear()
        self.validator = validator
        self._attached = True
        self._memory_ns = f"{self.name}/"
        self._register_memory()
        self.cluster.metrics.note_memory_peak()

    def _register(self, name: str, words: int) -> None:
        """Register a distributed structure's footprint, namespaced per
        task when attached to a session (see :meth:`attach`)."""
        key = self._memory_ns + name
        self._registered.add(key)
        self.cluster.metrics.register_memory(key, words)

    def _members(self) -> "List[BatchDynamicAlgorithm]":
        """Nested batch-dynamic instances running on their own private
        clusters (e.g. bipartiteness's double cover, approximate MSF's
        weight levels).  Checkpoint restore walks these to rebind
        backends transitively."""
        return []

    def _sketch_families(self) -> list:
        """The sketch families this instance owns directly (not through
        :meth:`_members`); restore re-attaches each to a backend."""
        return []

    # -- subclass hooks -------------------------------------------------
    def _process_batch(self, inserts: List[Update],
                       deletes: List[Update]) -> None:
        raise NotImplementedError

    def _register_memory(self) -> None:
        raise NotImplementedError

    # -- public API -----------------------------------------------------
    @property
    def n(self) -> int:
        return self.config.n

    @property
    def num_edges(self) -> int:
        """Current number of edges of the maintained graph."""
        return self.validator.num_edges

    def apply_batch(self, updates: Iterable[Update]) -> PhaseMetrics:
        """Process one phase: a batch of at most ``batch_limit`` updates.

        Returns the phase's resource snapshot (rounds, words, memory
        peak) and appends it to :attr:`phases`.
        """
        batch = updates if isinstance(updates, Batch) else Batch(updates)
        if len(batch) > self.batch_limit:
            raise BatchTooLargeError(len(batch), self.batch_limit)
        if not self._attached:
            # In session mode the shared validator has already applied
            # this batch and the session charged the routing step --
            # both happen once per phase, not once per task.
            self.validator.check_and_apply(batch)
        label = f"{self.name}-phase-{len(self.phases)}"
        self.cluster.begin_phase(label)
        if not self._attached:
            charge_route_updates(self.cluster, batch)
        self._process_batch(batch.insertions, batch.deletions)
        self._register_memory()
        self.cluster.metrics.note_memory_peak()
        snapshot = self.cluster.end_phase(batch_size=len(batch))
        self.phases.append(snapshot)
        return snapshot

    def apply_update(self, update: Update) -> PhaseMetrics:
        """Single-update phase (the Section 5 setting)."""
        return self.apply_batch([update])

    # -- reporting helpers ----------------------------------------------
    def rounds_per_phase(self) -> List[int]:
        return [phase.rounds for phase in self.phases]

    def max_rounds(self) -> int:
        return max((phase.rounds for phase in self.phases), default=0)

    def total_memory_words(self) -> int:
        return self.cluster.metrics.total_memory

    def registered_memory_words(self) -> int:
        """Words registered by *this* algorithm's own ledger keys.

        On a private cluster this equals :meth:`total_memory_words`;
        on a shared session cluster the total spans every co-resident
        task, and this is the one task's share.
        """
        breakdown = self.cluster.metrics.memory_breakdown()
        return sum(breakdown.get(key, 0) for key in self._registered)

    def memory_breakdown(self) -> Dict[str, int]:
        return self.cluster.metrics.memory_breakdown()
