"""Common protocol and helpers for the batch-dynamic MPC algorithms.

Every algorithm in :mod:`repro.core` follows the paper's phase model
(Section 1.2): a *phase* receives one batch of edge updates, runs a
constant number of MPC rounds, and leaves the maintained solution
queryable.  :class:`BatchDynamicAlgorithm` fixes that surface --
``apply_batch`` returning a :class:`~repro.mpc.metrics.PhaseMetrics`
snapshot -- plus shared bookkeeping: batch-size enforcement, insertion/
deletion ordering, and the update-stream validity guard.

The validity guard deserves a note: the model *assumes* the adversary
only deletes existing edges and never inserts duplicates (paper,
Section 1.2).  The tracked edge set that enforces this is a harness
aid, deliberately excluded from the memory ledger -- a production
deployment would simply trust its ingestion layer, and counting it
would spuriously inflate every ~O(n) memory measurement to O(m).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

import numpy as np

from repro.errors import BatchTooLargeError, InvalidUpdateError
from repro.mpc.config import MPCConfig
from repro.mpc.metrics import PhaseMetrics
from repro.mpc.simulator import Cluster
from repro.types import Batch, Edge, Update


class UpdateValidator:
    """Tracks the current edge set and rejects invalid updates.

    Enforces the model's stream-validity assumptions; see the module
    docstring for why this is outside the memory accounting.
    """

    def __init__(self, track: bool = True):
        self.track = track
        self._edges: Set[Edge] = set()
        self._weights: Dict[Edge, float] = {}

    @property
    def num_edges(self) -> int:
        return len(self._edges)

    def edges(self) -> Set[Edge]:
        return set(self._edges)

    def weight_of(self, edge: Edge) -> float:
        return self._weights[edge]

    def check_and_apply(self, batch: Iterable[Update]) -> None:
        """Validate a batch (insertions first, then deletions) and
        record the post-batch edge set."""
        if not self.track:
            return
        inserts: List[Update] = []
        deletes: List[Update] = []
        for update in batch:
            (inserts if update.is_insert else deletes).append(update)
        for update in inserts:
            if update.edge in self._edges:
                raise InvalidUpdateError(
                    f"insert of existing edge {update.edge}"
                )
            self._edges.add(update.edge)
            self._weights[update.edge] = update.weight
        for update in deletes:
            if update.edge not in self._edges:
                raise InvalidUpdateError(
                    f"delete of missing edge {update.edge}"
                )
            self._edges.discard(update.edge)
            self._weights.pop(update.edge, None)


def _machine_histogram(batch, partition) -> Dict[int, int]:
    """Updates per owning machine (edges live with the smaller
    endpoint's block), vectorized -- the batch sizes a parallel backend
    targets make a per-update Python loop noticeable."""
    k = len(batch)
    lo = np.fromiter((up.u if up.u < up.v else up.v for up in batch),
                     dtype=np.int64, count=k)
    counts = np.bincount(partition.machines_of_vertices(lo))
    return {int(mid): int(count) for mid, count in enumerate(counts)
            if count}


class BatchDynamicAlgorithm:
    """Base class for phase-structured MPC algorithms.

    Subclasses implement :meth:`_process_batch` (already split into
    insertions-then-deletions per the paper's w.l.o.g. reduction) and
    :meth:`_register_memory` (refresh the ledger's view of their
    distributed state).
    """

    #: Human-readable algorithm name for table rows.
    name: str = "batch-dynamic"

    def __init__(self, config: MPCConfig, cluster: Optional[Cluster] = None,
                 batch_limit: Optional[int] = None, track_edges: bool = True,
                 backend=None):
        self.config = config
        # ``backend`` (name or instance) overrides the config's backend
        # when this algorithm builds its own cluster; an explicitly
        # passed cluster keeps its backend.
        self.cluster = cluster if cluster is not None else Cluster(
            config, backend=backend
        )
        self.batch_limit = (batch_limit if batch_limit is not None
                            else config.batch_bound)
        self.validator = UpdateValidator(track=track_edges)
        self.phases: List[PhaseMetrics] = []

    # -- subclass hooks -------------------------------------------------
    def _process_batch(self, inserts: List[Update],
                       deletes: List[Update]) -> None:
        raise NotImplementedError

    def _register_memory(self) -> None:
        raise NotImplementedError

    # -- public API -----------------------------------------------------
    @property
    def n(self) -> int:
        return self.config.n

    @property
    def num_edges(self) -> int:
        """Current number of edges of the maintained graph."""
        return self.validator.num_edges

    def apply_batch(self, updates: Iterable[Update]) -> PhaseMetrics:
        """Process one phase: a batch of at most ``batch_limit`` updates.

        Returns the phase's resource snapshot (rounds, words, memory
        peak) and appends it to :attr:`phases`.
        """
        batch = updates if isinstance(updates, Batch) else Batch(updates)
        if len(batch) > self.batch_limit:
            raise BatchTooLargeError(len(batch), self.batch_limit)
        self.validator.check_and_apply(batch)
        label = f"{self.name}-phase-{len(self.phases)}"
        self.cluster.begin_phase(label)
        if len(batch) > 0:
            # Route all update requests to a dedicated machine first
            # (Section 1.2: a batch fits in one machine's memory, and
            # moving it there is one aggregation tree, O(1/phi) rounds).
            # Under a parallel execution backend the shards stay on
            # their owning machines, so the words are attributed per
            # machine instead of lumped on the gather root.
            per_machine = None
            if self.cluster.backend.parallel:
                per_machine = _machine_histogram(batch,
                                                 self.cluster.partition)
            self.cluster.charge_gather(len(batch), category="route-updates",
                                       per_machine=per_machine)
        self._process_batch(batch.insertions, batch.deletions)
        self._register_memory()
        self.cluster.metrics.note_memory_peak()
        snapshot = self.cluster.end_phase(batch_size=len(batch))
        self.phases.append(snapshot)
        return snapshot

    def apply_update(self, update: Update) -> PhaseMetrics:
        """Single-update phase (the Section 5 setting)."""
        return self.apply_batch([update])

    # -- reporting helpers ----------------------------------------------
    def rounds_per_phase(self) -> List[int]:
        return [phase.rounds for phase in self.phases]

    def max_rounds(self) -> int:
        return max((phase.rounds for phase in self.phases), default=0)

    def total_memory_words(self) -> int:
        return self.cluster.metrics.total_memory

    def memory_breakdown(self) -> Dict[str, int]:
        return self.cluster.metrics.memory_breakdown()
