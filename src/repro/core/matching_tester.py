"""Matching-size estimation via Tester instances (Section 8.2).

[AKL17]-style meta-algorithm: O(log n) parallel ``Tester(G, k)``
instances with geometric guesses ``k = 2^j``; each tester distinguishes
``OPT >= k`` from ``OPT << k``, and the estimator reports the largest
accepted guess.

* **Insertion-only tester** (space ~O(k)): a greedy matching capped at
  ``k``; accept iff the matching reaches ``k/2`` (a maximal matching is
  a 2-approximation below the cap).
* **Dynamic tester** (space ~O(k^2)): hash vertices into ``Theta(k)``
  groups, keep an L0-sampler per group pair (Lemma 3.6), maintain a
  maximal matching of the sampled subgraph H with the Proposition 8.4
  black box; accept iff it reaches ``k / accept_slack``.

To respect the theorem's total-space bounds (~O(n/alpha^2) insertion /
~O(n^2/alpha^4) dynamic), testers with ``k`` above the per-tester budget
``k0 = ceil(n / alpha^2)`` run on a vertex-subsampled graph: each vertex
survives with probability ``p = sqrt(k0 / k)`` under a four-wise
independent hash, shrinking the effective guess to ``k * p^2 = k0``
while an OPT >= k matching retains ~``p^2 k`` edges in expectation --
the [AKL17] subsampling argument, reconstructed here from its summary
in the paper (the alpha-factor loss shows up as the accept-threshold
slack).  DESIGN.md records this as a substitution.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.api import BatchDynamicAlgorithm
from repro.core.maximal_matching import BatchDynamicMaximalMatching
from repro.errors import ConfigurationError, InvalidUpdateError
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import Cluster
from repro.sketch.edge_coding import decode_index, encode_edge, num_pairs
from repro.sketch.hashing import FourWiseHash, PairwiseHash
from repro.sketch.l0_sampler import (
    L0Sampler,
    SamplerRandomness,
    update_grouped,
)
from repro.types import Edge, Update

_SAMPLE_RANGE = 1 << 20


class MatchingTester:
    """One Tester(G, k) instance (insertion-only or dynamic)."""

    def __init__(self, n: int, k: int, dynamic: bool, budget: int,
                 rng: np.random.Generator, pair_columns: int = 4,
                 kappa: float = 0.5, accept_slack: float = 2.0):
        if k < 1:
            raise ConfigurationError("guess k must be >= 1")
        self.n = n
        self.k = k
        self.dynamic = dynamic
        self.accept_slack = accept_slack
        # Vertex subsampling keeps the effective guess within budget.
        self.p = 1.0 if k <= budget else math.sqrt(budget / k)
        self.k_eff = max(1, math.ceil(k * self.p * self.p))
        self.vertex_hash = FourWiseHash(_SAMPLE_RANGE, rng)
        if dynamic:
            self.groups = max(2, 2 * self.k_eff)
            self.group_hash = PairwiseHash(self.groups, rng)
            self.randomness = SamplerRandomness(
                num_pairs(n), pair_columns, rng
            )
            self.samplers: Dict[Tuple[int, int], L0Sampler] = {}
            self.outcome: Dict[Tuple[int, int], Optional[int]] = {}
            self.matching = BatchDynamicMaximalMatching(kappa=kappa)
        else:
            self.cap = self.k_eff
            self._mate: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _sampled(self, v: int) -> bool:
        return self.vertex_hash(v) < self.p * _SAMPLE_RANGE

    def apply_updates(self, updates: List[Update]) -> None:
        if self.dynamic:
            self._apply_dynamic(updates)
        else:
            self._apply_insertion(updates)

    def _apply_insertion(self, updates: List[Update]) -> None:
        for up in updates:
            if up.is_delete:
                raise InvalidUpdateError(
                    "insertion-only tester received a deletion"
                )
            if len(self._mate) // 2 >= self.cap:
                return
            if not (self._sampled(up.u) and self._sampled(up.v)):
                continue
            if up.u not in self._mate and up.v not in self._mate:
                self._mate[up.u] = up.v
                self._mate[up.v] = up.u

    def _apply_dynamic(self, updates: List[Update]) -> None:
        affected: Set[Tuple[int, int]] = set()
        deltas: List[Tuple[Tuple[int, int], int, int]] = []
        for up in updates:
            if not (self._sampled(up.u) and self._sampled(up.v)):
                continue
            gu, gv = self.group_hash(up.u), self.group_hash(up.v)
            if gu == gv:
                continue  # intra-group edges are dropped (Theta(k) groups)
            pair = (min(gu, gv), max(gu, gv))
            idx = encode_edge(self.n, up.u, up.v)
            deltas.append((pair, idx, 1 if up.is_insert else -1))
            affected.add(pair)
        if not affected:
            return
        removed: List[Edge] = []
        for pair in affected:
            old = self.outcome.get(pair)
            if old is not None:
                removed.append(decode_index(self.n, old))
        update_grouped(self.samplers, self.randomness, deltas)
        inserted: List[Edge] = []
        for pair in affected:
            idx = self.samplers[pair].sample()
            self.outcome[pair] = idx
            if idx is not None:
                inserted.append(decode_index(self.n, idx))
        self.matching.apply_batch(inserts=inserted, deletes=removed)

    # ------------------------------------------------------------------
    def observed_size(self) -> int:
        if self.dynamic:
            return self.matching.matching_size()
        return len(self._mate) // 2

    def accepts(self) -> bool:
        """Does this tester believe OPT >= k?"""
        return self.observed_size() >= self.k_eff / self.accept_slack

    @property
    def words(self) -> int:
        """Theoretical footprint (the paper allocates pairs upfront)."""
        if self.dynamic:
            per_sampler = 3 * self.randomness.columns * self.randomness.levels
            total_pairs = self.groups * (self.groups - 1) // 2
            return total_pairs * per_sampler + self.matching.words
        return self.cap * 2

    @property
    def rounds_per_batch(self) -> int:
        if self.dynamic:
            return self.matching.rounds_per_batch + 1
        return 1


class MatchingSizeEstimator(BatchDynamicAlgorithm):
    """O(alpha)-approximate matching-size estimation (Thms 8.5 / 8.6)."""

    name = "matching-size"
    task = "matching_size"

    def __init__(self, config: MPCConfig, alpha: float = 4.0,
                 dynamic: bool = False,
                 cluster: Optional[Cluster] = None,
                 batch_limit: Optional[int] = None,
                 pair_columns: int = 4, kappa: float = 0.5,
                 accept_slack: float = 2.0):
        super().__init__(config, cluster=cluster, batch_limit=batch_limit)
        if alpha < 1:
            raise ConfigurationError("alpha must be at least 1")
        if alpha > math.sqrt(config.n):
            raise ConfigurationError(
                "Theorems 8.5/8.6 require alpha <= sqrt(n)"
            )
        self.alpha = alpha
        self.dynamic = dynamic
        # Theorem 8.5 (insert-only) vs 8.6 (dynamic): per-instance, so
        # the session capability check reads the instance attribute.
        self.supports_deletions = dynamic
        budget = max(1, math.ceil(config.n / alpha ** 2))
        self.testers: List[MatchingTester] = []
        k = 1
        while k <= config.n // 2:
            self.testers.append(
                MatchingTester(config.n, k, dynamic, budget,
                               self.cluster.rng, pair_columns=pair_columns,
                               kappa=kappa, accept_slack=accept_slack)
            )
            k *= 2

    # ------------------------------------------------------------------
    def _process_batch(self, inserts: List[Update],
                       deletes: List[Update]) -> None:
        updates = inserts + deletes
        self.cluster.charge_broadcast(words=max(1, len(updates)),
                                      category="batch")
        rounds = 0
        for tester in self.testers:
            tester.apply_updates(updates)
            rounds = max(rounds, tester.rounds_per_batch)
        # Testers run in parallel; charge the slowest one once.
        self.cluster.metrics.charge_rounds(rounds, "testers")

    # ------------------------------------------------------------------
    def estimate(self) -> float:
        """Largest accepted guess (>= 1 when any edge was matched)."""
        best = 0.0
        for tester in self.testers:
            if tester.accepts():
                best = max(best, float(tester.k))
        if best == 0.0 and self.testers:
            best = float(min(1, self.testers[0].observed_size()))
        return best

    def _register_memory(self) -> None:
        total = sum(tester.words for tester in self.testers)
        self._register("testers", total)
