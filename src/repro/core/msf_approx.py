"""(1+eps)-approximate MSF in dynamic streams (Section 7.2).

Chazelle-Rubinfeld-Trevisan reduction, as adapted by the paper: run
``t + 1 = ceil(log_{1+eps} W) + 1`` batch-dynamic connectivity instances
in parallel, instance ``i`` seeing only the edges of weight at most
``(1+eps)^i``.  Then, with ``cc(G_i)`` the number of components of the
``i``-th instance and ``lambda_i = (1+eps)^{i+1} - (1+eps)^i``,

    w(MSF of the rounded graph)
        = n - cc(G) * (1+eps)^t + sum_{i<t} lambda_i * cc(G_i)

which is within (1+eps) of the true MSF weight (Equation (1) of the
paper, stated there for connected G; the ``cc(G) *`` factor is the
standard disconnected-graph generalisation).  The forest itself is
assembled per Section 7.2.2: take edge ``e`` from instance ``i``'s
spanning forest iff its endpoints are disconnected at level ``i - 1``.

All instances process each batch independently -- in MPC they run in
parallel, so the phase's round count is the *maximum* over instances,
which is what this wrapper charges on its own cluster.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.core.api import BatchDynamicAlgorithm
from repro.core.connectivity import MPCConnectivity
from repro.errors import ConfigurationError, InvalidUpdateError
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import Cluster
from repro.types import ForestSolution, Update


class ApproxMSF(BatchDynamicAlgorithm):
    """(1+eps)-approximate MSF / MSF weight under dynamic batches."""

    name = "msf-approx"
    task = "msf_approx"

    def __init__(self, config: MPCConfig, eps: float = 0.25,
                 max_weight: float = 1024.0,
                 cluster: Optional[Cluster] = None,
                 batch_limit: Optional[int] = None, backend=None):
        super().__init__(config, cluster=cluster, batch_limit=batch_limit,
                         backend=backend)
        if eps <= 0:
            raise ConfigurationError("eps must be positive")
        if max_weight < 1:
            raise ConfigurationError("max_weight must be at least 1")
        self.eps = eps
        self.max_weight = max_weight
        self.num_levels = max(1, math.ceil(math.log(max_weight, 1 + eps)))
        # Instance i accepts edges of weight <= (1+eps)^i; the last
        # instance sees everything.
        self.thresholds = [(1 + eps) ** i for i in range(self.num_levels)]
        self.thresholds.append(max((1 + eps) ** self.num_levels, max_weight))
        self.levels: List[MPCConnectivity] = [
            MPCConnectivity(config, track_edges=False,
                            backend=self.cluster.backend)
            for _ in range(self.num_levels + 1)
        ]

    # ------------------------------------------------------------------
    def _process_batch(self, inserts: List[Update],
                       deletes: List[Update]) -> None:
        for up in inserts + deletes:
            if not 1.0 <= up.weight <= self.max_weight:
                raise InvalidUpdateError(
                    f"edge weight {up.weight} outside [1, {self.max_weight}]"
                )
        level_rounds = 0
        for level, threshold in enumerate(self.thresholds):
            sub_batch = [up for up in inserts + deletes
                         if up.weight <= threshold]
            if not sub_batch:
                continue
            snapshot = self.levels[level].apply_batch(sub_batch)
            level_rounds = max(level_rounds, snapshot.rounds)
        # All levels run in parallel on disjoint machine groups.
        self.cluster.metrics.charge_rounds(level_rounds, "parallel-levels")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def weight_estimate(self) -> float:
        """Equation (1): the exact MSF weight of the rounded graph."""
        cc = [lvl.num_components() for lvl in self.levels]
        cc_top = cc[-1]
        top_factor = (1 + self.eps) ** self.num_levels
        estimate = self.n - cc_top * top_factor
        for i in range(self.num_levels):
            lam = (1 + self.eps) ** (i + 1) - (1 + self.eps) ** i
            estimate += lam * cc[i]
        return float(estimate)

    def query_forest(self) -> ForestSolution:
        """Assemble the (1+eps)-approximate forest (Section 7.2.2).

        Deviation from the paper's literal text (DESIGN.md): the level
        test alone is not enough -- one level's forest can contribute
        *two* edges between the same pair of lower-level components
        (F_i need not connect a G_{i-1} component through that
        component's own vertices), which closes a cycle.  A union-find
        over the assembled forest drops such duplicates; the survivor
        has the same rounded weight class, so the approximation bound
        is unaffected, and the check is the same O(1)-round local
        H-forest computation used everywhere else.
        """
        parent: dict = {}

        def find(x: int) -> int:
            while parent.setdefault(x, x) != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        edges = []
        weights = []
        for i, level in enumerate(self.levels):
            forest_i = level.query_spanning_forest()
            for u, v in forest_i.edges:
                if i > 0 and self.levels[i - 1].connected(u, v):
                    continue
                ru, rv = find(u), find(v)
                if ru == rv:
                    continue
                parent[ru] = rv
                edges.append((u, v))
                # Level membership pins the rounded weight class.
                weights.append(self.thresholds[i])
        order = sorted(range(len(edges)), key=lambda j: edges[j])
        return ForestSolution(
            n=self.n,
            edges=[edges[j] for j in order],
            weights=[weights[j] for j in order],
        )

    def num_components(self) -> int:
        return self.levels[-1].num_components()

    def connected(self, u: int, v: int) -> bool:
        return self.levels[-1].connected(u, v)

    # ------------------------------------------------------------------
    def _register_memory(self) -> None:
        total = sum(lvl.total_memory_words() for lvl in self.levels)
        self._register("level-instances", total)

    def _members(self) -> List[BatchDynamicAlgorithm]:
        return list(self.levels)
