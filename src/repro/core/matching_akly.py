"""O(alpha)-approximate matching in dynamic streams (Theorem 8.2).

Implementation of the [AKLY16] sparsifier, driven in batches:

* vertices are split into L / R by a pairwise hash (the bipartite
  reduction loses a constant factor);
* for each guess OPT' in {2^j}, L and R are hashed into ``beta =
  ceil(OPT'/alpha)`` groups; each L-group is assigned ``gamma =
  ceil(OPT'/alpha^2)`` random R-groups, giving ~O(max(n^2/alpha^3,
  n/alpha)) *active pairs*;
* every active pair (L_i, R_j) carries an L0-sampler of the edge set
  E(L_i, R_j) (Lemma 3.6);
* the sparsifier H consists of the samplers' current outcomes, and a
  batch-dynamic maximal matching of H (Proposition 8.4 black box,
  :class:`~repro.core.maximal_matching.BatchDynamicMaximalMatching`)
  is maintained throughout.  Lemma 8.3: a maximal matching of H is an
  O(alpha)-approximation of the maximum matching of G.

Batch flow per phase (proof of Theorem 8.2): collect the affected active
pairs, gather their current outcomes X, update their samplers, draw the
new outcomes Y, and feed (delete X, insert Y) to the maximal matching --
O(1) rounds for the sketch work plus the black box's O(log 1/kappa).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.api import BatchDynamicAlgorithm
from repro.core.maximal_matching import BatchDynamicMaximalMatching
from repro.errors import ConfigurationError
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import Cluster
from repro.sketch.edge_coding import decode_index, encode_edge, num_pairs
from repro.sketch.hashing import PairwiseHash
from repro.sketch.l0_sampler import (
    L0Sampler,
    SamplerRandomness,
    update_grouped,
)
from repro.types import Edge, MatchingSolution, Update


class _Guess:
    """The sparsifier state for one OPT' guess."""

    def __init__(self, n: int, opt_guess: int, alpha: float,
                 pair_columns: int, kappa: float,
                 rng: np.random.Generator):
        self.n = n
        self.opt_guess = opt_guess
        self.beta = max(1, math.ceil(opt_guess / alpha))
        self.gamma = max(1, math.ceil(opt_guess / alpha ** 2))
        self.side_hash = PairwiseHash(2, rng)
        self.hash_l = PairwiseHash(self.beta, rng)
        self.hash_r = PairwiseHash(self.beta, rng)
        # gamma R-groups per L-group, uniform with replacement ([AKLY16]).
        self.active: Set[Tuple[int, int]] = set()
        for i in range(self.beta):
            for j in rng.integers(0, self.beta, size=self.gamma):
                self.active.add((i, int(j)))
        self.randomness = SamplerRandomness(num_pairs(n), pair_columns, rng)
        self.samplers: Dict[Tuple[int, int], L0Sampler] = {}
        self.outcome: Dict[Tuple[int, int], Optional[int]] = {}
        self.matching = BatchDynamicMaximalMatching(kappa=kappa)

    # ------------------------------------------------------------------
    def pair_of(self, u: int, v: int) -> Optional[Tuple[int, int]]:
        """The active pair an edge belongs to, or None."""
        su, sv = self.side_hash(u), self.side_hash(v)
        if su == sv:
            return None  # not an L-R edge under the bipartition
        left, right = (u, v) if su == 0 else (v, u)
        pair = (self.hash_l(left), self.hash_r(right))
        return pair if pair in self.active else None

    def apply_updates(self, updates: List[Update]) -> Tuple[int, int]:
        """Process one batch; returns (|X|, |Y|) for round accounting."""
        affected: Set[Tuple[int, int]] = set()
        deltas: List[Tuple[Tuple[int, int], int, int]] = []
        for up in updates:
            pair = self.pair_of(up.u, up.v)
            if pair is None:
                continue
            idx = encode_edge(self.n, up.u, up.v)
            deltas.append((pair, idx, 1 if up.is_insert else -1))
            affected.add(pair)
        if not affected:
            return (0, 0)

        # X: the pre-update outcomes of the affected samplers.
        removed: List[Edge] = []
        for pair in affected:
            old = self.outcome.get(pair)
            if old is not None:
                removed.append(decode_index(self.n, old))
        # Update the sketches (linear, one broadcast); each affected
        # pair ingests its updates in one vectorized call.
        update_grouped(self.samplers, self.randomness, deltas)
        # Y: the post-update outcomes.
        inserted: List[Edge] = []
        for pair in affected:
            idx = self.samplers[pair].sample()
            self.outcome[pair] = idx
            if idx is not None:
                inserted.append(decode_index(self.n, idx))
        self.matching.apply_batch(inserts=inserted, deletes=removed)
        return (len(removed), len(inserted))

    @property
    def words(self) -> int:
        """Active-pair samplers + sparsifier matching state.

        Counts every active pair at full sampler size (the paper
        allocates them upfront; we allocate lazily for speed only).
        """
        per_sampler = 3 * self.randomness.columns * self.randomness.levels
        return len(self.active) * per_sampler + self.matching.words


class AKLYMatching(BatchDynamicAlgorithm):
    """O(alpha)-approximate maximum matching under dynamic batches."""

    name = "matching-akly"
    task = "matching"

    def __init__(self, config: MPCConfig, alpha: float = 4.0,
                 guesses: Optional[List[int]] = None,
                 pair_columns: int = 5, kappa: float = 0.5,
                 cluster: Optional[Cluster] = None,
                 batch_limit: Optional[int] = None):
        super().__init__(config, cluster=cluster, batch_limit=batch_limit)
        if alpha < 1:
            raise ConfigurationError("alpha must be at least 1")
        self.alpha = alpha
        if guesses is None:
            guesses = []
            guess = max(2, int(alpha))
            while guess <= config.n:
                guesses.append(guess)
                guess *= 2
            if not guesses:
                guesses = [config.n]
        self.guesses = [
            _Guess(config.n, g, alpha, pair_columns, kappa, self.cluster.rng)
            for g in guesses
        ]

    # ------------------------------------------------------------------
    def _process_batch(self, inserts: List[Update],
                       deletes: List[Update]) -> None:
        updates = inserts + deletes
        self.cluster.charge_broadcast(words=max(1, len(updates)),
                                      category="batch")
        max_xy = 0
        mm_rounds = 0
        for guess in self.guesses:
            x_count, y_count = guess.apply_updates(updates)
            max_xy = max(max_xy, x_count + y_count)
            mm_rounds = max(mm_rounds, guess.matching.rounds_per_batch)
        # Gather X/Y outcomes (O(1) rounds) + black-box matching rounds;
        # the guesses run in parallel, so charge the maximum once.
        self.cluster.charge_gather(total_words=max(1, max_xy),
                                   category="sparsifier")
        self.cluster.metrics.charge_rounds(mm_rounds, "maximal-matching")

    # ------------------------------------------------------------------
    def matching(self) -> MatchingSolution:
        """The largest sparsifier matching over all OPT' guesses."""
        best: List[Edge] = []
        for guess in self.guesses:
            edges = guess.matching.matching().edges
            if len(edges) > len(best):
                best = edges
        return MatchingSolution(edges=best)

    def matching_size(self) -> int:
        return len(self.matching().edges)

    # ------------------------------------------------------------------
    def _register_memory(self) -> None:
        total = sum(guess.words for guess in self.guesses)
        self._register("sparsifier", total)
