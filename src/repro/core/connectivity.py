"""Batch-dynamic connectivity in MPC (Theorem 1.1 / Sections 5-6).

The paper's headline algorithm: maintain, in ~O(n) total memory,

* one AGM sketch stack per vertex (``t = O(log n)`` columns),
* the spanning forest F as distributed Euler tours,
* the component-id array C,

and process a batch of up to ``~O(n^phi)`` edge updates in O(1/phi) MPC
rounds.  Insertions build the auxiliary graph H over component ids, take
a spanning forest F_H on one machine, and splice the Euler tours with
one broadcast of O(k) segment messages (Section 6.1-6.2).  Deletions cut
the tours, merge the fragments' sketches with a converge-cast, and rerun
the AGM halving iterations *locally on one machine* over at most 2k
fragment sketches to find replacement edges (Section 6.3) -- this is
where keeping the explicit forest beats the O(log n)-round AGM query.

Round charges follow the primitives actually used; see DESIGN.md (S1/S2)
for how charges are validated against real message-passing executions.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.api import BatchDynamicAlgorithm
from repro.core.components import ComponentIds
from repro.errors import QueryError, SketchFailureError
from repro.euler.distributed import DistributedEulerForest
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import Cluster
from repro.sketch.graph_sketch import SketchFamily
from repro.types import Edge, ForestSolution, Update, canonical


class MPCConnectivity(BatchDynamicAlgorithm):
    """Maintains connectivity + spanning forest under batch updates."""

    name = "mpc-connectivity"
    task = "connectivity"

    def __init__(self, config: MPCConfig, cluster: Optional[Cluster] = None,
                 columns: Optional[int] = None,
                 batch_limit: Optional[int] = None,
                 strict: bool = False, track_edges: bool = True,
                 backend=None):
        super().__init__(config, cluster=cluster, batch_limit=batch_limit,
                         track_edges=track_edges, backend=backend)
        if columns is None:
            columns = config.sketch_columns
        self.family = SketchFamily(config.n, columns=columns,
                                   rng=self.cluster.rng,
                                   backend=self.cluster.backend)
        self.sketches = {v: self.family.new_vertex_sketch(v)
                         for v in range(config.n)}
        self.forest = DistributedEulerForest(config.n)
        self.components = ComponentIds(config.n)
        self.strict = strict
        self._column_cursor = 0
        self.stats: Dict[str, int] = {
            "replacement_edges": 0,
            "sketch_failures": 0,
            "agm_iterations": 0,
            "tree_edge_deletions": 0,
        }
        self._register_memory()

    # ------------------------------------------------------------------
    # Preprocessing (paper, end of Section 1.1)
    # ------------------------------------------------------------------
    def preload(self, edges: "list[Edge]") -> "object":
        """Initialise from an arbitrary starting graph.

        The paper notes the algorithms need not start empty: a
        "pre-computation phase" can solve the initial instance with the
        static O(log n)-round connectivity algorithm [AGM12, NO21] and
        hand over the maintained state.  This method performs that
        hand-over: it bulk-loads the sketches, builds the spanning
        forest (one batch splice -- the edges of any forest over
        singleton tours), and charges the static algorithm's O(log n)
        rounds.  Only valid before any update phase.
        """
        if self.phases or self.num_edges:
            raise QueryError("preload requires a fresh instance")
        from repro.types import ins as _ins

        updates = [_ins(u, v) for u, v in edges]
        self.validator.check_and_apply(updates)
        self.cluster.begin_phase(f"{self.name}-preload")
        # Static construction: O(log n) contraction iterations, each a
        # sketch-merge converge-cast.
        import math as _math
        for _ in range(max(1, _math.ceil(_math.log2(self.n)))):
            self.cluster.charge_converge(
                words=self.family.words_per_vertex, category="preload"
            )
        self.family.apply_updates_bulk(updates, delta=+1)
        forest_edges = self._spanning_forest_of_h(updates)
        if forest_edges:
            report = self.forest.batch_link(forest_edges)
            self.cluster.charge_broadcast(words=max(1, report.messages),
                                          category="tour-update")
            for tid in report.new_tours:
                self.components.relabel_min(self.forest.tour_vertices(tid))
        self._register_memory()
        self.cluster.metrics.note_memory_peak()
        snapshot = self.cluster.end_phase(batch_size=len(edges))
        self.phases.append(snapshot)
        return snapshot

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def connected(self, u: int, v: int) -> bool:
        return self.components.same(u, v)

    def num_components(self) -> int:
        return self.forest.num_components()

    def query_spanning_forest(self) -> ForestSolution:
        """Report the maintained spanning forest (constant rounds)."""
        edges = sorted(self.forest.all_edges())
        return ForestSolution(n=self.n, edges=edges, weights=[])

    def query_with_metrics(self) -> Tuple[ForestSolution, "object"]:
        """Query wrapped in a measured phase (for EXP-3).

        The maintained solution only needs to be *emitted*: one sort of
        the O(n) labels/edges (paper: "reporting the connected
        components can be easily done by sorting the labels").
        """
        self.cluster.begin_phase(f"{self.name}-query")
        solution = self.query_spanning_forest()
        self.cluster.charge_sort(max(1, len(solution.edges)),
                                 category="query")
        metrics = self.cluster.end_phase(batch_size=0)
        return solution, metrics

    # ------------------------------------------------------------------
    # Phase processing
    # ------------------------------------------------------------------
    def _process_batch(self, inserts: List[Update],
                       deletes: List[Update]) -> None:
        if inserts:
            self._process_insertions(inserts)
        if deletes:
            self._process_deletions(deletes)

    # -- insertions (Section 6.1) ---------------------------------------
    def _process_insertions(self, inserts: List[Update]) -> None:
        k = len(inserts)
        # Broadcast the batch; machines owning u or v update the sketches.
        self.cluster.charge_broadcast(words=k, category="sketch-update")
        self.family.apply_updates_bulk(inserts, delta=+1)

        # Classify: edges between distinct components are tree candidates.
        # One local round: every machine checks C[u] != C[v] for its edges.
        self.cluster.charge_local(category="classify")
        candidates = [up for up in inserts
                      if not self.components.same(up.u, up.v)]
        if not candidates:
            return

        # Auxiliary graph H on component ids; F_H on a single machine.
        self.cluster.charge_gather(total_words=len(candidates),
                                   category="build-H")
        fh_edges = self._spanning_forest_of_h(candidates)
        if not fh_edges:
            return

        # Splice the Euler tours: one broadcast of O(k) shift messages.
        report = self.forest.batch_link(fh_edges)
        self.cluster.charge_broadcast(words=max(1, report.messages),
                                      category="tour-update")
        # Relabel merged components to their minimum vertex id.
        self.cluster.charge_broadcast(words=max(1, len(report.new_tours)),
                                      category="relabel")
        for tid in report.new_tours:
            self.components.relabel_min(self.forest.tour_vertices(tid))

    def _spanning_forest_of_h(self, candidates: List[Update]) -> List[Edge]:
        """Spanning forest of H, keeping one original edge per H-edge.

        H's vertices are component ids; parallel edges and (impossible
        here) self-loops are dropped, then a union-find picks a forest.
        All local computation on the machine holding the batch.
        """
        leader: Dict[int, int] = {}

        def find(x: int) -> int:
            while leader.setdefault(x, x) != x:
                leader[x] = leader[leader[x]]
                x = leader[x]
            return x

        forest_edges: List[Edge] = []
        for up in candidates:
            cu = find(self.components.id_of(up.u))
            cv = find(self.components.id_of(up.v))
            if cu == cv:
                continue
            leader[cu] = cv
            forest_edges.append((up.u, up.v))
        return forest_edges

    # -- deletions (Section 6.3) ----------------------------------------
    def _process_deletions(self, deletes: List[Update]) -> None:
        k = len(deletes)
        self.cluster.charge_broadcast(words=k, category="sketch-update")
        self.family.apply_updates_bulk(deletes, delta=-1)

        self.cluster.charge_local(category="classify")
        tree_edges = [up.edge for up in deletes
                      if self.forest.has_edge(up.u, up.v)]
        if not tree_edges:
            return
        self.stats["tree_edge_deletions"] += len(tree_edges)

        # Split the tours (inverse segment messages, one broadcast).
        cut_report = self.forest.batch_cut(tree_edges)
        self.cluster.charge_broadcast(words=max(1, cut_report.messages),
                                      category="tour-update")

        # Merge each fragment's vertex sketches: parallel converge-casts,
        # O(1/phi) rounds (Lemma 6.5); then gather the <= 2k fragment
        # sketches onto one machine.
        fragments = [tid for tid in cut_report.new_tours
                     if self.forest.has_tour(tid)]
        self.cluster.charge_converge(words=self.family.words_per_vertex,
                                     category="sketch-merge")
        self.cluster.charge_gather(
            total_words=len(fragments) * self.family.words_per_vertex,
            category="build-H",
        )
        # Fragment *membership* (tour id -> vertex rows of the shared
        # pool) is what actually ships: the execution backend merges
        # the member rows where the pool lives and answers the halving
        # queries, so the parent never materialises merged cells.  The
        # model charges above are unchanged -- the converge/gather is
        # where the merges logically happen.
        members: Dict[int, np.ndarray] = {}
        for tid in fragments:
            verts = sorted(self.forest.tour_vertices(tid))
            members[tid] = np.fromiter(verts, dtype=np.int64,
                                       count=len(verts))

        replacement_edges = self._agm_replacements(fragments, members)
        if replacement_edges:
            self.stats["replacement_edges"] += len(replacement_edges)
            link_report = self.forest.batch_link(replacement_edges)
            self.cluster.charge_broadcast(
                words=max(1, link_report.messages), category="tour-update"
            )
            touched = set(link_report.new_tours)
        else:
            touched = set()
        touched.update(tid for tid in fragments if self.forest.has_tour(tid))

        self.cluster.charge_broadcast(words=max(1, len(touched)),
                                      category="relabel")
        for tid in touched:
            self.components.relabel_min(self.forest.tour_vertices(tid))

    def _agm_replacements(
        self, fragments: List[int], members: Dict[int, np.ndarray]
    ) -> List[Edge]:
        """AGM halving iterations over the fragment sketches.

        Supernodes start as fragments; iteration ``i`` queries column
        ``cursor + i`` of every supernode's merged sketch, contracts
        along the recovered edges, and records one original graph edge
        per contraction -- exactly the F_H construction of Section 6.3.
        Supernodes are handled as *membership* lists (``members`` maps
        fragment tour id -> vertex rows); each iteration ships them to
        the execution backend, which merges the member rows against the
        shared pool and returns only the recovered edges
        (:meth:`SketchFamily.query_iteration_groups`).  Contracting two
        supernodes is then a list concatenation, and the answers stay
        bit-identical to the materialised-merge path.  No extra MPC
        rounds beyond the charged gather -- where the work *executes*
        is the backend's business.
        """
        leader = {tid: tid for tid in fragments}

        def find(x: int) -> int:
            while leader[x] != x:
                leader[x] = leader[leader[x]]
                x = leader[x]
            return x

        replacement: List[Edge] = []
        columns = self.family.columns
        roots: Set[int] = set(fragments)
        iterations = 0
        for it in range(columns):
            # Supernodes with an empty cut are finished components;
            # everything else must still have a replacement edge to
            # find.  One fused vectorized pass answers this halving
            # iteration's zero test and cut-edge query for every
            # supernode (only live ones pay for recovery).
            ordered = sorted(roots)
            if not ordered:
                break
            column = (self._column_cursor + it) % columns
            # repro-lint: disable=RL005 -- charged by the caller: _process_deletions pays one charge_gather per halving iteration; no extra MPC rounds happen here
            zeros, sampled = self.family.query_iteration_groups(
                [members[root] for root in ordered], column
            )
            if zeros.all():
                break
            iterations = it + 1
            candidates: List[Tuple[int, Edge]] = [
                (root, edge)
                for root, is_z, edge in zip(ordered, zeros, sampled)
                if not is_z and edge is not None
            ]
            for root, (a, b) in candidates:
                tid_a = self.forest.tree_id(a)
                tid_b = self.forest.tree_id(b)
                ra = find(tid_a) if tid_a in leader else None
                rb = find(tid_b) if tid_b in leader else None
                if ra is None or rb is None or ra == rb:
                    continue
                leader[ra] = rb
                # Supernode contraction = membership union; the rows
                # themselves never move.
                members[rb] = np.concatenate((members[rb], members[ra]))
                roots.discard(ra)
                replacement.append((a, b))
        self.stats["agm_iterations"] = max(
            self.stats["agm_iterations"], iterations
        )
        # Advance only past the columns actually consumed: a no-op
        # phase (no live fragments) must not burn fresh randomness.
        self._column_cursor = (self._column_cursor + iterations) % columns

        # Anything still live has a nonzero cut we failed to recover.
        remaining = sorted(roots)
        # repro-lint: disable=RL005 -- charged by the caller: folded into _process_deletions' charged gather; this sanity scan adds no rounds of its own
        leftover_zero = self.family.cuts_empty_groups(
            [members[r] for r in remaining]
        )
        leftovers = [root for root, is_z in zip(remaining, leftover_zero)
                     if not is_z]
        if leftovers:
            self.stats["sketch_failures"] += len(leftovers)
            if self.strict:
                raise SketchFailureError(
                    f"{len(leftovers)} fragment(s) kept a nonzero cut "
                    "after exhausting all sketch columns"
                )
        return replacement

    # ------------------------------------------------------------------
    # Memory accounting
    # ------------------------------------------------------------------
    def _register_memory(self) -> None:
        self._register("sketches", self.n * self.family.words_per_vertex)
        self._register("forest", self.forest.words)
        self._register("component-ids", self.components.words)

    def _sketch_families(self) -> list:
        return [self.family]
