"""The component-id array ``C`` (paper, Section 4.2).

``C[v]`` names the connected component of ``v``; the paper's convention
is that a component is named by its minimum vertex id, so two vertices
are connected iff their ids match, and reporting components is a sort.
The array costs exactly ``n`` words -- part of the ~O(n) budget.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

import numpy as np


class ComponentIds:
    """Dense ``C`` array with bulk relabeling helpers."""

    def __init__(self, n: int):
        if n < 1:
            raise ValueError("need at least one vertex")
        self.n = n
        self._ids = np.arange(n, dtype=np.int64)

    def id_of(self, v: int) -> int:
        return int(self._ids[v])

    def same(self, u: int, v: int) -> bool:
        return self._ids[u] == self._ids[v]

    def relabel(self, vertices: Iterable[int], new_id: int) -> None:
        idx = np.fromiter(vertices, dtype=np.int64)
        if idx.size:
            self._ids[idx] = new_id

    def relabel_min(self, vertices: Iterable[int]) -> int:
        """Set a component's id to its minimum member (paper convention);
        returns the id."""
        idx = np.fromiter(vertices, dtype=np.int64)
        if idx.size == 0:
            raise ValueError("cannot relabel an empty vertex set")
        new_id = int(idx.min())
        self._ids[idx] = new_id
        return new_id

    def num_components(self) -> int:
        return int(np.unique(self._ids).size)

    def component_of(self, v: int) -> List[int]:
        return np.flatnonzero(self._ids == self._ids[v]).tolist()

    def groups(self) -> Dict[int, List[int]]:
        """Component id -> sorted member list (query-time reporting)."""
        out: Dict[int, List[int]] = {}
        for v in range(self.n):
            out.setdefault(int(self._ids[v]), []).append(v)
        return out

    def as_array(self) -> np.ndarray:
        return self._ids.copy()

    @property
    def words(self) -> int:
        return self.n
