"""O(alpha)-approximate matching, insertion-only (Theorem 8.1).

The folklore bounded greedy: keep a matching M that is maximal among the
edges seen so far *or* has reached size ``cap = ceil(c * n / alpha)``.
While below the cap a maximal matching is a 2-approximation; once the
cap is hit, OPT <= n/2 gives ratio <= alpha / (2c).  Total memory is
~O(n / alpha) -- just the matching.

Batch processing is one broadcast: machines report which batch edges
have both endpoints unmatched, the dedicated machine absorbs them
greedily, O(1) rounds.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.api import BatchDynamicAlgorithm
from repro.errors import ConfigurationError, InvalidUpdateError
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import Cluster
from repro.types import MatchingSolution, Update


class GreedyMatchingInsertOnly(BatchDynamicAlgorithm):
    """Bounded greedy matching under insertion-only batches."""

    name = "matching-greedy"
    task = "matching_greedy"
    supports_deletions = False

    def __init__(self, config: MPCConfig, alpha: float = 2.0,
                 cap_constant: float = 1.0,
                 cluster: Optional[Cluster] = None,
                 batch_limit: Optional[int] = None):
        super().__init__(config, cluster=cluster, batch_limit=batch_limit)
        if alpha < 1:
            raise ConfigurationError("alpha must be at least 1")
        self.alpha = alpha
        self.cap = max(1, math.ceil(cap_constant * config.n / alpha))
        self._mate: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def matching(self) -> MatchingSolution:
        edges = sorted({(min(u, v), max(u, v))
                        for u, v in self._mate.items()})
        return MatchingSolution(edges=edges)

    def matching_size(self) -> int:
        return len(self._mate) // 2

    # ------------------------------------------------------------------
    def _process_batch(self, inserts: List[Update],
                       deletes: List[Update]) -> None:
        if deletes:
            raise InvalidUpdateError(
                "GreedyMatchingInsertOnly accepts insertion-only streams "
                "(Theorem 8.1); use AKLYMatching for dynamic streams"
            )
        if self.matching_size() >= self.cap:
            # |M| >= cn/alpha already certifies the approximation; the
            # batch is dropped without any communication (Theorem 8.1).
            return
        self.cluster.charge_broadcast(words=max(1, len(inserts)),
                                      category="batch")
        self.cluster.charge_local(category="filter")
        for up in inserts:
            if self.matching_size() >= self.cap:
                break
            if up.u not in self._mate and up.v not in self._mate:
                self._mate[up.u] = up.v
                self._mate[up.v] = up.u

    # ------------------------------------------------------------------
    def _register_memory(self) -> None:
        self._register("matching", len(self._mate))
