"""Exact minimum spanning forest, insertion-only streams (Section 7.1).

The folklore algorithm the paper parallelises: keep the current MSF F;
on insert {u, v}, if the endpoints are disconnected, link; otherwise
find the heaviest edge on the tree path u..v (Identify-Path, Lemma 7.2)
and swap if the new edge is lighter.  Batches run both cases in O(1)
rounds via the connectivity machinery: a local Kruskal over the
auxiliary graph H for cross-component edges, batched Identify-Path +
batch cut/link for intra-component swaps.

**Deviation from the paper (documented in DESIGN.md):** the paper's
single swap pass is not exact when candidate cycles interact -- an edge
can be the heaviest on a *mixed* cycle of two inserted edges without
being the heaviest on either fundamental cycle, so one pass can leave a
non-minimal tree.  We therefore iterate the pass until no improving swap
remains (each pass is O(1) rounds; the tree weight strictly decreases,
so at most |batch| passes occur and typically 1-2 do).  The fixpoint is
an MSF by the cycle property.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.core.api import BatchDynamicAlgorithm
from repro.core.components import ComponentIds
from repro.errors import InvalidUpdateError
from repro.euler.distributed import DistributedEulerForest
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import Cluster
from repro.types import Edge, ForestSolution, Update, canonical


class ExactMSFInsertOnly(BatchDynamicAlgorithm):
    """Maintains an exact MSF under batches of weighted insertions."""

    name = "msf-exact"
    task = "msf"
    supports_deletions = False

    def __init__(self, config: MPCConfig, cluster: Optional[Cluster] = None,
                 batch_limit: Optional[int] = None):
        super().__init__(config, cluster=cluster, batch_limit=batch_limit)
        self.forest = DistributedEulerForest(config.n)
        self.components = ComponentIds(config.n)
        # Weights of current *tree* edges only: O(n) words.
        self._weight: Dict[Edge, float] = {}
        self.stats = {"swap_passes": 0, "swaps": 0, "max_passes": 0}

    # ------------------------------------------------------------------
    def query_msf(self) -> ForestSolution:
        edges = sorted(self.forest.all_edges())
        weights = [self._weight[e] for e in edges]
        return ForestSolution(n=self.n, edges=edges, weights=weights)

    def connected(self, u: int, v: int) -> bool:
        return self.components.same(u, v)

    def num_components(self) -> int:
        return self.forest.num_components()

    def msf_weight(self) -> float:
        return float(sum(self._weight.values()))

    # ------------------------------------------------------------------
    def _process_batch(self, inserts: List[Update],
                       deletes: List[Update]) -> None:
        if deletes:
            raise InvalidUpdateError(
                "ExactMSFInsertOnly accepts insertion-only streams "
                "(Theorem 1.2(i)); use ApproxMSF for dynamic streams"
            )
        if not inserts:
            return
        # Candidate pool: the inserted edges with their weights.
        pool: Dict[Edge, float] = {}
        for up in inserts:
            pool[up.edge] = up.weight
        self.cluster.charge_broadcast(words=len(pool), category="batch")

        # Pass 0 links cross-component candidates (Case 1); subsequent
        # passes perform intra-component swaps (Case 2) to a fixpoint.
        passes = 0
        for _ in range(len(pool) + 1):
            passes += 1
            changed = self._one_pass(pool)
            if not changed:
                break
        self.stats["swap_passes"] += passes
        self.stats["max_passes"] = max(self.stats["max_passes"], passes)

    def _one_pass(self, pool: Dict[Edge, float]) -> bool:
        """One O(1)-round pass: evict beaten tree edges, Kruskal-insert.

        Returns True if the forest changed (another pass is needed to
        confirm the fixpoint).
        """
        if not pool:
            return False
        # Identify-Path for every intra-component candidate, in batch
        # (one broadcast of the f/l values, Lemma 7.2).
        self.cluster.charge_broadcast(words=len(pool),
                                      category="identify-path")
        evicted: Set[Edge] = set()
        cross_exists = False
        for edge, weight in pool.items():
            u, v = edge
            if not self.forest.connected(u, v):
                cross_exists = True
                continue
            heaviest = self._heaviest_on_path(u, v)
            if heaviest is not None and self._weight[heaviest] > weight:
                evicted.add(heaviest)
        if not evicted and not cross_exists:
            return False

        # Delete the evicted tree edges (batch split, one broadcast).
        if evicted:
            report = self.forest.batch_cut(sorted(evicted))
            self.cluster.charge_broadcast(words=max(1, report.messages),
                                          category="tour-update")
            for edge in evicted:
                pool[edge] = self._weight.pop(edge)

        # Kruskal over the auxiliary graph H of candidate edges --
        # all local on the machine holding the batch (Claim 6.1).
        self.cluster.charge_gather(total_words=len(pool),
                                   category="build-H")
        chosen = self._kruskal_on_components(pool)
        if chosen:
            report = self.forest.batch_link([e for e, _ in chosen])
            self.cluster.charge_broadcast(words=max(1, report.messages),
                                          category="tour-update")
            self.cluster.charge_broadcast(
                words=max(1, len(report.new_tours)), category="relabel"
            )
            for edge, weight in chosen:
                self._weight[edge] = weight
                del pool[edge]
            for tid in report.new_tours:
                self.components.relabel_min(self.forest.tour_vertices(tid))
            self.stats["swaps"] += len(chosen)
        elif evicted:
            # Eviction without replacement cannot happen: the evicted
            # edge's candidate always reconnects its split.
            raise AssertionError("evicted a tree edge with no replacement")
        return bool(evicted) or bool(chosen)

    def _heaviest_on_path(self, u: int, v: int) -> Optional[Edge]:
        path = self.forest.path_edges(u, v)
        if not path:
            return None
        return max(path, key=lambda e: (self._weight[e], e))

    def _kruskal_on_components(
        self, pool: Dict[Edge, float]
    ) -> List[Tuple[Edge, float]]:
        """Minimum spanning forest of H (components x candidate edges)."""
        leader: Dict[int, int] = {}

        def find(x: int) -> int:
            while leader.setdefault(x, x) != x:
                leader[x] = leader[leader[x]]
                x = leader[x]
            return x

        chosen: List[Tuple[Edge, float]] = []
        for edge, weight in sorted(pool.items(),
                                   key=lambda kv: (kv[1], kv[0])):
            u, v = edge
            cu = find(self.forest.tree_id(u))
            cv = find(self.forest.tree_id(v))
            if cu == cv:
                continue
            leader[cu] = cv
            chosen.append((edge, weight))
        return chosen

    # ------------------------------------------------------------------
    def _register_memory(self) -> None:
        self._register("forest", self.forest.words)
        self._register("tree-weights", len(self._weight))
        self._register("component-ids", self.components.words)
