"""Batch-dynamic maximal matching in MPC (Proposition 8.4, [NO21]).

The paper uses Nowicki-Onak's algorithm strictly as a black box: given a
(sparse) graph H under batch updates, maintain a *maximal* matching of H
in O(log 1/kappa) rounds per batch of O(s^{1-kappa}) updates with ~O(m_H)
total memory.  Any maximal matching satisfies Lemma 8.3's requirement (a
maximal matching is a 2-approximation), so we substitute a direct
batch-dynamic construction with the same interface and cost profile
(DESIGN.md, substitution table):

* insertions are absorbed greedily (an inserted edge is matched iff both
  endpoints are free);
* deleting matched edges exposes their endpoints; exposed vertices are
  re-matched by iterated proposal rounds over their adjacency lists,
  which mirrors the parallel re-matching phases of [NO21] and is charged
  ``ceil(log2(1/kappa)) + 1`` rounds.

The class stores H's adjacency -- Theta(m_H) words, which is exactly the
memory Proposition 8.4 budgets for the black box.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.errors import ConfigurationError
from repro.mpc.simulator import Cluster
from repro.types import Edge, MatchingSolution, canonical


class BatchDynamicMaximalMatching:
    """Maximal matching of an explicit graph H under batch updates.

    This is a component, not a top-level algorithm: the AKLY matcher and
    the dynamic Tester drive it with batches of sparsifier edges and
    charge its round cost on their own cluster.
    """

    def __init__(self, kappa: float = 0.5):
        if not 0 < kappa <= 1:
            raise ConfigurationError("kappa must lie in (0, 1]")
        self.kappa = kappa
        self._adj: Dict[int, Set[int]] = {}
        self._mate: Dict[int, int] = {}
        self._edge_count = 0

    # ------------------------------------------------------------------
    @property
    def rounds_per_batch(self) -> int:
        """The round charge for one batch (Proposition 8.4)."""
        return max(1, math.ceil(math.log2(1.0 / self.kappa))) + 1

    @property
    def num_edges(self) -> int:
        return self._edge_count

    @property
    def words(self) -> int:
        """~O(m_H): adjacency + matching state."""
        return 2 * self._edge_count + len(self._mate)

    def matching(self) -> MatchingSolution:
        edges = sorted({canonical(u, v) for u, v in self._mate.items()})
        return MatchingSolution(edges=edges)

    def matching_size(self) -> int:
        return len(self._mate) // 2

    def is_matched(self, v: int) -> bool:
        return v in self._mate

    def has_edge(self, u: int, v: int) -> bool:
        return v in self._adj.get(u, set())

    # ------------------------------------------------------------------
    def apply_batch(self, inserts: Iterable[Edge],
                    deletes: Iterable[Edge]) -> int:
        """Apply H-updates; returns the number of re-matching rounds.

        Deletions of unknown edges and duplicate insertions are ignored
        (the sparsifier layers can emit both when samplers churn).
        """
        exposed: Set[int] = set()
        for u, v in deletes:
            if not self.has_edge(u, v):
                continue
            self._adj[u].discard(v)
            self._adj[v].discard(u)
            self._edge_count -= 1
            if self._mate.get(u) == v:
                del self._mate[u]
                del self._mate[v]
                exposed.add(u)
                exposed.add(v)
        for u, v in inserts:
            if u == v or self.has_edge(u, v):
                continue
            self._adj.setdefault(u, set()).add(v)
            self._adj.setdefault(v, set()).add(u)
            self._edge_count += 1
            if u not in self._mate and v not in self._mate:
                self._mate[u] = v
                self._mate[v] = u
                exposed.discard(u)
                exposed.discard(v)
        self._rematch(exposed)
        return self.rounds_per_batch

    def _rematch(self, exposed: Set[int]) -> None:
        """Proposal rounds: exposed vertices grab free neighbours.

        Processing proposals vertex-by-vertex within a round keeps the
        result exactly maximal (the parallel version resolves conflicts
        by independent sets; the outcome set is equivalent for our use).
        """
        frontier = {v for v in exposed if v not in self._mate}
        while frontier:
            next_frontier: Set[int] = set()
            progress = False
            for v in sorted(frontier):
                if v in self._mate:
                    continue
                partner = None
                for u in sorted(self._adj.get(v, ())):
                    if u not in self._mate:
                        partner = u
                        break
                if partner is not None:
                    self._mate[v] = partner
                    self._mate[partner] = v
                    progress = True
            if not progress:
                break
            frontier = next_frontier

    def check_maximal(self) -> None:
        """Test hook: assert no edge has both endpoints free."""
        for u, neighbors in self._adj.items():
            for v in neighbors:
                if u not in self._mate and v not in self._mate:
                    raise AssertionError(
                        f"matching not maximal: ({u}, {v}) is free"
                    )
        for u, v in self._mate.items():
            if self._mate.get(v) != u:
                raise AssertionError("mate map is not symmetric")
            if not self.has_edge(u, v):
                raise AssertionError(
                    f"matched pair ({u}, {v}) is not an edge"
                )
