"""The paper's algorithms: batch-dynamic connectivity, MSF,
bipartiteness, and approximate matching in the streaming MPC model."""

from repro.core.api import BatchDynamicAlgorithm, UpdateValidator
from repro.core.bipartiteness import DynamicBipartiteness
from repro.core.components import ComponentIds
from repro.core.connectivity import MPCConnectivity
from repro.core.matching_akly import AKLYMatching
from repro.core.matching_greedy import GreedyMatchingInsertOnly
from repro.core.matching_tester import MatchingSizeEstimator, MatchingTester
from repro.core.maximal_matching import BatchDynamicMaximalMatching
from repro.core.msf_approx import ApproxMSF
from repro.core.msf_exact import ExactMSFInsertOnly
from repro.core.streaming_connectivity import StreamingConnectivity

__all__ = [
    "BatchDynamicAlgorithm",
    "UpdateValidator",
    "DynamicBipartiteness",
    "ComponentIds",
    "MPCConnectivity",
    "AKLYMatching",
    "GreedyMatchingInsertOnly",
    "MatchingSizeEstimator",
    "MatchingTester",
    "BatchDynamicMaximalMatching",
    "ApproxMSF",
    "ExactMSFInsertOnly",
    "StreamingConnectivity",
]
