"""Dynamic bipartiteness testing (Section 7.3 / Theorem 7.3).

AGM's double-cover reduction: build G' on vertex set {v1, v2 : v in V}
with edges {u1, v2} and {u2, v1} for every edge {u, v}.  G is bipartite
iff G' has exactly twice as many connected components as G (Lemma 7.4).
We therefore run two batch-dynamic connectivity instances -- one on G,
one on G' (2n vertices, 2 updates per update) -- in parallel and compare
component counts at query time.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.api import BatchDynamicAlgorithm
from repro.core.connectivity import MPCConnectivity
from repro.mpc.config import MPCConfig
from repro.mpc.simulator import Cluster
from repro.types import Update


class DynamicBipartiteness(BatchDynamicAlgorithm):
    """Maintains whether the evolving graph is bipartite."""

    name = "bipartiteness"
    task = "bipartiteness"

    def __init__(self, config: MPCConfig, cluster: Optional[Cluster] = None,
                 batch_limit: Optional[int] = None, backend=None):
        super().__init__(config, cluster=cluster, batch_limit=batch_limit,
                         backend=backend)
        # The two instances run on their own (parallel) machine groups
        # but inherit this algorithm's execution backend, so one worker
        # fleet serves the whole reduction.
        self.base = MPCConnectivity(config, track_edges=False,
                                    backend=self.cluster.backend)
        double_config = MPCConfig(
            n=2 * config.n,
            phi=config.phi,
            mem_factor=config.mem_factor,
            total_memory_factor=config.total_memory_factor,
            strict_capacity=config.strict_capacity,
            seed=config.seed + 1,
            backend=config.backend,
            backend_workers=config.backend_workers,
        )
        # The double cover receives two updates per graph update, so its
        # per-phase limit must be twice ours.
        self.cover = MPCConnectivity(double_config, track_edges=False,
                                     batch_limit=2 * self.batch_limit,
                                     backend=self.cluster.backend)

    # ------------------------------------------------------------------
    def _cover_updates(self, up: Update) -> List[Update]:
        n = self.config.n
        return [
            Update(up.op, up.u, up.v + n, up.weight),
            Update(up.op, up.u + n, up.v, up.weight),
        ]

    def _process_batch(self, inserts: List[Update],
                       deletes: List[Update]) -> None:
        batch = inserts + deletes
        base_snapshot = self.base.apply_batch(batch)
        cover_batch: List[Update] = []
        for up in batch:
            cover_batch.extend(self._cover_updates(up))
        cover_snapshot = self.cover.apply_batch(cover_batch)
        # The two instances run in parallel on disjoint machine groups.
        self.cluster.metrics.charge_rounds(
            max(base_snapshot.rounds, cover_snapshot.rounds),
            "parallel-instances",
        )

    # ------------------------------------------------------------------
    def is_bipartite(self) -> bool:
        """Lemma 7.4: bipartite iff cc(G') == 2 * cc(G)."""
        return self.cover.num_components() == 2 * self.base.num_components()

    def num_components(self) -> int:
        return self.base.num_components()

    def _register_memory(self) -> None:
        self._register("base-instance", self.base.total_memory_words())
        self._register("cover-instance", self.cover.total_memory_words())

    def _members(self) -> List[BatchDynamicAlgorithm]:
        return [self.base, self.cover]
