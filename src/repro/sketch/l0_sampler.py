"""L0-samplers over an arbitrary coordinate universe (Lemma 3.1, [CJ19]).

An :class:`L0Sampler` receives ``+-1`` updates to a vector ``x`` over
``[universe]`` and, on query, returns some coordinate of the current
support (or ``None`` for the zero vector / the small failure event).
It is *linear*: adding two samplers' states gives a sampler for the sum
of their vectors (Remark 3.2) -- the property every algorithm in the
paper leans on.

Construction: ``columns`` independent repetitions; in each column a
pairwise-independent hash assigns every coordinate a geometric level
(``P[level >= l] = 2^-l``) and a 1-sparse recovery cell is kept per
level prefix.  A query scans the cells for one that passes the
fingerprint test.  Each column succeeds with constant probability on a
nonzero vector, so ``columns = O(log(1/delta))`` boosts to ``1 - delta``.

Bulk ingestion: :meth:`L0Sampler.update_many` ingests a whole batch of
coordinate updates with array-level hashing (`levels_of_many`,
`zpow_many`) and one scatter per recovery quantity -- bit-identical to
a loop of :meth:`L0Sampler.update` calls, minus the per-update Python
dispatch.

Bulk queries mirror it on the way out: :meth:`L0Sampler.sample_columns`
decodes many columns of one sampler in a single pass, and the static
:meth:`L0Sampler.sample_many` / :meth:`L0Sampler.is_zero_many` stack
the cells of many samplers sharing one randomness and answer all of
them at once -- the shape the AGM halving iterations consume (one
column across all live supernodes per iteration).
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from repro import kernels as _kernels
from repro.errors import SketchError
from repro.lint.markers import spawn_safe
from repro.sketch.hashing import (
    LRUMemo,
    MERSENNE_P,
    PairwiseHash,
    mulmod_many,
    poly_field_values,
    random_field_element,
    trailing_zeros,
    trailing_zeros_many,
)
from repro.sketch.sparse_recovery import (
    MergeScratch,
    RecoveryMatrix,
    _suffix_cumsum,
    merge_group_cells,
    recover_from_prefix,
)

#: Cap on the per-coordinate memo caches of :class:`SamplerRandomness`.
#: The caches only help when the stream revisits coordinates
#: (insert/delete churn); bounding them turns an unbounded slow leak on
#: long streams into a fixed O(1) footprint.  Eviction is
#: least-recently-used (:class:`~repro.sketch.hashing.LRUMemo`), so a
#: hot coordinate re-queried through capacity churn stays memoized.
CACHE_LIMIT = 1 << 16


def levels_for_universe(universe: int) -> int:
    """Number of geometric levels: ``ceil(log2 universe) + 2``."""
    if universe < 1:
        raise ValueError("universe must contain at least one coordinate")
    return max(2, math.ceil(math.log2(max(2, universe))) + 2)


@spawn_safe
class SamplerRandomness:
    """Shared randomness for a *family* of mergeable samplers.

    Two samplers can only be merged when they were built from the same
    randomness (same level hashes, same fingerprint base), so the
    algorithms create one :class:`SamplerRandomness` per logical vector
    family and derive all samplers from it.

    Scalar lookups (:meth:`levels_of`, :meth:`zpow`) memoize per
    coordinate in bounded FIFO caches; the array flavours
    (:meth:`levels_of_many`, :meth:`zpow_many`) recompute vectorized --
    for a batch, the array path is far cheaper than filling the caches.
    """

    def __init__(self, universe: int, columns: int,
                 rng: np.random.Generator):
        if columns < 1:
            raise ValueError("need at least one column")
        level_range = 1 << levels_for_universe(universe)
        hashes = [PairwiseHash(level_range, rng) for _ in range(columns)]
        self._init_state(universe, columns, hashes,
                         random_field_element(rng))

    def _init_state(self, universe: int, columns: int,
                    hashes: "List[PairwiseHash]", z: int) -> None:
        """Shared tail of ``__init__`` and :meth:`from_params`: derive
        every cached structure from the defining ``(universe, columns,
        hashes, z)`` parameters, drawing no randomness."""
        self.universe = universe
        self.columns = columns
        self.levels = levels_for_universe(universe)
        self._level_range = 1 << self.levels
        self.level_hashes: List[PairwiseHash] = hashes
        self.z = z
        self._zpow_cache = LRUMemo(CACHE_LIMIT)
        self._levels_cache = LRUMemo(CACHE_LIMIT)
        # Stacked coefficients of the per-column pairwise hashes:
        # row j holds coefficient a_j of every column's polynomial.
        self._coeff_matrix = np.array(
            [[h.coeffs[j] for h in self.level_hashes] for j in range(2)],
            dtype=np.uint64,
        )
        self._range_mask = np.uint64(self._level_range - 1)

    # -- spawn-safe reconstruction --------------------------------------
    def params(self) -> tuple:
        """The defining parameters: ``(universe, columns, z, coeffs)``.

        Everything else (caches, coefficient matrix, power ladder) is
        derived; two instances with equal params behave identically on
        every input.
        """
        return (
            self.universe,
            self.columns,
            self.z,
            tuple(tuple(h.coeffs) for h in self.level_hashes),
        )

    @classmethod
    def from_params(cls, universe: int, columns: int, z: int,
                    level_coeffs) -> "SamplerRandomness":
        """Rebuild identical randomness from :meth:`params` alone.

        The spawn-safe constructor used by the execution-backend
        workers: no ``rng`` is consumed and no caches are shipped, yet
        the rebuilt instance hashes, levels, and fingerprints exactly
        like the original -- the contract the backend's bit-identical
        guarantee rests on.
        """
        if columns < 1 or len(level_coeffs) != columns:
            raise ValueError("level_coeffs must supply one coefficient "
                             "pair per column")
        level_range = 1 << levels_for_universe(universe)
        hashes = [PairwiseHash.from_params(level_range, coeffs)
                  for coeffs in level_coeffs]
        self = cls.__new__(cls)
        self._init_state(universe, columns, hashes, int(z))
        return self

    def __reduce__(self):
        return (_randomness_from_params, self.params())

    def levels_of(self, idx: int) -> np.ndarray:
        """Per-column top level of coordinate ``idx`` (cached)."""
        cached = self._levels_cache.get(idx)
        if cached is not None:
            return cached
        out = np.fromiter(
            (
                trailing_zeros(h(idx), self.levels - 1)
                for h in self.level_hashes
            ),
            dtype=np.int64,
            count=self.columns,
        )
        self._levels_cache.put(idx, out)
        return out

    def levels_of_many(self, idxs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`levels_of`: ``(e,)`` -> ``(e, columns)``.

        Evaluates every column's pairwise hash on the whole batch with
        the limb-arithmetic field evaluation; bit-identical to the
        scalar path.
        """
        idxs = np.asarray(idxs, dtype=np.int64)
        if idxs.size == 0:
            return np.empty((0, self.columns), dtype=np.int64)
        points = idxs.astype(np.uint64)
        values = poly_field_values(self._coeff_matrix, points)
        values &= self._range_mask
        return trailing_zeros_many(values, self.levels - 1)

    def zpow(self, idx: int) -> int:
        """``z^idx mod p`` (cached; edges repeat across insert/delete)."""
        cached = self._zpow_cache.get(idx)
        if cached is not None:
            return cached
        value = pow(self.z, idx, MERSENNE_P)
        self._zpow_cache.put(idx, value)
        return value

    def zpow_many(self, idxs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`zpow`: kernel-tier binary exponentiation.

        Returns int64 values in ``[0, p)``, bit-identical to
        ``pow(z, idx, p)`` (canonical residues are unique, so the tiers
        agree exactly).
        """
        idxs = np.asarray(idxs, dtype=np.int64)
        return _kernels.powmod_many(idxs.astype(np.uint64), self.z)

    def fingerprint_ok(self, idx: int, w: int, f: int) -> bool:
        """Verify ``F == W * z^idx`` and the level membership of ``idx``."""
        return (w % MERSENNE_P) * self.zpow(idx) % MERSENNE_P == f

    def fingerprint_ok_many(self, idxs: np.ndarray, ws: np.ndarray,
                            fs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`fingerprint_ok` over candidate arrays.

        ``ws`` may be any int64 values (reduced mod p first, matching
        the scalar path); ``fs`` are combined fingerprints in
        ``[0, p)``.  Bit-identical to the scalar check per candidate.
        """
        wm = (ws % MERSENNE_P).astype(np.uint64)
        zp = self.zpow_many(idxs).astype(np.uint64)
        return mulmod_many(wm, zp).astype(np.int64) == fs


def _randomness_from_params(universe, columns, z,
                            level_coeffs) -> SamplerRandomness:
    """Pickle hook for :meth:`SamplerRandomness.__reduce__` (module-level
    so the reducer pickles by reference under every protocol)."""
    return SamplerRandomness.from_params(universe, columns, z,
                                         level_coeffs)


# ---------------------------------------------------------------------------
# Cell-block query cores
# ---------------------------------------------------------------------------
# The vectorized query primitives, factored to operate on a raw
# ``(k, 4, columns, levels)`` cell stack.  The L0Sampler statics wrap
# them for sampler lists; the execution backends call them directly on
# row shards of a shared-memory pool -- one definition, so every route
# answers bit-identically.

def is_zero_cells(cells: np.ndarray) -> np.ndarray:
    """Per-row all-columns zero test over a ``(k, 4, c, L)`` stack."""
    return _kernels.is_zero_cells(cells)


def sample_cells(cells: np.ndarray, cols: np.ndarray,
                 randomness: SamplerRandomness) -> np.ndarray:
    """Per-row one-column recovery; ``cols`` has shape ``(k,)``."""
    k = cells.shape[0]
    block = cells[np.arange(k), :, cols, :]            # (k, 4, levels)
    prefix = np.cumsum(block[..., ::-1], axis=-1)[..., ::-1]
    return _kernels.decode_prefix(
        prefix.transpose(1, 0, 2), randomness.universe, randomness.z
    )


def query_cells(cells: np.ndarray, cols: np.ndarray,
                randomness: SamplerRandomness
                ) -> "tuple[np.ndarray, np.ndarray]":
    """Fused zero test + one-column recovery over a cell stack.

    Returns ``(zeros, found)``; only the non-zero rows pay for
    recovery, and ``found`` is ``-1`` for zero rows and failed
    recovery alike.
    """
    k = cells.shape[0]
    zeros = _kernels.is_zero_cells(cells)
    found = np.full(k, -1, dtype=np.int64)
    live = np.flatnonzero(~zeros)
    if live.size:
        block = cells[live, :, cols[live], :]          # (l, 4, levels)
        prefix = np.cumsum(block[..., ::-1], axis=-1)[..., ::-1]
        found[live] = _kernels.decode_prefix(
            prefix.transpose(1, 0, 2), randomness.universe, randomness.z
        )
    return zeros, found


def query_group_cells(cells: np.ndarray, groups: "List[np.ndarray]",
                      cols: np.ndarray,
                      randomness: SamplerRandomness
                      ) -> "tuple[np.ndarray, np.ndarray]":
    """Fused zero test + one-column recovery over merged *groups*.

    ``groups`` is a list of row-index arrays into ``cells`` (supernode
    membership); group ``i`` is merged by summing its member rows and
    queried on column ``cols[i]``.  The membership-shipped twin of
    :func:`query_cells`: the execution backends run this where the pool
    lives, so the parent never materialises merged supernode cells.
    Answers are bit-identical to merging first and querying after (see
    :func:`~repro.sketch.sparse_recovery.merge_group_cells`).
    """
    return query_cells(merge_group_cells(cells, groups), cols,
                       randomness)


def zero_group_cells(cells: np.ndarray,
                     groups: "List[np.ndarray]") -> np.ndarray:
    """Per-group all-columns zero test over merged member rows."""
    return is_zero_cells(merge_group_cells(cells, groups))


def scan_group_cells(cells: np.ndarray, members: np.ndarray,
                     cols: np.ndarray,
                     randomness: SamplerRandomness
                     ) -> "tuple[bool, np.ndarray]":
    """Zero test + a whole column scan of *one* merged group.

    Merges the ``members`` rows once, answers the empty-cut test, and
    (when non-zero) decodes every requested column in one pass --
    the replacement-search shape of
    :meth:`~repro.core.streaming_connectivity.StreamingConnectivity`.
    Returns ``(is_zero, found)`` with ``found[i]`` the recovery of
    ``cols[i]`` (``-1`` for rejection; all ``-1`` when zero).
    """
    merged = merge_group_cells(cells, [members])
    if bool(is_zero_cells(merged)[0]):
        return True, np.full(cols.shape[0], -1, dtype=np.int64)
    prefix = _suffix_cumsum(merged[0][:, cols, :])       # (4, k, L)
    return False, recover_from_prefix(
        prefix, randomness.universe, randomness.fingerprint_ok_many
    )


def update_grouped(samplers, randomness: SamplerRandomness,
                   entries) -> None:
    """Group ``(key, idx, delta)`` entries by key and bulk-update each
    key's sampler, creating missing samplers from ``randomness``.

    The marshalling shared by the matching sparsifiers: ``samplers``
    is a dict the caller owns; per-key update order follows the entry
    order, so the result is bit-identical to a scalar update loop.
    """
    per_key: dict = {}
    for key, idx, delta in entries:
        per_key.setdefault(key, []).append((idx, delta))
    for key, pairs in per_key.items():
        sampler = samplers.get(key)
        if sampler is None:
            sampler = L0Sampler(randomness)
            samplers[key] = sampler
        count = len(pairs)
        sampler.update_many(
            np.fromiter((idx for idx, _ in pairs), dtype=np.int64,
                        count=count),
            np.fromiter((delta for _, delta in pairs), dtype=np.int64,
                        count=count),
        )


class L0Sampler:
    """A mergeable L0-sampler for one vector.

    Use :meth:`update` / :meth:`update_many` during the stream,
    :meth:`sample` on query.  ``sample`` returns ``None`` both for the
    zero vector and on the (rare) per-column failures; :meth:`is_zero`
    separates the two cases up to the fingerprint's negligible
    false-zero probability.
    """

    __slots__ = ("randomness", "matrix")

    def __init__(self, randomness: SamplerRandomness,
                 matrix: Optional[RecoveryMatrix] = None):
        self.randomness = randomness
        self.matrix = matrix if matrix is not None else RecoveryMatrix(
            randomness.columns, randomness.levels
        )

    # ------------------------------------------------------------------
    def update(self, idx: int, delta: int) -> None:
        """Add ``delta`` (usually +-1) at coordinate ``idx``."""
        if not 0 <= idx < self.randomness.universe:
            raise ValueError(
                f"coordinate {idx} outside universe "
                f"[0, {self.randomness.universe})"
            )
        if delta == 0:
            return
        self.matrix.apply(
            self.randomness.levels_of(idx), idx, delta,
            self.randomness.zpow(idx),
        )

    def update_many(self, idxs: np.ndarray, deltas: np.ndarray) -> None:
        """Add many ``(idx, delta)`` updates with vectorized hashing.

        Bit-identical to ``for idx, delta in zip(idxs, deltas):
        self.update(idx, delta)`` -- same recovery state, same samples
        -- but the hashing, the ``z^idx`` powers, and the cell scatter
        all run as single array operations.
        """
        idxs = np.asarray(idxs, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        if idxs.shape != deltas.shape:
            raise ValueError("idxs and deltas must have the same shape")
        if idxs.size == 0:
            return
        if (int(idxs.min()) < 0
                or int(idxs.max()) >= self.randomness.universe):
            raise ValueError(
                f"coordinate outside universe "
                f"[0, {self.randomness.universe})"
            )
        live = deltas != 0
        if not live.all():
            idxs = idxs[live]
            deltas = deltas[live]
            if idxs.size == 0:
                return
        if idxs.size == 1:
            # Tiny batches are cheaper through the memoized scalar path.
            self.update(int(idxs[0]), int(deltas[0]))
            return
        self.matrix.apply_many(
            self.randomness.levels_of_many(idxs), idxs, deltas,
            self.randomness.zpow_many(idxs),
        )

    def merge_from(self, other: "L0Sampler") -> None:
        if other.randomness is not self.randomness:
            raise SketchError(
                "samplers built from different randomness cannot be merged"
            )
        self.matrix.merge_from(other.matrix)

    def copy(self) -> "L0Sampler":
        return L0Sampler(self.randomness, self.matrix.copy())

    @staticmethod
    def merged(samplers: "list[L0Sampler]",
               scratch: Optional[MergeScratch] = None) -> "L0Sampler":
        """A fresh sampler holding the sum of the given samplers.

        With ``scratch`` given, the accumulator matrix comes from the
        scratch pool (valid until the pool's next ``reset``) instead
        of a per-merge allocation.  Empty input or mixed randomness
        raises :class:`~repro.errors.SketchError`.
        """
        if not samplers:
            raise SketchError("need at least one sampler")
        randomness = samplers[0].randomness
        for sampler in samplers:
            if sampler.randomness is not randomness:
                raise SketchError("mixed randomness in merge")
        return L0Sampler(
            randomness,
            RecoveryMatrix.sum_of([s.matrix for s in samplers],
                                  scratch=scratch),
        )

    # ------------------------------------------------------------------
    def sample_column(self, col: int) -> Optional[int]:
        """Recover a support coordinate from one column, or ``None``."""
        return self.matrix.recover(
            col, self.randomness.universe, self.randomness.fingerprint_ok
        )

    def sample_columns(self, cols: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`sample_column` over many columns.

        One cumulative sum + decode pass covers every requested column
        (in the given order, repeats allowed); ``-1`` stands in for
        ``None``.  Bit-identical to the scalar scan per column.
        """
        return self.matrix.recover_many(
            cols, self.randomness.universe,
            self.randomness.fingerprint_ok_many,
        )

    def sample(self, start_column: int = 0) -> Optional[int]:
        """Try every column (starting from ``start_column``) in turn.

        All columns are decoded in one vectorized pass; the answer is
        the first succeeding column in rotation order, exactly as the
        scalar loop would return it.
        """
        columns = self.randomness.columns
        order = (start_column + np.arange(columns, dtype=np.int64)) \
            % columns
        found = self.sample_columns(order)
        hits = np.flatnonzero(found >= 0)
        if hits.size == 0:
            return None
        return int(found[hits[0]])

    def is_zero(self) -> bool:
        """True iff the sketched vector is zero (w.h.p.).

        Requires every column's level-0 cell to be the zero triple,
        driving the false-zero probability to ``(N/p)^columns``.  One
        level-axis reduction checks all columns at once.
        """
        return bool(self.matrix.column_is_zero_many().all())

    # -- batched queries over many samplers -----------------------------
    @staticmethod
    def _stacked_cells(samplers: "list[L0Sampler]") -> np.ndarray:
        """The ``(k, 4, columns, levels)`` cell stack of many samplers.

        All samplers must share one :class:`SamplerRandomness`;
        violations raise :class:`~repro.errors.SketchError`.  When
        every sampler is a view into the same
        :class:`~repro.sketch.sparse_recovery.RecoveryPool` the stack
        is a single fancy gather from the pool block -- and the
        identity gather (all slots in order) is a zero-copy view.  The
        result is read-only by convention: every batched query only
        reads it.
        """
        if not samplers:
            raise SketchError("need at least one sampler")
        randomness = samplers[0].randomness
        for sampler in samplers:
            if sampler.randomness is not randomness:
                raise SketchError("mixed randomness in batched query")
        pool = samplers[0].matrix._pool
        if pool is not None and all(s.matrix._pool is pool
                                    for s in samplers):
            slots = np.fromiter((s.matrix._pool_slot for s in samplers),
                                dtype=np.int64, count=len(samplers))
            if (len(samplers) == pool.count
                    and np.array_equal(slots,
                                       np.arange(pool.count,
                                                 dtype=np.int64))):
                return pool.cells
            return pool.cells[slots]
        return np.stack([s.matrix.cells for s in samplers])

    @staticmethod
    def query_many(samplers: "list[L0Sampler]",
                   columns) -> "tuple[np.ndarray, np.ndarray]":
        """One AGM halving iteration's answers for many samplers.

        Fuses :meth:`is_zero_many` and :meth:`sample_many` over a
        single cell stack: returns ``(zeros, found)`` where
        ``zeros[i] == samplers[i].is_zero()`` and ``found[i]`` is
        ``samplers[i].sample_column(columns[i])`` for the non-zero
        samplers (``-1`` both for zero sketches and failed recovery).
        Only the live rows pay for recovery, which is what the
        halving-iteration consumers need: dead supernodes are detected
        and skipped inside the same vectorized pass.
        """
        cells = L0Sampler._stacked_cells(samplers)
        cols = np.broadcast_to(np.asarray(columns, dtype=np.int64),
                               (cells.shape[0],))
        return query_cells(cells, cols, samplers[0].randomness)

    @staticmethod
    def is_zero_many(samplers: "list[L0Sampler]") -> np.ndarray:
        """Vectorized :meth:`is_zero` over a list of samplers.

        Returns the boolean array with entry ``i`` equal to
        ``samplers[i].is_zero()`` -- one stacked reduction instead of a
        Python loop over samplers and columns.
        """
        return is_zero_cells(L0Sampler._stacked_cells(samplers))

    @staticmethod
    def sample_many(samplers: "list[L0Sampler]",
                    columns) -> np.ndarray:
        """Vectorized :meth:`sample_column` across many samplers.

        ``columns`` is one shared column index or a per-sampler array;
        entry ``i`` of the result equals
        ``samplers[i].sample_column(columns[i])`` with ``-1`` for
        ``None``.  The whole batch -- every sampler's chosen column --
        is prefix-summed and decoded in a single array pass against
        the shared randomness.
        """
        cells = L0Sampler._stacked_cells(samplers)
        cols = np.broadcast_to(np.asarray(columns, dtype=np.int64),
                               (cells.shape[0],))
        return sample_cells(cells, cols, samplers[0].randomness)

    @property
    def words(self) -> int:
        return self.matrix.words
