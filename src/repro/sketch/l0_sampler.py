"""L0-samplers over an arbitrary coordinate universe (Lemma 3.1, [CJ19]).

An :class:`L0Sampler` receives ``+-1`` updates to a vector ``x`` over
``[universe]`` and, on query, returns some coordinate of the current
support (or ``None`` for the zero vector / the small failure event).
It is *linear*: adding two samplers' states gives a sampler for the sum
of their vectors (Remark 3.2) -- the property every algorithm in the
paper leans on.

Construction: ``columns`` independent repetitions; in each column a
pairwise-independent hash assigns every coordinate a geometric level
(``P[level >= l] = 2^-l``) and a 1-sparse recovery cell is kept per
level prefix.  A query scans the cells for one that passes the
fingerprint test.  Each column succeeds with constant probability on a
nonzero vector, so ``columns = O(log(1/delta))`` boosts to ``1 - delta``.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

import numpy as np

from repro.sketch.hashing import (
    MERSENNE_P,
    PairwiseHash,
    random_field_element,
    trailing_zeros,
)
from repro.sketch.sparse_recovery import RecoveryMatrix


def levels_for_universe(universe: int) -> int:
    """Number of geometric levels: ``ceil(log2 universe) + 2``."""
    if universe < 1:
        raise ValueError("universe must contain at least one coordinate")
    return max(2, math.ceil(math.log2(max(2, universe))) + 2)


class SamplerRandomness:
    """Shared randomness for a *family* of mergeable samplers.

    Two samplers can only be merged when they were built from the same
    randomness (same level hashes, same fingerprint base), so the
    algorithms create one :class:`SamplerRandomness` per logical vector
    family and derive all samplers from it.
    """

    def __init__(self, universe: int, columns: int,
                 rng: np.random.Generator):
        if columns < 1:
            raise ValueError("need at least one column")
        self.universe = universe
        self.columns = columns
        self.levels = levels_for_universe(universe)
        self._level_range = 1 << self.levels
        self.level_hashes: List[PairwiseHash] = [
            PairwiseHash(self._level_range, rng) for _ in range(columns)
        ]
        self.z = random_field_element(rng)
        self._zpow_cache: Dict[int, int] = {}
        self._levels_cache: Dict[int, np.ndarray] = {}

    def levels_of(self, idx: int) -> np.ndarray:
        """Per-column top level of coordinate ``idx`` (cached)."""
        cached = self._levels_cache.get(idx)
        if cached is not None:
            return cached
        out = np.fromiter(
            (
                trailing_zeros(h(idx), self.levels - 1)
                for h in self.level_hashes
            ),
            dtype=np.int64,
            count=self.columns,
        )
        self._levels_cache[idx] = out
        return out

    def zpow(self, idx: int) -> int:
        """``z^idx mod p`` (cached; edges repeat across insert/delete)."""
        cached = self._zpow_cache.get(idx)
        if cached is not None:
            return cached
        value = pow(self.z, idx, MERSENNE_P)
        self._zpow_cache[idx] = value
        return value

    def fingerprint_ok(self, idx: int, w: int, f: int) -> bool:
        """Verify ``F == W * z^idx`` and the level membership of ``idx``."""
        return (w % MERSENNE_P) * self.zpow(idx) % MERSENNE_P == f


class L0Sampler:
    """A mergeable L0-sampler for one vector.

    Use :meth:`update` during the stream, :meth:`sample` on query.
    ``sample`` returns ``None`` both for the zero vector and on the
    (rare) per-column failures; :meth:`is_zero` separates the two cases
    up to the fingerprint's negligible false-zero probability.
    """

    __slots__ = ("randomness", "matrix")

    def __init__(self, randomness: SamplerRandomness,
                 matrix: Optional[RecoveryMatrix] = None):
        self.randomness = randomness
        self.matrix = matrix if matrix is not None else RecoveryMatrix(
            randomness.columns, randomness.levels
        )

    # ------------------------------------------------------------------
    def update(self, idx: int, delta: int) -> None:
        """Add ``delta`` (usually +-1) at coordinate ``idx``."""
        if not 0 <= idx < self.randomness.universe:
            raise ValueError(
                f"coordinate {idx} outside universe "
                f"[0, {self.randomness.universe})"
            )
        if delta == 0:
            return
        self.matrix.apply(
            self.randomness.levels_of(idx), idx, delta,
            self.randomness.zpow(idx),
        )

    def merge_from(self, other: "L0Sampler") -> None:
        if other.randomness is not self.randomness:
            raise ValueError(
                "samplers built from different randomness cannot be merged"
            )
        self.matrix.merge_from(other.matrix)

    def copy(self) -> "L0Sampler":
        return L0Sampler(self.randomness, self.matrix.copy())

    @staticmethod
    def merged(samplers: "list[L0Sampler]") -> "L0Sampler":
        """A fresh sampler holding the sum of the given samplers."""
        if not samplers:
            raise ValueError("need at least one sampler")
        randomness = samplers[0].randomness
        for sampler in samplers:
            if sampler.randomness is not randomness:
                raise ValueError("mixed randomness in merge")
        return L0Sampler(
            randomness,
            RecoveryMatrix.sum_of([s.matrix for s in samplers]),
        )

    # ------------------------------------------------------------------
    def sample_column(self, col: int) -> Optional[int]:
        """Recover a support coordinate from one column, or ``None``."""
        return self.matrix.recover(
            col, self.randomness.universe, self.randomness.fingerprint_ok
        )

    def sample(self, start_column: int = 0) -> Optional[int]:
        """Try every column (starting from ``start_column``) in turn."""
        for offset in range(self.randomness.columns):
            col = (start_column + offset) % self.randomness.columns
            found = self.sample_column(col)
            if found is not None:
                return found
        return None

    def is_zero(self) -> bool:
        """True iff the sketched vector is zero (w.h.p.).

        Requires every column's level-0 cell to be the zero triple,
        driving the false-zero probability to ``(N/p)^columns``.
        """
        return all(
            self.matrix.column_is_zero(col)
            for col in range(self.randomness.columns)
        )

    @property
    def words(self) -> int:
        return self.matrix.words
