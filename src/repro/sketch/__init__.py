"""Linear sketching substrate: hashing, 1-sparse recovery, L0-sampling,
and the AGM graph sketches built from them (paper, Section 3.1)."""

from repro.sketch.edge_coding import (
    decode_index,
    edge_sign,
    encode_edge,
    num_pairs,
)
from repro.sketch.graph_sketch import MergedSketch, SketchFamily, VertexSketch
from repro.sketch.hashing import (
    MERSENNE_P,
    FourWiseHash,
    KWiseHash,
    PairwiseHash,
    random_field_element,
    trailing_zeros,
)
from repro.sketch.l0_sampler import (
    L0Sampler,
    SamplerRandomness,
    levels_for_universe,
)
from repro.sketch.sparse_recovery import RecoveryMatrix

__all__ = [
    "decode_index",
    "edge_sign",
    "encode_edge",
    "num_pairs",
    "MergedSketch",
    "SketchFamily",
    "VertexSketch",
    "MERSENNE_P",
    "FourWiseHash",
    "KWiseHash",
    "PairwiseHash",
    "random_field_element",
    "trailing_zeros",
    "L0Sampler",
    "SamplerRandomness",
    "levels_for_universe",
    "RecoveryMatrix",
]
