"""Linear sketching substrate: hashing, 1-sparse recovery, L0-sampling,
and the AGM graph sketches built from them (paper, Section 3.1).

Bulk ingestion: every layer has an array flavour next to its scalar
one -- ``mulmod_many`` / ``poly_field_values`` (k-wise hashing over
GF(2^61-1) with 32-bit limb arithmetic, see :mod:`repro.sketch.hashing`),
``encode_edges`` / ``edge_signs``, ``SamplerRandomness.levels_of_many``
/ ``zpow_many``, ``RecoveryMatrix.apply_many``,
``L0Sampler.update_many``, ``VertexSketch.apply_edges``, and the
group-by-endpoint router ``SketchFamily.apply_edges_bulk``.  The bulk
path is bit-identical to the sequential one (asserted by
``tests/test_bulk_ingestion.py``) and roughly an order of magnitude
faster per batch (``benchmarks/test_exp12_ingest_throughput.py``).

Bulk queries: the recovery side has the same array-in/array-out
flavour.  ``RecoveryMatrix.recover_many`` / ``column_is_zero_many``
decode whole column blocks with the limb arithmetic
(``recover_from_prefix`` is the shared decoder), ``decode_indices``
inverts the edge coding for whole batches, and on top of them
``L0Sampler.sample_columns`` (many columns of one sampler),
``L0Sampler.sample_many`` / ``is_zero_many`` (one column across many
samplers sharing randomness), and the family-level router
``SketchFamily.query_bulk`` / ``cuts_empty_bulk`` answer a whole AGM
halving iteration's queries in one pass.  ``MergeScratch`` recycles
merge accumulators across query phases, and the scalar hash memos use
LRU eviction (``LRUMemo``).  Bit-identical to the sequential query
path (``tests/test_bulk_query.py``); throughput tracked by EXP-13 in
``benchmarks/test_exp12_ingest_throughput.py``.
"""

# Exception classes live in :mod:`repro.errors` (the one hierarchy all
# layers share); re-exported here because the sketching layer raises
# them and callers historically imported them from ``repro.sketch``.
from repro.errors import SketchError, SketchFailureError
from repro.sketch.edge_coding import (
    decode_index,
    decode_indices,
    edge_sign,
    edge_signs,
    encode_edge,
    encode_edges,
    num_pairs,
)
from repro.sketch.graph_sketch import MergedSketch, SketchFamily, VertexSketch
from repro.sketch.hashing import (
    MERSENNE_P,
    FourWiseHash,
    KWiseHash,
    LRUMemo,
    PairwiseHash,
    addmod_many,
    mulmod_many,
    poly_field_values,
    random_field_element,
    trailing_zeros,
    trailing_zeros_many,
)
from repro.sketch.l0_sampler import (
    CACHE_LIMIT,
    L0Sampler,
    SamplerRandomness,
    is_zero_cells,
    levels_for_universe,
    query_cells,
    sample_cells,
)
from repro.sketch.sparse_recovery import (
    RENORM_MASS,
    MergeScratch,
    RecoveryMatrix,
    RecoveryPool,
    pool_scatter,
    recover_from_prefix,
)

__all__ = [
    "SketchError",
    "SketchFailureError",
    "decode_index",
    "decode_indices",
    "edge_sign",
    "edge_signs",
    "encode_edge",
    "encode_edges",
    "num_pairs",
    "MergedSketch",
    "SketchFamily",
    "VertexSketch",
    "MERSENNE_P",
    "FourWiseHash",
    "KWiseHash",
    "LRUMemo",
    "PairwiseHash",
    "addmod_many",
    "mulmod_many",
    "poly_field_values",
    "random_field_element",
    "trailing_zeros",
    "trailing_zeros_many",
    "CACHE_LIMIT",
    "L0Sampler",
    "SamplerRandomness",
    "is_zero_cells",
    "levels_for_universe",
    "query_cells",
    "sample_cells",
    "RENORM_MASS",
    "MergeScratch",
    "RecoveryMatrix",
    "RecoveryPool",
    "pool_scatter",
    "recover_from_prefix",
]
