"""Bijective coding between undirected edges and vector coordinates.

The AGM sketches view the graph as a vector indexed by the ``C(n, 2)``
vertex pairs (paper, Section 3.1).  We use the row-major upper-triangular
order: pair ``(i, j)`` with ``i < j`` gets index

    offset(i) + (j - i - 1),   offset(i) = i*n - i*(i+1)/2

so row ``i`` holds the pairs ``(i, i+1) .. (i, n-1)``.  Decoding inverts
the quadratic ``offset`` with an integer square root plus a local
correction loop (exact for all inputs; property-tested round-trip).
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.types import Edge


def num_pairs(n: int) -> int:
    """Size of the coordinate space: ``C(n, 2)``."""
    return n * (n - 1) // 2


def row_offset(n: int, i: int) -> int:
    """Index of pair ``(i, i+1)``, the first pair in row ``i``."""
    return i * n - i * (i + 1) // 2


def encode_edge(n: int, u: int, v: int) -> int:
    """Map an undirected edge to its coordinate in ``[0, C(n,2))``."""
    if u == v:
        raise ValueError(f"self-loop ({u}, {v}) has no coordinate")
    i, j = (u, v) if u < v else (v, u)
    if not 0 <= i < j < n:
        raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
    return row_offset(n, i) + (j - i - 1)


def decode_index(n: int, idx: int) -> Edge:
    """Inverse of :func:`encode_edge`."""
    total = num_pairs(n)
    if not 0 <= idx < total:
        raise ValueError(f"index {idx} out of range for n={n}")
    # Solve offset(i) <= idx: i is roughly n - 1/2 - sqrt((n-1/2)^2 - 2*idx).
    # Compute a candidate with isqrt and correct by +-1 steps (at most 2).
    disc = (2 * n - 1) * (2 * n - 1) - 8 * idx
    i = (2 * n - 1 - math.isqrt(disc)) // 2
    i = max(0, min(n - 2, i))
    while i > 0 and row_offset(n, i) > idx:
        i -= 1
    while i < n - 2 and row_offset(n, i + 1) <= idx:
        i += 1
    j = i + 1 + (idx - row_offset(n, i))
    return (i, j)


def edge_sign(vertex: int, u: int, v: int) -> int:
    """Sign of coordinate ``{u, v}`` in vertex ``vertex``'s vector X_vertex.

    Paper convention (Section 3.1): ``+1`` when ``vertex`` is the larger
    endpoint, ``-1`` when it is the smaller one.  Summing the two
    endpoint vectors therefore cancels the edge -- the property that
    makes component-merged sketches sample only *cut* edges (Lemma 3.3).
    """
    if vertex == max(u, v):
        return 1
    if vertex == min(u, v):
        return -1
    raise ValueError(f"vertex {vertex} is not an endpoint of ({u}, {v})")
