"""Bijective coding between undirected edges and vector coordinates.

The AGM sketches view the graph as a vector indexed by the ``C(n, 2)``
vertex pairs (paper, Section 3.1).  We use the row-major upper-triangular
order: pair ``(i, j)`` with ``i < j`` gets index

    offset(i) + (j - i - 1),   offset(i) = i*n - i*(i+1)/2

so row ``i`` holds the pairs ``(i, i+1) .. (i, n-1)``.  Decoding inverts
the quadratic ``offset`` with an integer square root plus a local
correction loop (exact for all inputs; property-tested round-trip).

:func:`encode_edges` and :func:`edge_signs` are the array flavours used
by the bulk ingestion path -- same coding, same sign convention, whole
batches at a time.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.types import Edge


def num_pairs(n: int) -> int:
    """Size of the coordinate space: ``C(n, 2)``."""
    return n * (n - 1) // 2


def row_offset(n: int, i: int) -> int:
    """Index of pair ``(i, i+1)``, the first pair in row ``i``."""
    return i * n - i * (i + 1) // 2


def encode_edge(n: int, u: int, v: int) -> int:
    """Map an undirected edge to its coordinate in ``[0, C(n,2))``."""
    if u == v:
        raise ValueError(f"self-loop ({u}, {v}) has no coordinate")
    i, j = (u, v) if u < v else (v, u)
    if not 0 <= i < j < n:
        raise ValueError(f"edge ({u}, {v}) out of range for n={n}")
    return row_offset(n, i) + (j - i - 1)


def encode_edges(n: int, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`encode_edge`: coordinate of every edge at once.

    ``us`` and ``vs`` are integer arrays of equal shape; the result is
    the int64 array of upper-triangular coordinates, bit-identical to
    the scalar encoding of each pair.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    if us.shape != vs.shape:
        raise ValueError("endpoint arrays must have the same shape")
    if np.any(us == vs):
        raise ValueError("self-loops have no coordinate")
    i = np.minimum(us, vs)
    j = np.maximum(us, vs)
    if us.size and (int(i.min()) < 0 or int(j.max()) >= n):
        raise ValueError(f"edge endpoints out of range for n={n}")
    return i * n - i * (i + 1) // 2 + (j - i - 1)


def edge_signs(vertex: int, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
    """Vectorized :func:`edge_sign`: ``vertex``'s sign for every edge.

    Every edge must have ``vertex`` as one of its endpoints; returns
    the int64 array of ``+1`` / ``-1`` values.
    """
    us = np.asarray(us, dtype=np.int64)
    vs = np.asarray(vs, dtype=np.int64)
    hi = np.maximum(us, vs)
    lo = np.minimum(us, vs)
    if np.any((hi != vertex) & (lo != vertex)):
        raise ValueError(f"vertex {vertex} is not an endpoint of every edge")
    return np.where(hi == vertex, 1, -1).astype(np.int64)


def decode_index(n: int, idx: int) -> Edge:
    """Inverse of :func:`encode_edge`."""
    total = num_pairs(n)
    if not 0 <= idx < total:
        raise ValueError(f"index {idx} out of range for n={n}")
    # Solve offset(i) <= idx: i is roughly n - 1/2 - sqrt((n-1/2)^2 - 2*idx).
    # Compute a candidate with isqrt and correct by +-1 steps (at most 2).
    disc = (2 * n - 1) * (2 * n - 1) - 8 * idx
    i = (2 * n - 1 - math.isqrt(disc)) // 2
    i = max(0, min(n - 2, i))
    while i > 0 and row_offset(n, i) > idx:
        i -= 1
    while i < n - 2 and row_offset(n, i + 1) <= idx:
        i += 1
    j = i + 1 + (idx - row_offset(n, i))
    return (i, j)


def decode_indices(n: int,
                   idxs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :func:`decode_index`: many coordinates to ``(i, j)``.

    Returns the pair of int64 arrays ``(us, vs)`` with ``us < vs``,
    bit-identical to decoding each coordinate with the scalar inverse.
    The integer square root is taken as a float64 estimate corrected
    to exactness (the discriminant is far below 2^53 for any feasible
    ``n``), then the row candidate is fixed up with the same +-1 walk
    as the scalar code, run as masked array steps.
    """
    idxs = np.asarray(idxs, dtype=np.int64)
    if idxs.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    total = num_pairs(n)
    if int(idxs.min()) < 0 or int(idxs.max()) >= total:
        raise ValueError(f"index out of range for n={n}")
    disc = (2 * n - 1) * (2 * n - 1) - 8 * idxs
    s = np.floor(np.sqrt(disc.astype(np.float64))).astype(np.int64)
    s = np.maximum(s - 2, 0)
    while True:                      # exact isqrt: at most a few steps
        low = (s + 1) * (s + 1) <= disc
        if not low.any():
            break
        s[low] += 1
    i = (2 * n - 1 - s) // 2
    i = np.clip(i, 0, n - 2)
    offsets = i * n - i * (i + 1) // 2
    while True:                      # row fix-up, at most +-1 each way
        high = (i > 0) & (offsets > idxs)
        if not high.any():
            break
        i[high] -= 1
        offsets = i * n - i * (i + 1) // 2
    while True:
        nxt = i + 1
        nxt_off = nxt * n - nxt * (nxt + 1) // 2
        low = (i < n - 2) & (nxt_off <= idxs)
        if not low.any():
            break
        i[low] += 1
        offsets = i * n - i * (i + 1) // 2
    j = i + 1 + (idxs - offsets)
    return i, j


def edge_sign(vertex: int, u: int, v: int) -> int:
    """Sign of coordinate ``{u, v}`` in vertex ``vertex``'s vector X_vertex.

    Paper convention (Section 3.1): ``+1`` when ``vertex`` is the larger
    endpoint, ``-1`` when it is the smaller one.  Summing the two
    endpoint vectors therefore cancels the edge -- the property that
    makes component-merged sketches sample only *cut* edges (Lemma 3.3).
    """
    if vertex == max(u, v):
        return 1
    if vertex == min(u, v):
        return -1
    raise ValueError(f"vertex {vertex} is not an endpoint of ({u}, {v})")
