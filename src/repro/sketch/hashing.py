"""k-wise independent hash families over a Mersenne-prime field.

The sketching layer needs pairwise-independent hashes (level sampling in
the L0-sampler, Lemma 3.1 / [CJ19]) and four-wise independent hashes
(vertex subsampling in the matching Tester, Section 8.2 / [AKL17]).
Both are polynomial hashing over ``GF(p)`` with ``p = 2^61 - 1``:

    h(x) = ((a_{k-1} x^{k-1} + ... + a_1 x + a_0) mod p) mod m

which is the textbook construction with exactly k-wise independence on
the field and negligible range bias for ``m << p``.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

MERSENNE_P = (1 << 61) - 1


class KWiseHash:
    """One hash function drawn from a k-wise independent family.

    Parameters
    ----------
    k:
        Independence degree (2 = pairwise, 4 = four-wise).
    range_size:
        Output range ``[0, range_size)``.
    rng:
        Source of randomness for the coefficients; pass a seeded
        ``numpy.random.Generator`` for reproducibility.
    """

    __slots__ = ("k", "range_size", "coeffs")

    def __init__(self, k: int, range_size: int, rng: np.random.Generator):
        if k < 1:
            raise ValueError("independence degree k must be >= 1")
        if range_size < 1:
            raise ValueError("range_size must be >= 1")
        self.k = k
        self.range_size = range_size
        # Leading coefficient nonzero keeps the polynomial degree exactly
        # k-1 (harmless either way, conventional for the family).
        coeffs = [int(rng.integers(0, MERSENNE_P)) for _ in range(k)]
        if k > 1 and coeffs[-1] == 0:
            coeffs[-1] = 1
        self.coeffs = coeffs

    def field_value(self, x: int) -> int:
        """The polynomial evaluated in GF(p), before range reduction."""
        acc = 0
        for coeff in reversed(self.coeffs):
            acc = (acc * x + coeff) % MERSENNE_P
        return acc

    def __call__(self, x: int) -> int:
        return self.field_value(x) % self.range_size

    def many(self, xs: Sequence[int]) -> List[int]:
        """Hash a batch of inputs (plain loop; inputs are Python ints)."""
        return [self(x) for x in xs]


class PairwiseHash(KWiseHash):
    """Pairwise-independent hash: ``h(x) = (a x + b mod p) mod m``."""

    def __init__(self, range_size: int, rng: np.random.Generator):
        super().__init__(2, range_size, rng)


class FourWiseHash(KWiseHash):
    """Four-wise independent hash, used by the matching Tester."""

    def __init__(self, range_size: int, rng: np.random.Generator):
        super().__init__(4, range_size, rng)


def random_field_element(rng: np.random.Generator,
                         nonzero: bool = True) -> int:
    """A uniform element of GF(p), optionally excluding zero.

    Used for fingerprint bases in :mod:`repro.sketch.sparse_recovery`.
    """
    value = int(rng.integers(1 if nonzero else 0, MERSENNE_P))
    return value


def trailing_zeros(x: int, cap: int) -> int:
    """Number of trailing zero bits of ``x``, capped at ``cap``.

    ``trailing_zeros(0, cap) == cap`` by convention -- an all-zero hash
    value lands in the sparsest level.  This turns a uniform hash value
    into a geometric level assignment: ``P[level >= l] = 2^-l``.
    """
    if x == 0:
        return cap
    return min(cap, (x & -x).bit_length() - 1)
