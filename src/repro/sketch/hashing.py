"""k-wise independent hash families over a Mersenne-prime field.

The sketching layer needs pairwise-independent hashes (level sampling in
the L0-sampler, Lemma 3.1 / [CJ19]) and four-wise independent hashes
(vertex subsampling in the matching Tester, Section 8.2 / [AKL17]).
Both are polynomial hashing over ``GF(p)`` with ``p = 2^61 - 1``:

    h(x) = ((a_{k-1} x^{k-1} + ... + a_1 x + a_0) mod p) mod m

which is the textbook construction with exactly k-wise independence on
the field and negligible range bias for ``m << p``.

Bulk ingestion
--------------
Every function comes in a scalar flavour (exact Python-int arithmetic)
and an array flavour used by the vectorized bulk-update path.  The
array flavour evaluates the polynomial on whole numpy vectors at once.
Products of two 61-bit field elements need 122 bits, which does not fit
a numpy ``uint64``, so :func:`mulmod_many` splits each operand into
32-bit limbs::

    a = a_hi * 2^32 + a_lo,   b = b_hi * 2^32 + b_lo
    a*b = a_hi*b_hi * 2^64  +  (a_hi*b_lo + a_lo*b_hi) * 2^32  +  a_lo*b_lo

and reduces each partial product modulo the Mersenne prime with shifts
and masks only (``2^61 === 1 (mod p)``, so bits above position 61 fold
back onto the low bits).  Every intermediate stays below ``2^63``, so
the limb arithmetic is exact in ``uint64`` -- the two flavours return
bit-identical values, which the bulk-vs-sequential ingestion tests
assert.

The array flavours live in the runtime-selectable kernel tier
(:mod:`repro.kernels`, ``REPRO_KERNELS``); the functions here are the
sketch layer's stable entry points and delegate to whichever tier the
dispatcher bound -- pure numpy always, numba-compiled when available.
Both tiers are bit-identical by contract (``tests/test_kernels.py``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Sequence

import numpy as np

from repro import kernels as _kernels
from repro.lint.markers import spawn_safe

MERSENNE_P = (1 << 61) - 1


class LRUMemo:
    """Bounded least-recently-used memo for scalar hash values.

    The sketch layer memoizes per-coordinate hash evaluations
    (``z^idx`` powers, level vectors) because insert/delete churn
    revisits the same coordinates.  Eviction is least-recently-used --
    a hit moves the entry to the back of the queue -- so a hot
    coordinate survives arbitrary churn of cold ones, unlike FIFO
    where capacity pressure eventually evicts everything in insertion
    order.  Hit/miss counters are kept for regression tests and
    diagnostics.
    """

    __slots__ = ("capacity", "hits", "misses", "_data")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("memo capacity must be >= 1")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._data: OrderedDict = OrderedDict()

    def get(self, key) -> Optional[object]:
        """The memoized value, refreshed as most-recently-used.

        Returns ``None`` on a miss (no stored value is ever ``None``).
        """
        value = self._data.get(key)
        if value is None:
            self.misses += 1
            return None
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key, value) -> None:
        data = self._data
        if key in data:
            data.move_to_end(key)
            data[key] = value
            return
        if len(data) >= self.capacity:
            data.popitem(last=False)
        data[key] = value

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key) -> bool:
        return key in self._data

# uint64 view of the prime kept for callers that build field inputs.
_P_U64 = np.uint64(MERSENNE_P)


def mulmod_many(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``(a * b) mod p`` for ``uint64`` arrays with entries
    in ``[0, p)``; broadcasting works as for ``a * b``.

    Dispatches to the active kernel tier (see the module docstring and
    :mod:`repro.kernels.numpy_tier` for the limb arithmetic).
    """
    return _kernels.mulmod_many(a, b)


def addmod_many(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise ``(a + b) mod p`` for ``uint64`` arrays in ``[0, p)``."""
    return _kernels.addmod_many(a, b)


def poly_field_values(coeffs: np.ndarray, xs: np.ndarray) -> np.ndarray:
    """Evaluate many degree-(k-1) polynomials at many points in GF(p).

    ``coeffs`` has shape ``(k, h)`` -- column ``j`` holds the
    coefficients ``a_0 .. a_{k-1}`` of polynomial ``j`` -- and ``xs``
    has shape ``(e,)`` with entries in ``[0, p)``.  Returns the
    ``(e, h)`` uint64 matrix of Horner evaluations, bit-identical to
    :meth:`KWiseHash.field_value` on each (point, polynomial) pair.
    """
    return _kernels.poly_field_values(coeffs, xs)


@spawn_safe
class KWiseHash:
    """One hash function drawn from a k-wise independent family.

    Parameters
    ----------
    k:
        Independence degree (2 = pairwise, 4 = four-wise).
    range_size:
        Output range ``[0, range_size)``.
    rng:
        Source of randomness for the coefficients; pass a seeded
        ``numpy.random.Generator`` for reproducibility.
    """

    __slots__ = ("k", "range_size", "coeffs", "_coeff_column")

    def __init__(self, k: int, range_size: int, rng: np.random.Generator):
        if k < 1:
            raise ValueError("independence degree k must be >= 1")
        if range_size < 1:
            raise ValueError("range_size must be >= 1")
        self.k = k
        self.range_size = range_size
        # Leading coefficient nonzero keeps the polynomial degree exactly
        # k-1 (harmless either way, conventional for the family).
        coeffs = [int(rng.integers(0, MERSENNE_P)) for _ in range(k)]
        if k > 1 and coeffs[-1] == 0:
            coeffs[-1] = 1
        self.coeffs = coeffs
        self._coeff_column = np.array(coeffs, dtype=np.uint64)[:, None]

    @classmethod
    def from_params(cls, range_size: int,
                    coeffs: Sequence[int]) -> "KWiseHash":
        """Rebuild a hash function from its parameters alone.

        The spawn-safe constructor: no ``rng`` is consumed, so a worker
        process given ``(range_size, coeffs)`` reconstructs *exactly*
        the parent's function (same field polynomial, same range
        reduction).  ``cls`` is preserved, so pickling a
        :class:`PairwiseHash` round-trips to a :class:`PairwiseHash`.
        """
        if range_size < 1:
            raise ValueError("range_size must be >= 1")
        if len(coeffs) < 1:
            raise ValueError("need at least one coefficient")
        self = cls.__new__(cls)
        self.k = len(coeffs)
        self.range_size = range_size
        self.coeffs = [int(c) for c in coeffs]
        self._coeff_column = np.array(self.coeffs, dtype=np.uint64)[:, None]
        return self

    def __reduce__(self):
        return (_rebuild_kwise_hash,
                (type(self), self.range_size, tuple(self.coeffs)))

    def field_value(self, x: int) -> int:
        """The polynomial evaluated in GF(p), before range reduction."""
        acc = 0
        for coeff in reversed(self.coeffs):
            acc = (acc * x + coeff) % MERSENNE_P
        return acc

    def field_value_many(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`field_value`: ``(e,)`` ints -> uint64 array.

        Inputs are reduced mod p first, so any non-negative integers
        below ``2^63`` are accepted.
        """
        points = np.asarray(xs, dtype=np.int64).astype(np.uint64) % _P_U64
        return poly_field_values(self._coeff_column, points)[:, 0]

    def __call__(self, x: int) -> int:
        return self.field_value(x) % self.range_size

    def many(self, xs: Sequence[int]) -> List[int]:
        """Hash a batch of inputs via the vectorized field evaluation.

        Arbitrary Python ints are accepted (they are reduced mod p up
        front); the output matches ``[self(x) for x in xs]`` exactly.
        """
        if len(xs) == 0:
            return []
        reduced = np.array([x % MERSENNE_P for x in xs], dtype=np.uint64)
        values = poly_field_values(self._coeff_column, reduced)[:, 0]
        return [int(v) for v in values % np.uint64(self.range_size)]


def _rebuild_kwise_hash(cls, range_size: int, coeffs) -> "KWiseHash":
    """Pickle hook for :meth:`KWiseHash.__reduce__` (module-level so the
    reducer pickles by reference under every protocol)."""
    return cls.from_params(range_size, coeffs)


class PairwiseHash(KWiseHash):
    """Pairwise-independent hash: ``h(x) = (a x + b mod p) mod m``."""

    def __init__(self, range_size: int, rng: np.random.Generator):
        super().__init__(2, range_size, rng)


class FourWiseHash(KWiseHash):
    """Four-wise independent hash, used by the matching Tester."""

    def __init__(self, range_size: int, rng: np.random.Generator):
        super().__init__(4, range_size, rng)


def random_field_element(rng: np.random.Generator,
                         nonzero: bool = True) -> int:
    """A uniform element of GF(p), optionally excluding zero.

    Used for fingerprint bases in :mod:`repro.sketch.sparse_recovery`.
    """
    value = int(rng.integers(1 if nonzero else 0, MERSENNE_P))
    return value


def trailing_zeros(x: int, cap: int) -> int:
    """Number of trailing zero bits of ``x``, capped at ``cap``.

    ``trailing_zeros(0, cap) == cap`` by convention -- an all-zero hash
    value lands in the sparsest level.  This turns a uniform hash value
    into a geometric level assignment: ``P[level >= l] = 2^-l``.
    """
    if x == 0:
        return cap
    return min(cap, (x & -x).bit_length() - 1)


def trailing_zeros_many(xs: np.ndarray, cap: int) -> np.ndarray:
    """Vectorized :func:`trailing_zeros` over a uint64 array.

    Dispatches to the active kernel tier; both tiers match the scalar
    bit-trick bit for bit, with zero entries mapping to ``cap``.
    """
    return _kernels.trailing_zeros_many(xs, cap)
