"""AGM graph sketches: per-vertex signed edge-incidence samplers.

Paper, Section 3.1.  Every vertex ``v`` owns a vector ``X_v`` over the
``C(n, 2)`` pair coordinates with the sign convention of Lemma 3.3
(``+1`` when ``v`` is the larger endpoint, ``-1`` when the smaller), and
a mergeable L0-sampler of that vector.  For any vertex set ``A``, the sum
of the members' sketches is a sketch of ``X_A``, whose support is exactly
the cut ``E(A, V \\ A)`` -- internal edges cancel.  Querying the merged
sketch therefore returns a random cut edge (Lemma 3.5), the operation the
connectivity algorithm uses to find replacement edges after deletions.

:class:`SketchFamily` carries the shared randomness (one instance per
algorithm), :class:`VertexSketch` is the per-vertex state.

Bulk ingestion
--------------
The per-vertex recovery cells live in one family-owned
:class:`~repro.sketch.sparse_recovery.RecoveryPool` (vertex id = pool
slot), so a batch of edge updates is ingested by
:meth:`SketchFamily.apply_edges_bulk` as a *single* group-by-endpoint
scatter: hash all edge coordinates at once, emit one signed entry per
(edge, endpoint), and let the pool accumulate every vertex's cells in
one ``np.add.at`` pass per quantity.  This is bit-identical to calling
:meth:`VertexSketch.apply_edge` per edge and endpoint -- the batch
algorithms (``MPCConnectivity``, preload, MSF, bipartiteness) route
their sketch updates through it.

Bulk queries are the mirror image: :meth:`SketchFamily.query_bulk`
answers one column's cut-edge query for *many* merged supernode
sketches in a single vectorized recovery (the per-iteration shape of
the AGM halving), :meth:`SketchFamily.cuts_empty_bulk` batches the
zero tests, and :meth:`MergedSketch.sample_cut_edges` decodes a whole
column scan of one merged sketch at once.  All are bit-identical to
their scalar counterparts.

Execution backends
------------------
Where the bulk work *runs* is the execution backend's decision
(:mod:`repro.mpc.backend`): the family registers its pool with the
backend at construction, :meth:`SketchFamily.apply_edges_bulk` hands
the backend per-edge descriptors, and the bulk query routers detect
when every queried sampler is a pool row and route those through the
backend too (standalone merged sketches are answered in-process).  On
the default :class:`~repro.mpc.backend.SequentialBackend` this is the
old in-process path verbatim; on the shared-memory cluster backend the
same descriptors fan out to worker processes, bit-identically.

Merged supernodes route through the backend too, as *membership*:
:meth:`SketchFamily.query_iteration_groups` /
:meth:`SketchFamily.cuts_empty_groups` / :meth:`SketchFamily.scan_group`
ship per-supernode vertex-row lists instead of materialised merged
cells -- the backend sums the member rows against the already-shared
pool where it lives and returns only the recovered edges, which is what
keeps the AGM halving iterations' per-round communication small on the
cluster backend.
"""

from __future__ import annotations

import weakref
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import SketchError
from repro.sketch.edge_coding import (
    decode_index,
    decode_indices,
    edge_sign,
    edge_signs,
    encode_edge,
    encode_edges,
    num_pairs,
)
from repro.sketch.l0_sampler import L0Sampler, SamplerRandomness
from repro.sketch.sparse_recovery import MergeScratch, RecoveryPool
from repro.types import Edge


class SketchFamily:
    """Shared randomness + geometry for all vertex sketches of one run.

    ``columns`` plays the role of the paper's ``t = O(log n)``
    independent sketches per vertex: batch deletions consume one column
    per AGM halving iteration (Section 6.3), and column rotation across
    phases keeps reuse of revealed randomness bounded (DESIGN.md, D3).

    The family also owns the :class:`RecoveryPool` backing every
    vertex sketch it hands out, which is what lets
    :meth:`apply_edges_bulk` update all endpoints of a batch in single
    array scatters.
    """

    def __init__(self, n: int, columns: int, rng: np.random.Generator,
                 backend=None):
        if n < 2:
            raise ValueError("need at least two vertices")
        self.n = n
        self.columns = columns
        self.universe = num_pairs(n)
        self.randomness = SamplerRandomness(self.universe, columns, rng)
        self.pool = RecoveryPool(n, columns, self.randomness.levels)
        self.backend = None
        self._pool_handle = None
        self._detach = None
        self.attach_backend(backend)

    # -- backend lifecycle ----------------------------------------------
    def attach_backend(self, backend=None) -> None:
        """Register this family's pool with an execution backend.

        Called by ``__init__`` (before any vertex sketch views exist)
        and by checkpoint restore (:mod:`repro.session`), where views
        *do* already exist -- ``adopt_buffer`` re-points them if the
        backend moves the cell block into shared memory.  A detach
        finalizer releases worker mappings and segments when the family
        goes away; :meth:`detach_backend` runs it deterministically.
        """
        # Lazy import: repro.mpc.backend imports the sketch layer for
        # its worker-side math, so the dependency must not be circular
        # at module level.
        from repro.mpc.backend import resolve_backend

        if self._pool_handle is not None:
            raise SketchError("sketch family is already attached to a "
                              "backend; detach_backend() first")
        self.backend = resolve_backend(backend)
        self._pool_handle = self.backend.attach_pool(self.pool,
                                                     self.randomness)
        self._detach = weakref.finalize(
            self, self.backend.detach_pool, self._pool_handle
        )

    def detach_backend(self) -> None:
        """Release the backend registration now (idempotent).

        Deterministic counterpart of the GC finalizer: worker-side pool
        mappings and shared-memory segments are released immediately.
        The family keeps its cell contents (existing views stay
        readable) but must be re-attached before any further routed
        bulk work.  Used by ``GraphSession.close()``.
        """
        if self._detach is not None:
            self._detach()
            self._detach = None
            self._pool_handle = None

    # -- checkpointing ---------------------------------------------------
    def __getstate__(self):
        """Drop the backend registration: handles, finalizers, and
        worker fleets are process-local.  A restored family is inert
        until :meth:`attach_backend` is called (checkpoint restore does
        this after choosing the target backend)."""
        state = self.__dict__.copy()
        state["backend"] = None
        state["_pool_handle"] = None
        state["_detach"] = None
        return state

    @property
    def levels(self) -> int:
        return self.randomness.levels

    def encode(self, u: int, v: int) -> int:
        return encode_edge(self.n, u, v)

    def encode_many(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        return encode_edges(self.n, us, vs)

    def decode(self, idx: int) -> Edge:
        return decode_index(self.n, idx)

    def decode_many(self, idxs: np.ndarray) -> "List[Optional[Edge]]":
        """Decode sampled coordinates, passing ``-1`` through as ``None``.

        The vectorized inverse of the edge coding applied to the
        recovered entries only; the convenience shape every batched
        query consumer wants (one optional edge per queried sketch).
        """
        idxs = np.asarray(idxs, dtype=np.int64)
        out: List[Optional[Edge]] = [None] * idxs.shape[0]
        hits = np.flatnonzero(idxs >= 0)
        if hits.size:
            us, vs = decode_indices(self.n, idxs[hits])
            for pos, u, v in zip(hits.tolist(), us.tolist(), vs.tolist()):
                out[pos] = (u, v)
        return out

    def query_bulk(self, samplers: "list[L0Sampler]",
                   column) -> "List[Optional[Edge]]":
        """Batched cut-edge sampling across many merged sketches.

        ``samplers`` are merged (supernode) samplers sharing this
        family's randomness; ``column`` is one shared column index or
        a per-sampler array.  One vectorized recovery answers every
        supernode's query for the iteration -- entry ``i`` equals
        decoding ``samplers[i].sample_column(column[i])``, with
        ``None`` where recovery rejected.  This is the query-side twin
        of :meth:`apply_edges_bulk`.

        When every sampler is a row of this family's pool (the
        per-vertex sketches), the query routes through the execution
        backend -- sharded across worker processes on the cluster
        backend; standalone merged sketches are answered in-process.
        """
        slots = self._pool_slots(samplers)
        if slots is None:
            return self.decode_many(L0Sampler.sample_many(samplers,
                                                          column))
        cols = self._broadcast_columns(column, slots.shape[0])
        return self.decode_many(
            self.backend.sample_rows(self._pool_handle, slots, cols)
        )

    def cuts_empty_bulk(self, samplers: "list[L0Sampler]") -> np.ndarray:
        """Vectorized ``is_zero`` across many merged sketches.

        Boolean array: entry ``i`` is True iff ``samplers[i]`` sketches
        the zero vector, i.e. its vertex set has an empty cut (w.h.p.).
        Pool-row sampler lists route through the execution backend.
        """
        slots = self._pool_slots(samplers)
        if slots is None:
            return L0Sampler.is_zero_many(samplers)
        return self.backend.zero_rows(self._pool_handle, slots)

    def query_iteration_bulk(
        self, samplers: "list[L0Sampler]", column
    ) -> "Tuple[np.ndarray, List[Optional[Edge]]]":
        """One halving iteration's zero tests + cut-edge samples.

        Fuses :meth:`cuts_empty_bulk` and :meth:`query_bulk` over a
        single cell stack (:meth:`L0Sampler.query_many`): returns
        ``(zeros, edges)`` where ``zeros[i]`` is the supernode's empty
        -cut test and ``edges[i]`` its decoded sample from ``column``
        (``None`` for empty cuts and failed recovery).  The one-call
        shape both AGM contraction drivers consume per iteration.
        Pool-row sampler lists route through the execution backend.
        """
        slots = self._pool_slots(samplers)
        if slots is None:
            zeros, found = L0Sampler.query_many(samplers, column)
        else:
            cols = self._broadcast_columns(column, slots.shape[0])
            zeros, found = self.backend.query_rows(self._pool_handle,
                                                   slots, cols)
        return zeros, self.decode_many(found)

    # -- membership-shipped supernode queries ---------------------------
    def query_iteration_groups(
        self, groups, column
    ) -> "Tuple[np.ndarray, List[Optional[Edge]]]":
        """One halving iteration over supernodes shipped as *membership*.

        ``groups`` is a list of vertex-id arrays (= rows of this
        family's pool); the backend merges each group's member rows
        where the pool lives and answers the fused zero test +
        cut-edge recovery, so the parent never materialises merged
        supernode cells.  Entry ``i`` of the result equals querying the
        parent-side merge of ``groups[i]`` on ``column[i]`` --
        bit-identical, because summing rows and querying commute (see
        :func:`~repro.sketch.sparse_recovery.merge_group_cells`).  On
        the cluster backend whole groups are balanced across workers
        and only the recovered edges travel back.
        """
        groups = self._group_arrays(groups)
        if not groups:
            return np.zeros(0, dtype=bool), []
        cols = self._broadcast_columns(column, len(groups))
        zeros, found = self.backend.query_groups(self._pool_handle,
                                                 groups, cols)
        return zeros, self.decode_many(found)

    def cuts_empty_groups(self, groups) -> np.ndarray:
        """Vectorized empty-cut test over membership-shipped groups."""
        groups = self._group_arrays(groups)
        if not groups:
            return np.zeros(0, dtype=bool)
        return self.backend.zero_groups(self._pool_handle, groups)

    def scan_group(self, members,
                   cols) -> "Tuple[bool, List[Optional[Edge]]]":
        """Empty-cut test + whole column scan of one merged group.

        The replacement-search shape: merge the ``members`` rows once,
        then decode every requested column (modulo the family's column
        count) in a single pass.  Returns ``(cut_is_empty, edges)``.
        """
        (members,) = self._group_arrays([members])
        cols = np.asarray(cols, dtype=np.int64) % self.columns
        zero, found = self.backend.scan_group(self._pool_handle,
                                              members, cols)
        return bool(zero), self.decode_many(found)

    def _group_arrays(self, groups) -> "List[np.ndarray]":
        """Validate membership lists into int64 pool-row arrays."""
        out: List[np.ndarray] = []
        for members in groups:
            arr = np.asarray(members, dtype=np.int64)
            if arr.size == 0:
                raise SketchError("cannot query an empty vertex group")
            if int(arr.min()) < 0 or int(arr.max()) >= self.pool.count:
                raise SketchError(
                    f"group member outside the family's vertex range "
                    f"[0, {self.pool.count})"
                )
            out.append(arr)
        return out

    # -- backend routing helpers ----------------------------------------
    def _pool_slots(self, samplers: "list[L0Sampler]"
                    ) -> Optional[np.ndarray]:
        """Slot array when *every* sampler is a row of this family's
        pool; ``None`` otherwise (standalone/merged sketches answer
        in-process).  Empty lists return ``None`` so the L0Sampler
        statics keep raising their usual error."""
        if not samplers:
            return None
        pool = self.pool
        slots = np.empty(len(samplers), dtype=np.int64)
        for i, sampler in enumerate(samplers):
            matrix = sampler.matrix
            if matrix._pool is not pool:
                return None
            slots[i] = matrix._pool_slot
        return slots

    @staticmethod
    def _broadcast_columns(column, k: int) -> np.ndarray:
        """One shared column index or per-sampler array -> ``(k,)``."""
        return np.ascontiguousarray(
            np.broadcast_to(np.asarray(column, dtype=np.int64), (k,))
        )

    def new_vertex_sketch(self, vertex: int) -> "VertexSketch":
        """The sketch stack of ``vertex``, backed by the family pool.

        Call once per vertex: a second call for the same vertex
        returns a *view of the same pool row* (including any
        accumulated state), not a fresh zero sketch -- to reset a
        vertex, zero its row instead of constructing a new sketch.
        """
        return VertexSketch(self, vertex)

    def apply_edges_bulk(self, us: np.ndarray, vs: np.ndarray,
                         deltas: np.ndarray) -> None:
        """Ingest a batch of signed edge updates into all endpoints.

        ``us``, ``vs``, ``deltas`` are equal-length arrays; update ``i``
        adds ``deltas[i]`` (+1 insert / -1 delete) to edge
        ``{us[i], vs[i]}``, touching *both* endpoint sketches with the
        Lemma 3.3 signs.  The whole batch is hashed with the
        array-level field arithmetic and scattered into the family pool
        in one pass per recovery quantity -- bit-identical to per-edge
        :meth:`VertexSketch.apply_edge` calls, in any order.

        Only the family's own pool-backed vertex sketches (the ones
        from :meth:`new_vertex_sketch`) observe these updates; detached
        copies do not.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        k = us.shape[0]
        if k == 0:
            return
        idxs = encode_edges(self.n, us, vs)
        hi = np.maximum(us, vs)
        lo = np.minimum(us, vs)
        # One entry per (edge, endpoint): the larger endpoint sees
        # +delta, the smaller -delta (edge_sign convention).  The
        # backend hashes the coordinates and scatters -- in-process on
        # the sequential backend, sharded by row owner on the cluster
        # backend.
        self.backend.scatter_edges(self._pool_handle, hi, lo, idxs,
                                   deltas)

    def apply_updates_bulk(self, updates, delta: Optional[int] = None
                           ) -> None:
        """:meth:`apply_edges_bulk` over a list of stream ``Update``s.

        With ``delta`` given, every update carries that signed value
        (the insertions-then-deletions split of the phase model);
        otherwise each update contributes ``+1``/``-1`` from its own
        op.  One marshalling point for all the batch algorithms.
        """
        k = len(updates)
        if k == 0:
            return
        us = np.fromiter((up.u for up in updates), dtype=np.int64,
                         count=k)
        vs = np.fromiter((up.v for up in updates), dtype=np.int64,
                         count=k)
        if delta is None:
            deltas = np.fromiter(
                (1 if up.is_insert else -1 for up in updates),
                dtype=np.int64, count=k,
            )
        else:
            deltas = np.full(k, delta, dtype=np.int64)
        self.apply_edges_bulk(us, vs, deltas)

    @property
    def words_per_vertex(self) -> int:
        """Accounting size of one vertex's stack: 3 t L words."""
        return 3 * self.columns * self.randomness.levels


class VertexSketch:
    """The sketch stack ``S_v`` of a single vertex."""

    __slots__ = ("family", "vertex", "sampler")

    def __init__(self, family: SketchFamily, vertex: int,
                 sampler: Optional[L0Sampler] = None):
        self.family = family
        self.vertex = vertex
        self.sampler = sampler if sampler is not None else L0Sampler(
            family.randomness, family.pool.matrix(vertex)
        )

    def apply_edge(self, u: int, v: int, delta: int) -> None:
        """Record the insertion (+1) or deletion (-1) of edge ``{u, v}``.

        The owner vertex must be an endpoint; the coordinate is updated
        with the signed value ``edge_sign(owner) * delta``.
        """
        sign = edge_sign(self.vertex, u, v)
        idx = self.family.encode(u, v)
        self.sampler.update(idx, sign * delta)

    def apply_edges(self, us: np.ndarray, vs: np.ndarray,
                    deltas: np.ndarray) -> None:
        """Bulk :meth:`apply_edge`: all edges must touch this vertex.

        Vectorized signing + encoding + ingestion; bit-identical to the
        per-edge loop.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        deltas = np.asarray(deltas, dtype=np.int64)
        if us.size == 0:
            return
        signs = edge_signs(self.vertex, us, vs)
        idxs = encode_edges(self.family.n, us, vs)
        self.sampler.update_many(idxs, signs * deltas)

    def copy(self) -> "VertexSketch":
        return VertexSketch(self.family, self.vertex, self.sampler.copy())

    @property
    def words(self) -> int:
        return self.sampler.words


class MergedSketch:
    """The sketch ``S_A`` of a vertex set ``A`` (sum of member stacks).

    Query helpers mirror Lemma 3.5: :meth:`sample_cut_edge` returns an
    edge of ``E(A, V \\ A)`` or ``None``, and :meth:`cut_is_empty`
    distinguishes the empty cut from sampler failure (w.h.p.).
    """

    __slots__ = ("family", "sampler")

    def __init__(self, family: SketchFamily, sampler: L0Sampler):
        self.family = family
        self.sampler = sampler

    @staticmethod
    def of(members: Iterable[VertexSketch],
           scratch: Optional[MergeScratch] = None) -> "MergedSketch":
        stacks: List[VertexSketch] = list(members)
        if not stacks:
            raise ValueError("cannot merge an empty vertex set")
        family = stacks[0].family
        for stack in stacks:
            if stack.family is not family:
                raise ValueError("vertex sketches from different families")
        merged = L0Sampler.merged([s.sampler for s in stacks],
                                  scratch=scratch)
        return MergedSketch(family, merged)

    def sample_cut_edge(self, column: int = 0) -> Optional[Edge]:
        """A random edge crossing the cut, using one sampler column."""
        idx = self.sampler.sample_column(column % self.family.columns)
        if idx is None:
            return None
        return self.family.decode(idx)

    def sample_cut_edge_any(self, start_column: int = 0) -> Optional[Edge]:
        """Try every column; ``None`` only if all fail (or cut empty)."""
        idx = self.sampler.sample(start_column=start_column)
        if idx is None:
            return None
        return self.family.decode(idx)

    def sample_cut_edges(self, cols: np.ndarray) -> "List[Optional[Edge]]":
        """Sample from many columns in one vectorized recovery pass.

        Entry ``i`` equals :meth:`sample_cut_edge` on ``cols[i]`` --
        the replacement-search scan decoded all at once instead of
        column by column.
        """
        cols = np.asarray(cols, dtype=np.int64) % self.family.columns
        return self.family.decode_many(self.sampler.sample_columns(cols))

    def cut_is_empty(self) -> bool:
        return self.sampler.is_zero()

    @property
    def words(self) -> int:
        return self.sampler.words
