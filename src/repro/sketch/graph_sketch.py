"""AGM graph sketches: per-vertex signed edge-incidence samplers.

Paper, Section 3.1.  Every vertex ``v`` owns a vector ``X_v`` over the
``C(n, 2)`` pair coordinates with the sign convention of Lemma 3.3
(``+1`` when ``v`` is the larger endpoint, ``-1`` when the smaller), and
a mergeable L0-sampler of that vector.  For any vertex set ``A``, the sum
of the members' sketches is a sketch of ``X_A``, whose support is exactly
the cut ``E(A, V \\ A)`` -- internal edges cancel.  Querying the merged
sketch therefore returns a random cut edge (Lemma 3.5), the operation the
connectivity algorithm uses to find replacement edges after deletions.

:class:`SketchFamily` carries the shared randomness (one instance per
algorithm), :class:`VertexSketch` is the per-vertex state.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro.sketch.edge_coding import decode_index, edge_sign, encode_edge, num_pairs
from repro.sketch.l0_sampler import L0Sampler, SamplerRandomness
from repro.types import Edge


class SketchFamily:
    """Shared randomness + geometry for all vertex sketches of one run.

    ``columns`` plays the role of the paper's ``t = O(log n)``
    independent sketches per vertex: batch deletions consume one column
    per AGM halving iteration (Section 6.3), and column rotation across
    phases keeps reuse of revealed randomness bounded (DESIGN.md, D3).
    """

    def __init__(self, n: int, columns: int, rng: np.random.Generator):
        if n < 2:
            raise ValueError("need at least two vertices")
        self.n = n
        self.columns = columns
        self.universe = num_pairs(n)
        self.randomness = SamplerRandomness(self.universe, columns, rng)

    @property
    def levels(self) -> int:
        return self.randomness.levels

    def encode(self, u: int, v: int) -> int:
        return encode_edge(self.n, u, v)

    def decode(self, idx: int) -> Edge:
        return decode_index(self.n, idx)

    def new_vertex_sketch(self, vertex: int) -> "VertexSketch":
        return VertexSketch(self, vertex)

    @property
    def words_per_vertex(self) -> int:
        """Accounting size of one vertex's stack: 3 t L words."""
        return 3 * self.columns * self.randomness.levels


class VertexSketch:
    """The sketch stack ``S_v`` of a single vertex."""

    __slots__ = ("family", "vertex", "sampler")

    def __init__(self, family: SketchFamily, vertex: int,
                 sampler: Optional[L0Sampler] = None):
        self.family = family
        self.vertex = vertex
        self.sampler = sampler if sampler is not None else L0Sampler(
            family.randomness
        )

    def apply_edge(self, u: int, v: int, delta: int) -> None:
        """Record the insertion (+1) or deletion (-1) of edge ``{u, v}``.

        The owner vertex must be an endpoint; the coordinate is updated
        with the signed value ``edge_sign(owner) * delta``.
        """
        sign = edge_sign(self.vertex, u, v)
        idx = self.family.encode(u, v)
        self.sampler.update(idx, sign * delta)

    def copy(self) -> "VertexSketch":
        return VertexSketch(self.family, self.vertex, self.sampler.copy())

    @property
    def words(self) -> int:
        return self.sampler.words


class MergedSketch:
    """The sketch ``S_A`` of a vertex set ``A`` (sum of member stacks).

    Query helpers mirror Lemma 3.5: :meth:`sample_cut_edge` returns an
    edge of ``E(A, V \\ A)`` or ``None``, and :meth:`cut_is_empty`
    distinguishes the empty cut from sampler failure (w.h.p.).
    """

    __slots__ = ("family", "sampler")

    def __init__(self, family: SketchFamily, sampler: L0Sampler):
        self.family = family
        self.sampler = sampler

    @staticmethod
    def of(members: Iterable[VertexSketch]) -> "MergedSketch":
        stacks: List[VertexSketch] = list(members)
        if not stacks:
            raise ValueError("cannot merge an empty vertex set")
        family = stacks[0].family
        for stack in stacks:
            if stack.family is not family:
                raise ValueError("vertex sketches from different families")
        merged = L0Sampler.merged([s.sampler for s in stacks])
        return MergedSketch(family, merged)

    def sample_cut_edge(self, column: int = 0) -> Optional[Edge]:
        """A random edge crossing the cut, using one sampler column."""
        idx = self.sampler.sample_column(column % self.family.columns)
        if idx is None:
            return None
        return self.family.decode(idx)

    def sample_cut_edge_any(self, start_column: int = 0) -> Optional[Edge]:
        """Try every column; ``None`` only if all fail (or cut empty)."""
        idx = self.sampler.sample(start_column=start_column)
        if idx is None:
            return None
        return self.family.decode(idx)

    def cut_is_empty(self) -> bool:
        return self.sampler.is_zero()

    @property
    def words(self) -> int:
        return self.sampler.words
