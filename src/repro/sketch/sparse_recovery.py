"""1-sparse recovery cells, stacked into (columns x levels) matrices.

The classic building block (paper, Lemma 3.1 via [CJ19]): for a vector
``x`` restricted to some coordinate subset, keep three sums

    W = sum x_i,    S = sum i * x_i,    F = sum x_i * z^i  (mod p)

If the restriction is exactly 1-sparse, then ``i* = S / W`` recovers the
coordinate and the fingerprint test ``F == W * z^{i*}`` confirms it; for
any other vector the test fails except with probability ``<= N/p`` over
the choice of ``z`` (a nonzero polynomial of degree < N has < N roots).

:class:`RecoveryMatrix` holds one such cell for every (column, level)
pair of an L0-sampler as three numpy int64 arrays, so updates and merges
are vectorised.  Values stay inside int64: ``|W| <= m``, ``|S| <= m*N``
(< 2^53 for every configuration we run), and ``F < p = 2^61 - 1``.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.sketch.hashing import MERSENNE_P


class RecoveryMatrix:
    """A (columns x levels) grid of 1-sparse recovery cells.

    The grid is updated by :meth:`apply`, which adds ``delta`` at
    coordinate ``idx`` to the level-prefix of every column: coordinate
    ``idx`` belongs to levels ``0 .. col_levels[c]`` of column ``c``
    (geometric level sampling, decided by the owner's hash functions).
    """

    __slots__ = ("columns", "levels", "W", "S", "F", "_level_index")

    def __init__(self, columns: int, levels: int):
        if columns < 1 or levels < 1:
            raise ValueError("need at least one column and one level")
        self.columns = columns
        self.levels = levels
        self.W = np.zeros((columns, levels), dtype=np.int64)
        self.S = np.zeros((columns, levels), dtype=np.int64)
        self.F = np.zeros((columns, levels), dtype=np.int64)
        self._level_index = np.arange(levels, dtype=np.int64)[None, :]

    # ------------------------------------------------------------------
    # Updates / merging (linear operations)
    # ------------------------------------------------------------------
    def apply(self, col_levels: np.ndarray, idx: int, delta: int,
              zpow: int) -> None:
        """Add ``delta`` at coordinate ``idx``.

        ``col_levels`` is the per-column top level of ``idx`` (shape
        ``(columns,)``); ``zpow`` is ``z^idx mod p``.
        """
        mask = self._level_index <= col_levels[:, None]
        self.W += delta * mask
        self.S += (delta * idx) * mask
        self.F = (self.F + (delta * zpow) * mask) % MERSENNE_P

    def merge_from(self, other: "RecoveryMatrix") -> None:
        """Add another matrix (sketch linearity, Remark 3.2)."""
        if (other.columns, other.levels) != (self.columns, self.levels):
            raise ValueError("cannot merge matrices of different shapes")
        self.W += other.W
        self.S += other.S
        self.F = (self.F + other.F) % MERSENNE_P

    def copy(self) -> "RecoveryMatrix":
        dup = RecoveryMatrix(self.columns, self.levels)
        dup.W = self.W.copy()
        dup.S = self.S.copy()
        dup.F = self.F.copy()
        return dup

    @staticmethod
    def sum_of(matrices: "list[RecoveryMatrix]") -> "RecoveryMatrix":
        """Sum many matrices (component merge).

        ``F`` is reduced mod p after every addition so the running value
        stays below ``2p < 2^62`` and cannot overflow int64 regardless of
        how many matrices are merged.
        """
        if not matrices:
            raise ValueError("need at least one matrix to sum")
        first = matrices[0]
        out = RecoveryMatrix(first.columns, first.levels)
        out.W = np.sum([m.W for m in matrices], axis=0)
        out.S = np.sum([m.S for m in matrices], axis=0)
        acc = np.zeros_like(first.F)
        for matrix in matrices:
            acc = (acc + matrix.F) % MERSENNE_P
        out.F = acc
        return out

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def column_is_zero(self, col: int) -> bool:
        """True iff column ``col`` looks like the zero vector.

        Checked on level 0, which contains every coordinate; the
        fingerprint makes a false zero require ``F = 0`` for a nonzero
        polynomial evaluation (probability ``< N/p``).
        """
        return (
            int(self.W[col, 0]) == 0
            and int(self.S[col, 0]) == 0
            and int(self.F[col, 0]) == 0
        )

    def recover(
        self,
        col: int,
        max_index: int,
        fingerprint_ok: Callable[[int, int, int], bool],
    ) -> Optional[int]:
        """Try to recover a coordinate from column ``col``.

        Scans the levels and returns the first coordinate whose cell
        passes the divisibility, range, and fingerprint tests; ``None``
        if every level rejects (the sampler's ``bottom`` outcome).
        """
        W_col = self.W[col]
        S_col = self.S[col]
        F_col = self.F[col]
        for level in range(self.levels):
            w = int(W_col[level])
            if w == 0:
                continue
            s = int(S_col[level])
            if s % w != 0:
                continue
            idx = s // w
            if not 0 <= idx < max_index:
                continue
            if fingerprint_ok(idx, w, int(F_col[level])):
                return idx
        return None

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def words(self) -> int:
        """Accounting footprint: three words per cell."""
        return 3 * self.columns * self.levels

    def is_entirely_zero(self) -> bool:
        return (
            not self.W.any() and not self.S.any() and not self.F.any()
        )
