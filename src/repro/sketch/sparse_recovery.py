"""1-sparse recovery cells, stacked into (columns x levels) matrices.

The classic building block (paper, Lemma 3.1 via [CJ19]): for a vector
``x`` restricted to some coordinate subset, keep three sums

    W = sum x_i,    S = sum i * x_i,    F = sum x_i * z^i  (mod p)

If the restriction is exactly 1-sparse, then ``i* = S / W`` recovers the
coordinate and the fingerprint test ``F == W * z^{i*}`` confirms it; for
any other vector the test fails except with probability ``<= N/p`` over
the choice of ``z`` (a nonzero polynomial of degree < N has < N roots).

Bulk ingestion layout
---------------------
Logically, cell ``(c, l)`` of an L0-sampler holds the coordinates whose
geometric level in column ``c`` is *at least* ``l`` -- a prefix of the
level axis.  Storing those prefixes directly would force every update
to touch ``levels`` cells per column.  We instead store the
*differential* form: :attr:`RecoveryMatrix.Wd` ``[c, lv]`` holds the
contribution of coordinates whose level is *exactly* ``lv``, so an
update touches exactly one cell per column and bulk ingestion becomes a
single scatter-add.  Queries rebuild the prefix cells with one reverse
cumulative sum per column (the materialized :attr:`W` / :attr:`S` /
:attr:`F` views), which is where the classic triple above reappears bit
for bit.

The fingerprint needs mod-p sums, but a scatter-add cannot reduce mod p
on the fly without risking int64 overflow.  So ``F`` is stored as two
*limb* accumulators, plain int64 sums with no reduction:

    Flo = sum x_i * (z^i mod p & (2^32-1)),   Fhi = sum x_i * (z^i >> 32)

and ``F = (Flo + 2^32 * Fhi) mod p`` is recomputed on read.  Both limbs
stay linear, so merges remain plain additions.  A mass counter bounds
``|Flo| <= mass * 2^32``; once the mass reaches ``2^24`` the limbs are
*renormalized* (fold to the canonical residue, re-split), keeping every
intermediate -- including the query-time cumulative sums over at most 64
levels -- below ``2^63``.  Renormalization preserves the represented
value exactly, so the sequential and bulk paths stay bit-identical.

Physically, one matrix is a single ``(4, columns, levels)`` int64 block
holding ``(Wd, Sd, Flo, Fhi)`` -- a whole update is then *one* scatter
into the flattened block, and a merge is one array addition.  A
:class:`RecoveryPool` stacks many matrices into a ``(count, 4, columns,
levels)`` block so the family-level bulk router can ingest a batch for
every vertex at once.

Bulk recovery mirrors bulk ingestion: :func:`recover_from_prefix`
decodes a whole ``(4, k, levels)`` block of prefix-summed columns with
array arithmetic (divisibility, range, and limb-combined fingerprint
tests on every level at once, lowest passing level wins), and
:meth:`RecoveryMatrix.recover_many` / ``column_is_zero_many`` feed it --
bit-identical to the scalar scans, minus the per-level Python dispatch.
:class:`MergeScratch` recycles merge accumulators across query phases.

Magnitudes: ``|W| <= m``, ``|S| <= levels * m * N`` (< 2^59 for every
configuration we run), limbs as above.
"""

from __future__ import annotations

import weakref
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro import kernels as _kernels
from repro.errors import SketchError
from repro.sketch.hashing import MERSENNE_P

#: Renormalize the fingerprint limbs once this much absolute update
#: mass (sum of |delta|) has accumulated.  2^24 keeps the level-axis
#: cumulative sums exact in int64 with a wide margin (see module doc).
RENORM_MASS = 1 << 24

_MASK32 = (1 << 32) - 1
_MASK29 = (1 << 29) - 1

#: Rows of the stacked cell block.
_QW, _QS, _QLO, _QHI = 0, 1, 2, 3


def _combine_limb_scalars(lo: int, hi: int) -> int:
    """``(lo + 2^32 * hi) mod p`` for Python-int limbs (exact bigints)."""
    return (lo + (hi << 32)) % MERSENNE_P


def pool_scatter(flat_cells: np.ndarray, columns: int, levels: int,
                 slots: np.ndarray, col_levels: np.ndarray,
                 idxs: np.ndarray, deltas: np.ndarray,
                 zpows: np.ndarray) -> None:
    """Scatter many (slot, coordinate, delta) updates into a flattened
    ``(count, 4, columns, levels)`` cell block.

    The one entry point for the pool scatter, shared by
    :meth:`RecoveryPool.apply_points` and the execution-backend workers
    (:mod:`repro.mpc.backend`), which write disjoint slot shards of the
    same shared-memory block -- one source of truth keeps the parallel
    and sequential paths bit-identical.  Dispatches to the active
    kernel tier (:mod:`repro.kernels`); duplicate (slot, cell) targets
    accumulate correctly, and int64 addition is exact and
    order-independent, so any partition of the entries over callers
    lands in the same final state.
    """
    _kernels.pool_scatter(flat_cells, columns, levels, slots,
                          col_levels, idxs, deltas, zpows)


def merge_group_cells(cells: np.ndarray,
                      groups: "List[np.ndarray]") -> np.ndarray:
    """Per-group sums of member rows of a ``(count, 4, c, L)`` block.

    ``groups`` is a list of int64 row-index arrays (supernode
    membership); the result is the ``(len(groups), 4, c, L)`` stack of
    merged cells, entry ``i`` the element-wise sum of rows
    ``groups[i]``.  This is the membership-shipped flavour of the
    supernode merge: int64 addition is exact and order-independent, so
    the sum equals a chain of :meth:`RecoveryMatrix.merge_from` calls
    in any order -- except that no limb renormalization runs here.
    Renormalization only changes the limb *decomposition* of the
    fingerprints, never the combined value the queries read, so every
    query answer derived from this stack is bit-identical to the
    parent-side merged-matrix path; the pool-wide mass bound keeps all
    sums inside int64 (see the module docstring's envelope).

    The flat ``(members, glens)`` twin consumed by the execution
    backends is :func:`repro.kernels.merge_groups`; this wrapper just
    flattens the list form into it.
    """
    if not groups:
        return np.empty((0,) + cells.shape[1:], dtype=np.int64)
    if len(groups) == 1:
        members = np.asarray(groups[0], dtype=np.int64)
    else:
        members = np.concatenate(groups).astype(np.int64, copy=False)
    glens = np.fromiter((g.shape[0] for g in groups), dtype=np.int64,
                        count=len(groups))
    return _kernels.merge_groups(cells, members, glens)


def _combine_limbs(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """``(lo + 2^32 * hi) mod p`` for int64 limb arrays (any sign).

    Dispatches to the active kernel tier; both tiers reduce each limb
    mod p first, then apply the shift-by-32 with 29/32-bit sub-limbs so
    every intermediate fits int64.
    """
    return _kernels.combine_limbs(lo, hi)


def _renormalize_limbs(Flo: np.ndarray, Fhi: np.ndarray) -> None:
    """Fold the limbs to the canonical residue and re-split in place.

    Afterwards ``0 <= Flo < 2^32`` and ``0 <= Fhi < 2^29`` (mass 1)
    while the represented value ``(Flo + 2^32*Fhi) mod p`` is unchanged.
    """
    value = _combine_limbs(Flo, Fhi)
    Flo[...] = value & _MASK32
    Fhi[...] = value >> 32


def _suffix_cumsum(arr: np.ndarray) -> np.ndarray:
    """Reverse cumulative sum along the last (level) axis."""
    return np.cumsum(arr[..., ::-1], axis=-1)[..., ::-1]


def recover_from_prefix(
    prefix: np.ndarray,
    max_index: int,
    fingerprint_ok_many: Callable[[np.ndarray, np.ndarray, np.ndarray],
                                  np.ndarray],
) -> np.ndarray:
    """Decode many prefix-summed columns at once.

    ``prefix`` is the ``(4, k, levels)`` int64 block of materialized
    ``(W, S, Flo, Fhi)`` level prefixes for ``k`` independent columns
    (possibly drawn from different matrices).  For each column the
    divisibility, range, and fingerprint tests run on every level, and
    the answer is the lowest passing level's coordinate -- exactly the
    scan order of :meth:`RecoveryMatrix.recover`, so the result is
    bit-identical to the sequential path.  ``fingerprint_ok_many``
    receives flat arrays ``(idxs, ws, fingerprints)`` of the
    candidates that survived the integer tests and returns a boolean
    mask.

    When the callback is the bound ``fingerprint_ok_many`` of a
    :class:`~repro.sketch.l0_sampler.SamplerRandomness` (the only
    production caller), the whole decode runs as one fused kernel-tier
    pass (:func:`repro.kernels.decode_prefix`) with the standard
    ``F == W * z^idx mod p`` test inlined -- same answers, no Python
    round-trip per candidate batch.  Any other callable keeps the
    generic array path below (tests drive it with custom callbacks).

    Returns the int64 array of recovered coordinates, ``-1`` marking
    columns where every level rejected (the sampler's ``bottom``).
    """
    owner = getattr(fingerprint_ok_many, "__self__", None)
    z = getattr(owner, "z", None)
    if z is not None and getattr(owner, "level_hashes", None) is not None:
        return _kernels.decode_prefix(prefix, max_index, int(z))
    W, S, lo, hi = prefix
    k = W.shape[0]
    nonzero = W != 0
    safe_w = np.where(nonzero, W, 1)
    # numpy's % and // follow Python's floored-division convention for
    # signed operands, so these match the scalar ``s % w`` / ``s // w``.
    divisible = nonzero & (S % safe_w == 0)
    idx = S // safe_w
    candidate = divisible & (idx >= 0) & (idx < max_index)
    ok = np.zeros(candidate.shape, dtype=bool)
    if candidate.any():
        fingerprints = _combine_limbs(lo[candidate], hi[candidate])
        ok[candidate] = fingerprint_ok_many(idx[candidate], W[candidate],
                                            fingerprints)
    found = ok.any(axis=1)
    first = np.argmax(ok, axis=1)
    return np.where(found, idx[np.arange(k), first], -1)


class RecoveryMatrix:
    """A (columns x levels) grid of 1-sparse recovery cells.

    The grid is updated by :meth:`apply` / :meth:`apply_many`: adding
    ``delta`` at coordinate ``idx`` touches the cell at ``idx``'s exact
    level in every column (differential storage, see module docstring);
    the level of ``idx`` in column ``c`` is ``col_levels[c]``, decided
    by the owner's hash functions.

    A matrix either owns its cell block or is a view into a
    :class:`RecoveryPool` row (the per-vertex sketches of one
    :class:`~repro.sketch.graph_sketch.SketchFamily` share a pool so the
    bulk router can update all of them with one scatter).
    """

    __slots__ = ("columns", "levels", "cells", "_f_mass", "_pool",
                 "_pool_slot", "_cell_base", "_q_offsets", "_flat_cells",
                 "_scratch_vals", "__weakref__")

    def __init__(self, columns: int, levels: int):
        if columns < 1 or levels < 1:
            raise ValueError("need at least one column and one level")
        self.columns = columns
        self.levels = levels
        self.cells = np.zeros((4, columns, levels), dtype=np.int64)
        self._f_mass = 0
        self._pool: Optional["RecoveryPool"] = None
        self._pool_slot = -1
        self._cell_base = np.arange(columns, dtype=np.int64) * levels
        self._q_offsets = (np.arange(4, dtype=np.int64)
                           * (columns * levels))[:, None]
        self._flat_cells = self.cells.reshape(-1)
        self._scratch_vals = np.empty((4, columns), dtype=np.int64)

    def _rebind_cells(self, cells: np.ndarray) -> None:
        """Point this matrix at a different cell block (pool view/copy)."""
        self.cells = cells
        self._flat_cells = cells.reshape(-1)

    # -- stacked-block accessors ----------------------------------------
    @property
    def Wd(self) -> np.ndarray:
        """Differential counts: cell ``(c, lv)`` sums exact level lv."""
        return self.cells[_QW]

    @property
    def Sd(self) -> np.ndarray:
        """Differential index-sums (see :attr:`Wd`)."""
        return self.cells[_QS]

    @property
    def Flo(self) -> np.ndarray:
        """Low fingerprint limb (see module docstring)."""
        return self.cells[_QLO]

    @property
    def Fhi(self) -> np.ndarray:
        """High fingerprint limb (see module docstring)."""
        return self.cells[_QHI]

    # ------------------------------------------------------------------
    # Mass bookkeeping (fingerprint-limb overflow control)
    # ------------------------------------------------------------------
    @property
    def _mass(self) -> int:
        if self._pool is not None:
            return int(self._pool.row_mass[self._pool_slot])
        return self._f_mass

    def _bump_mass(self, amount: int) -> None:
        if self._pool is not None:
            self._pool.bump_row(self._pool_slot, amount)
            return
        self._f_mass += amount
        if self._f_mass > RENORM_MASS:
            _renormalize_limbs(self.cells[_QLO], self.cells[_QHI])
            self._f_mass = 1

    # ------------------------------------------------------------------
    # Updates / merging (linear operations)
    # ------------------------------------------------------------------
    def apply(self, col_levels: np.ndarray, idx: int, delta: int,
              zpow: int) -> None:
        """Add ``delta`` at coordinate ``idx``.

        ``col_levels`` is the per-column top level of ``idx`` (shape
        ``(columns,)``); ``zpow`` is ``z^idx mod p``.  One fancy
        scatter into the stacked cell block covers all four quantities.
        """
        flat = (self._q_offsets + (self._cell_base + col_levels)).ravel()
        values = self._scratch_vals
        values[_QW] = delta
        values[_QS] = delta * idx
        values[_QLO] = delta * (zpow & _MASK32)
        values[_QHI] = delta * (zpow >> 32)
        self._flat_cells[flat] += values.ravel()
        self._bump_mass(abs(delta))

    def apply_many(self, col_levels: np.ndarray, idxs: np.ndarray,
                   deltas: np.ndarray, zpows: np.ndarray) -> None:
        """Add many coordinates at once: one scatter for everything.

        ``col_levels`` has shape ``(e, columns)``; ``idxs``, ``deltas``
        and ``zpows`` have shape ``(e,)`` (all int64, ``zpows`` in
        ``[0, p)``).  Exactly equivalent to ``e`` :meth:`apply` calls --
        the scatter targets the same cells with the same integer
        arithmetic, just without the per-edge Python dispatch.
        """
        e = idxs.shape[0]
        if e == 0:
            return
        # A standalone matrix is a 1-slot pool: the shared scatter
        # kernel with every point targeting slot 0 hits exactly the
        # cells the old dedicated scatter did, so the bit-identical
        # contract keeps one source of truth across tiers.
        _kernels.pool_scatter(self._flat_cells, self.columns,
                              self.levels,
                              np.zeros(e, dtype=np.int64), col_levels,
                              idxs, deltas, zpows)
        self._bump_mass(int(np.abs(deltas).sum()))

    def merge_from(self, other: "RecoveryMatrix") -> None:
        """Add another matrix (sketch linearity, Remark 3.2)."""
        if (other.columns, other.levels) != (self.columns, self.levels):
            raise SketchError(
                f"cannot merge a {other.columns}x{other.levels} matrix "
                f"into a {self.columns}x{self.levels} one"
            )
        self.cells += other.cells
        self._bump_mass(other._mass)

    def copy(self) -> "RecoveryMatrix":
        dup = RecoveryMatrix(self.columns, self.levels)
        dup._rebind_cells(self.cells.copy())
        dup._f_mass = self._mass
        return dup

    def __reduce__(self):
        """Checkpoint-safe pickling (see :mod:`repro.session`).

        A pool-backed view must *stay* a view: pickling its cell array
        directly would detach it from the pool (numpy does not preserve
        aliasing across pickle), silently forking the sketch state.  A
        view therefore serialises as ``(pool, slot)`` -- the pickle memo
        keeps one shared pool instance -- and a standalone matrix as its
        own cell copy.
        """
        if self._pool is not None:
            return (_restore_pool_view, (self._pool, self._pool_slot))
        return (
            _restore_standalone_matrix,
            (self.columns, self.levels, np.asarray(self.cells),
             self._f_mass),
        )

    @staticmethod
    def sum_of(matrices: "list[RecoveryMatrix]",
               scratch: Optional["MergeScratch"] = None) -> "RecoveryMatrix":
        """Sum many matrices (component merge).

        Row/column shapes are validated up front -- mixed shapes raise
        :class:`~repro.errors.SketchError` instead of surfacing as a
        numpy broadcast error mid-accumulation.  The fingerprint limbs
        are renormalized whenever the running mass exceeds the
        threshold, so the accumulator stays inside int64 regardless of
        how many matrices are merged.

        With ``scratch`` given, the accumulator is drawn from the
        scratch pool instead of freshly allocated -- the merge-heavy
        query phases reuse the same blocks phase after phase (see
        :class:`MergeScratch` for the lifetime rules).
        """
        if not matrices:
            raise SketchError("need at least one matrix to sum")
        first = matrices[0]
        shape = (first.columns, first.levels)
        for matrix in matrices:
            if (matrix.columns, matrix.levels) != shape:
                raise SketchError(
                    f"cannot sum matrices of mixed shapes: expected "
                    f"{shape[0]}x{shape[1]}, got "
                    f"{matrix.columns}x{matrix.levels}"
                )
        if scratch is None:
            out = RecoveryMatrix(*shape)
        else:
            out = scratch.matrix(*shape)
        for matrix in matrices:
            out.merge_from(matrix)
        return out

    # ------------------------------------------------------------------
    # Materialized prefix views (the classic W / S / F triples)
    # ------------------------------------------------------------------
    @property
    def W(self) -> np.ndarray:
        """Materialized prefix counts: cell ``(c, l)`` sums levels >= l.

        A snapshot for queries and inspection -- writing to it does not
        affect the matrix.
        """
        return _suffix_cumsum(self.cells[_QW])

    @property
    def S(self) -> np.ndarray:
        """Materialized prefix index-sums (see :attr:`W`)."""
        return _suffix_cumsum(self.cells[_QS])

    @property
    def F(self) -> np.ndarray:
        """Materialized prefix fingerprints mod p (see :attr:`W`)."""
        return _combine_limbs(_suffix_cumsum(self.cells[_QLO]),
                              _suffix_cumsum(self.cells[_QHI]))

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------
    def column_is_zero(self, col: int) -> bool:
        """True iff column ``col`` looks like the zero vector.

        Checked on the level-0 prefix, which contains every coordinate;
        the fingerprint makes a false zero require ``F = 0`` for a
        nonzero polynomial evaluation (probability ``< N/p``).
        """
        sums = self.cells[:, col, :].sum(axis=1)
        if int(sums[_QW]) != 0 or int(sums[_QS]) != 0:
            return False
        return _combine_limb_scalars(int(sums[_QLO]),
                                     int(sums[_QHI])) == 0

    def column_is_zero_many(
        self, cols: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Vectorized :meth:`column_is_zero` over many columns at once.

        ``cols`` selects the columns to test (default: all of them, in
        order).  One level-axis reduction covers every requested
        column; bit-identical to the scalar test per column.
        """
        block = self.cells if cols is None else self.cells[:, cols, :]
        sums = block.sum(axis=-1)                           # (4, k)
        zero = (sums[_QW] == 0) & (sums[_QS] == 0)
        if zero.any():
            zero &= _combine_limbs(sums[_QLO], sums[_QHI]) == 0
        return zero

    def recover(
        self,
        col: int,
        max_index: int,
        fingerprint_ok: Callable[[int, int, int], bool],
    ) -> Optional[int]:
        """Try to recover a coordinate from column ``col``.

        Scans the levels and returns the first coordinate whose cell
        passes the divisibility, range, and fingerprint tests; ``None``
        if every level rejects (the sampler's ``bottom`` outcome).
        """
        prefix = np.cumsum(self.cells[:, col, ::-1], axis=1)[:, ::-1]
        W_col, S_col, lo_col, hi_col = prefix
        for level in range(self.levels):
            w = int(W_col[level])
            if w == 0:
                continue
            s = int(S_col[level])
            if s % w != 0:
                continue
            idx = s // w
            if not 0 <= idx < max_index:
                continue
            fingerprint = _combine_limb_scalars(int(lo_col[level]),
                                                int(hi_col[level]))
            if fingerprint_ok(idx, w, fingerprint):
                return idx
        return None

    def recover_many(
        self,
        cols: np.ndarray,
        max_index: int,
        fingerprint_ok_many: Callable[
            [np.ndarray, np.ndarray, np.ndarray], np.ndarray],
    ) -> np.ndarray:
        """Vectorized :meth:`recover` over many columns of this matrix.

        Materializes the requested columns' level prefixes with one
        cumulative sum and decodes them together (see
        :func:`recover_from_prefix`).  ``cols`` may repeat and appear
        in any order; the result's entry ``i`` equals
        ``self.recover(cols[i], ...)`` with ``-1`` standing in for
        ``None``.
        """
        cols = np.asarray(cols, dtype=np.int64)
        if cols.size == 0:
            return np.empty(0, dtype=np.int64)
        prefix = _suffix_cumsum(self.cells[:, cols, :])     # (4, k, L)
        return recover_from_prefix(prefix, max_index, fingerprint_ok_many)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    @property
    def words(self) -> int:
        """Accounting footprint: three words per cell.

        The fingerprint's two int64 limbs represent one logical field
        element (61 bits plus carry slack), so the model-level count
        stays at three words per cell.
        """
        return 3 * self.columns * self.levels

    def is_entirely_zero(self) -> bool:
        return (
            not self.cells[_QW].any()
            and not self.cells[_QS].any()
            and not self.F.any()
        )


def _restore_pool_view(pool: "RecoveryPool", slot: int) -> RecoveryMatrix:
    """Pickle hook for pool-backed :class:`RecoveryMatrix` views."""
    return pool.matrix(slot)


def _restore_standalone_matrix(columns: int, levels: int,
                               cells: np.ndarray,
                               mass: int) -> RecoveryMatrix:
    """Pickle hook for standalone :class:`RecoveryMatrix` instances."""
    matrix = RecoveryMatrix(columns, levels)
    matrix.cells[...] = cells
    matrix._f_mass = mass
    return matrix


class RecoveryPool:
    """Stacked recovery cells for a whole family of matrices.

    Holds ``count`` matrices' differential cells as one contiguous
    ``(count, 4, columns, levels)`` block.  :meth:`matrix` hands out
    view-backed :class:`RecoveryMatrix` rows -- they behave exactly like
    standalone matrices -- while :meth:`apply_points` lets the bulk
    ingestion router update *many rows with one scatter*, which is what
    makes batch ingestion independent of the Python-level per-edge
    dispatch cost.
    """

    __slots__ = ("count", "columns", "levels", "cells", "f_mass",
                 "row_mass", "_flat", "_views",
                 "_view_cell_base", "_view_q_offsets", "_view_scratch")

    def __init__(self, count: int, columns: int, levels: int):
        if count < 1:
            raise ValueError("need at least one slot")
        if columns < 1 or levels < 1:
            raise ValueError("need at least one column and one level")
        self.count = count
        self.columns = columns
        self.levels = levels
        self.cells = np.zeros((count, 4, columns, levels), dtype=np.int64)
        #: Total mass and per-row (per-slot) mass.  The total drives the
        #: renormalization trigger (it dominates every row); the per-row
        #: masses give detached copies and merges an accurate bound so
        #: they do not inherit the whole pool's mass.
        self.f_mass = 0
        self.row_mass = np.zeros(count, dtype=np.int64)
        self._flat = self.cells.reshape(-1)
        #: Live view-backed matrices handed out by :meth:`matrix`, kept
        #: as weakrefs so :meth:`adopt_buffer` can re-point them when
        #: the cell block moves (backend attach after a checkpoint
        #: restore hands views out before the buffer is adopted).
        self._views: List["weakref.ref[RecoveryMatrix]"] = []
        # Index helpers shared by every view this pool hands out (the
        # bulk scatter itself lives in :func:`pool_scatter`).
        self._view_cell_base = np.arange(columns, dtype=np.int64) * levels
        self._view_q_offsets = (np.arange(4, dtype=np.int64)
                                * (columns * levels))[:, None]
        self._view_scratch = np.empty((4, columns), dtype=np.int64)

    # -- per-quantity views (inspection / tests) ------------------------
    @property
    def Wd(self) -> np.ndarray:
        return self.cells[:, _QW]

    @property
    def Sd(self) -> np.ndarray:
        return self.cells[:, _QS]

    @property
    def Flo(self) -> np.ndarray:
        return self.cells[:, _QLO]

    @property
    def Fhi(self) -> np.ndarray:
        return self.cells[:, _QHI]

    def adopt_buffer(self, cells: np.ndarray) -> None:
        """Move this pool's cells into an externally owned buffer.

        The execution backends use this to place the cell block in
        ``multiprocessing.shared_memory`` so worker processes can
        scatter into their row shards directly.  Current contents are
        preserved, and any live :meth:`matrix` views are re-pointed at
        the new block (a checkpoint restore hands out views before the
        restored family re-attaches to a backend).
        """
        if cells.shape != self.cells.shape or cells.dtype != np.int64:
            raise ValueError(
                f"buffer of shape {cells.shape} / {cells.dtype} cannot "
                f"back a pool of shape {self.cells.shape} int64"
            )
        cells[...] = self.cells
        self.cells = cells
        self._flat = cells.reshape(-1)
        live: List["weakref.ref[RecoveryMatrix]"] = []
        for ref in self._views:
            view = ref()
            if view is None:
                continue
            view._rebind_cells(self.cells[view._pool_slot])
            live.append(ref)
        self._views = live

    def matrix(self, slot: int) -> RecoveryMatrix:
        """A view-backed matrix over row ``slot`` of the pool.

        Built without the standalone constructor's cell-block
        allocation; the small index/scratch helper arrays are shared
        across all of this pool's views (they are read-only except the
        scratch, which every ``apply`` call fully overwrites first).

        Two views of the same slot alias the same cells -- callers
        wanting an independent zero matrix should construct a
        standalone :class:`RecoveryMatrix` instead.
        """
        if not 0 <= slot < self.count:
            raise ValueError(f"slot {slot} outside pool of {self.count}")
        view = RecoveryMatrix.__new__(RecoveryMatrix)
        view.columns = self.columns
        view.levels = self.levels
        view._f_mass = 0
        view._pool = self
        view._pool_slot = slot
        view._cell_base = self._view_cell_base
        view._q_offsets = self._view_q_offsets
        view._scratch_vals = self._view_scratch
        view._rebind_cells(self.cells[slot])
        self._views.append(weakref.ref(view))
        return view

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Pickle as pure values: a private copy of the cell block plus
        the mass counters.  The flat view, the view registry, and any
        shared-memory placement are reconstruction artifacts -- a
        restored pool always starts with a private buffer and is moved
        back into shared memory by the backend re-attach, if any."""
        return (self.count, self.columns, self.levels,
                np.asarray(self.cells).copy(), self.f_mass,
                self.row_mass.copy())

    def __setstate__(self, state) -> None:
        count, columns, levels, cells, f_mass, row_mass = state
        self.__init__(count, columns, levels)
        self.cells[...] = cells
        self.f_mass = f_mass
        self.row_mass[...] = row_mass

    # ------------------------------------------------------------------
    def bump_mass(self, amount: int) -> None:
        """Record update mass; renormalize the whole pool when due.

        The pool total over-approximates every row's mass, so one
        pool-wide renormalization keeps all rows inside the int64
        envelope.  Renormalization preserves represented values
        exactly (it only changes the limb decomposition).
        """
        self.f_mass += amount
        if self.f_mass > RENORM_MASS:
            _renormalize_limbs(self.cells[:, _QLO], self.cells[:, _QHI])
            self.f_mass = 1
            self.row_mass[:] = 1

    def bump_row(self, slot: int, amount: int) -> None:
        """Record update mass against one slot (scalar view updates)."""
        self.row_mass[slot] += amount
        self.bump_mass(amount)

    def apply_points(self, slots: np.ndarray, col_levels: np.ndarray,
                     idxs: np.ndarray, deltas: np.ndarray,
                     zpows: np.ndarray) -> None:
        """Scatter many (slot, coordinate, delta) updates at once.

        ``slots``, ``idxs``, ``deltas``, ``zpows`` have shape ``(e,)``
        and ``col_levels`` has shape ``(e, columns)``.  Duplicate
        (slot, cell) targets accumulate correctly (``np.add.at``), so
        the result is bit-identical to applying the points one at a
        time to the individual row matrices in any order.
        """
        if slots.shape[0] == 0:
            return
        pool_scatter(self._flat, self.columns, self.levels, slots,
                     col_levels, idxs, deltas, zpows)
        self.record_mass(slots, deltas)

    def record_mass(self, slots: np.ndarray, deltas: np.ndarray) -> None:
        """Record a scatter's update mass (per row and pool-wide).

        Split out of :meth:`apply_points` because the shared-memory
        backend's workers only scatter -- the parent records the mass
        (and runs any due renormalization) after the barrier, at the
        same point in the update order as the sequential path.
        """
        if slots.shape[0] == 0:
            return
        mass = np.abs(deltas)
        # bincount beats the buffered np.add.at for this parent-side
        # bookkeeping; float64 weight sums are exact here (per-slot
        # mass stays far below 2^53 between renormalizations).
        self.row_mass += np.bincount(
            slots, weights=mass, minlength=self.count
        ).astype(np.int64)
        self.bump_mass(int(mass.sum()))

    @property
    def words(self) -> int:
        """Accounting footprint: three words per cell (see matrix)."""
        return 3 * self.count * self.columns * self.levels


class MergeScratch:
    """Reusable accumulator matrices for merge-heavy query phases.

    The deletion path merges fragment sketches, then merges supernodes
    pairwise during the AGM halving iterations -- every merge used to
    allocate a fresh ``(4, columns, levels)`` block that died at the
    end of the phase.  A scratch pool keeps those blocks alive across
    phases: :meth:`matrix` hands out a zeroed accumulator (recycled
    when one of the right shape is free, freshly allocated otherwise),
    and :meth:`reset` returns every handed-out matrix to the free
    list.

    Lifetime contract: matrices obtained from :meth:`matrix` are valid
    until the next :meth:`reset` -- callers reset at the *start* of a
    phase, when the previous phase's merged sketches are already dead.
    Matrices of different shapes coexist (the pool is keyed by shape).
    """

    __slots__ = ("_free", "_used")

    def __init__(self):
        self._free: Dict[Tuple[int, int], List[RecoveryMatrix]] = {}
        self._used: List[Tuple[Tuple[int, int], RecoveryMatrix]] = []

    def matrix(self, columns: int, levels: int) -> RecoveryMatrix:
        """A zeroed standalone accumulator matrix from the pool."""
        key = (columns, levels)
        stack = self._free.get(key)
        if stack:
            out = stack.pop()
            out.cells[...] = 0
            out._f_mass = 0
        else:
            out = RecoveryMatrix(columns, levels)
        self._used.append((key, out))
        return out

    def reset(self) -> None:
        """Reclaim every matrix handed out since the last reset."""
        for key, matrix in self._used:
            self._free.setdefault(key, []).append(matrix)
        self._used.clear()

    @property
    def pooled(self) -> int:
        """Total matrices currently owned by the pool (free + used)."""
        return (sum(len(stack) for stack in self._free.values())
                + len(self._used))
