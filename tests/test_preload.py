"""Preprocessing from an arbitrary starting graph (Section 1.1 remark)."""

import numpy as np
import pytest

from repro.baselines import DynamicConnectivityOracle
from repro.core import MPCConnectivity
from repro.errors import QueryError
from repro.mpc import MPCConfig
from repro.streams import erdos_renyi_insertions
from repro.types import dele, ins
from tests.conftest import make_valid_batch


class TestPreload:
    def test_preload_builds_correct_components(self):
        n = 40
        edges = [up.edge for up in erdos_renyi_insertions(n, 60, seed=1)]
        alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=1))
        alg.preload(edges)
        oracle = DynamicConnectivityOracle(n)
        for u, v in edges:
            oracle.insert(u, v)
        assert alg.num_components() == oracle.num_components()
        forest = alg.query_spanning_forest()
        assert len(forest.edges) == n - oracle.num_components()
        alg.forest.check_invariants()

    def test_preload_charges_logarithmic_rounds(self):
        n = 64
        edges = [up.edge for up in erdos_renyi_insertions(n, 80, seed=2)]
        alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=2))
        snapshot = alg.preload(edges)
        assert "preload" in snapshot.rounds_by_category
        # O(log n) iterations, each a multi-round converge-cast: more
        # expensive than a steady-state update phase would be.
        assert snapshot.rounds >= np.log2(n)

    def test_updates_continue_after_preload(self):
        n = 32
        rng = np.random.default_rng(3)
        edges = [up.edge for up in erdos_renyi_insertions(n, 40, seed=3)]
        alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=3))
        alg.preload(edges)
        oracle = DynamicConnectivityOracle(n)
        for u, v in edges:
            oracle.insert(u, v)
        live = set(edges)
        for _ in range(15):
            batch = make_valid_batch(rng, n, live, size=6)
            alg.apply_batch(batch)
            oracle.apply_batch(batch)
            assert alg.num_components() == oracle.num_components()
        assert alg.stats["sketch_failures"] == 0

    def test_preload_equivalent_to_incremental(self):
        n = 24
        edges = [up.edge for up in erdos_renyi_insertions(n, 30, seed=4)]
        pre = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=4))
        pre.preload(edges)
        inc = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=4))
        for u, v in edges:
            inc.apply_batch([ins(u, v)])
        for u in range(n):
            for v in range(u + 1, n):
                assert pre.connected(u, v) == inc.connected(u, v)

    def test_preload_twice_rejected(self):
        alg = MPCConnectivity(MPCConfig(n=8, phi=0.5, seed=5))
        alg.preload([(0, 1)])
        with pytest.raises(QueryError):
            alg.preload([(2, 3)])

    def test_preload_after_updates_rejected(self):
        alg = MPCConnectivity(MPCConfig(n=8, phi=0.5, seed=6))
        alg.apply_batch([ins(0, 1)])
        with pytest.raises(QueryError):
            alg.preload([(2, 3)])

    def test_tree_edge_deletion_after_preload(self):
        """Sketches loaded by preload must serve replacement queries."""
        alg = MPCConnectivity(MPCConfig(n=8, phi=0.5, seed=7))
        alg.preload([(0, 1), (1, 2), (0, 2)])
        tree = set(alg.query_spanning_forest().edges)
        victim = sorted(tree)[0]
        alg.apply_batch([dele(*victim)])
        assert alg.connected(0, 2)
        assert alg.stats["sketch_failures"] == 0