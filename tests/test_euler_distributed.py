"""Distributed Euler-tour forest: batch operations vs the reference.

The central property: any sequence of batch links/cuts leaves the
index-based structure equivalent (same components, same tree edge sets,
valid reconstructed tours) to the list-based reference executing the
same operations one at a time.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.euler import DistributedEulerForest, EulerTourForest
from repro.types import canonical


def components_of(forest, n):
    groups = {}
    for v in range(n):
        groups.setdefault(forest.tree_id(v), set()).add(v)
    return sorted(tuple(sorted(g)) for g in groups.values())


class TestBasics:
    def test_initial_singletons(self):
        forest = DistributedEulerForest(4)
        forest.check_invariants()
        assert forest.num_components() == 4
        assert forest.words == 4

    def test_single_link(self):
        forest = DistributedEulerForest(4)
        report = forest.link(0, 1)
        forest.check_invariants()
        assert forest.connected(0, 1)
        assert forest.has_edge(1, 0)
        assert report.messages > 0

    def test_link_same_tour_rejected(self):
        forest = DistributedEulerForest(3)
        forest.link(0, 1)
        with pytest.raises(ValueError):
            forest.link(1, 0)

    def test_cut_non_tree_edge_rejected(self):
        forest = DistributedEulerForest(3)
        with pytest.raises(ValueError):
            forest.cut(0, 1)

    def test_link_cut_round_trip(self):
        forest = DistributedEulerForest(5)
        forest.batch_link([(0, 1), (1, 2), (3, 4)])
        forest.check_invariants()
        forest.batch_cut([(1, 2)])
        forest.check_invariants()
        assert forest.connected(0, 1)
        assert not forest.connected(0, 2)
        assert forest.connected(3, 4)

    def test_cycle_in_batch_link_rejected(self):
        forest = DistributedEulerForest(4)
        with pytest.raises(ValueError):
            forest.batch_link([(0, 1), (1, 2), (2, 0)])

    def test_empty_batches_are_noops(self):
        forest = DistributedEulerForest(3)
        assert forest.batch_link([]).messages == 0
        assert forest.batch_cut([]).messages == 0


class TestBatchLink:
    def test_chain_of_tours(self):
        forest = DistributedEulerForest(10)
        forest.batch_link([(i, i + 1) for i in range(9)])
        forest.check_invariants()
        assert forest.num_components() == 1
        walk = forest.reconstruct_tour(forest.tree_id(0))
        assert len(walk) == 2 * 9

    def test_star_merge(self):
        forest = DistributedEulerForest(8)
        forest.batch_link([(0, v) for v in range(1, 8)])
        forest.check_invariants()
        assert forest.num_components() == 1

    def test_merge_of_existing_trees_at_internal_vertices(self):
        forest = DistributedEulerForest(12)
        forest.batch_link([(0, 1), (1, 2), (2, 3)])   # path A
        forest.batch_link([(4, 5), (5, 6), (6, 7)])   # path B
        forest.batch_link([(8, 9), (9, 10), (10, 11)])  # path C
        # Join at internal vertices: 1 (in A) to 5 (in B), 6 to 9.
        forest.batch_link([(1, 5), (6, 9)])
        forest.check_invariants()
        assert forest.num_components() == 1
        assert sorted(forest.path_edges(0, 11)) == sorted(
            [(0, 1), (1, 5), (5, 6), (6, 9), (9, 10), (10, 11)]
        )

    def test_multiple_independent_merges(self):
        forest = DistributedEulerForest(8)
        report = forest.batch_link([(0, 1), (2, 3), (4, 5), (6, 7)])
        forest.check_invariants()
        assert forest.num_components() == 4
        assert len(report.new_tours) == 4

    def test_message_count_linear_in_batch(self):
        forest = DistributedEulerForest(64)
        report = forest.batch_link([(i, i + 1) for i in range(0, 62, 2)])
        k = 31
        assert report.messages <= 8 * k + 4


class TestBatchCut:
    def test_shatter_star(self):
        forest = DistributedEulerForest(8)
        forest.batch_link([(0, v) for v in range(1, 8)])
        forest.batch_cut([(0, v) for v in range(1, 8)])
        forest.check_invariants()
        assert forest.num_components() == 8

    def test_partial_cut_of_path(self):
        forest = DistributedEulerForest(10)
        forest.batch_link([(i, i + 1) for i in range(9)])
        forest.batch_cut([(2, 3), (6, 7)])
        forest.check_invariants()
        assert components_of(forest, 10) == [
            (0, 1, 2), (3, 4, 5, 6), (7, 8, 9)
        ]

    def test_cut_and_link_in_sequence(self):
        forest = DistributedEulerForest(6)
        forest.batch_link([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])
        forest.batch_cut([(1, 2), (3, 4)])
        assert components_of(forest, 6) == [(0, 1), (2, 3), (4, 5)]
        forest.batch_link([(0, 3), (2, 5)])
        forest.check_invariants()
        assert components_of(forest, 6) == [(0, 1, 2, 3, 4, 5)]
        assert sorted(forest.all_edges()) == [
            (0, 1), (0, 3), (2, 3), (2, 5), (4, 5)
        ]


class TestPathsAndAncestry:
    def test_path_in_deep_tree(self):
        forest = DistributedEulerForest(32)
        forest.batch_link([(i, i + 1) for i in range(31)])
        path = forest.path_edges(0, 31)
        assert path == [(i, i + 1) for i in range(31)]

    def test_path_in_star(self):
        forest = DistributedEulerForest(8)
        forest.batch_link([(0, v) for v in range(1, 8)])
        assert forest.path_edges(3, 6) == [(0, 3), (0, 6)]

    def test_path_matches_reference(self):
        rng = np.random.default_rng(5)
        n = 20
        dist = DistributedEulerForest(n)
        ref = EulerTourForest(n)
        for v in range(1, n):
            u = int(rng.integers(0, v))
            dist.link(u, v)
            ref.link(u, v)
        for _ in range(40):
            a, b = rng.choice(n, size=2, replace=False)
            assert sorted(dist.path_edges(int(a), int(b))) == \
                sorted(ref.path_edges(int(a), int(b)))

    def test_path_cross_trees_rejected(self):
        forest = DistributedEulerForest(4)
        with pytest.raises(ValueError):
            forest.path_edges(0, 3)

    def test_two_vertex_ancestor_regression(self):
        """Root with a single child shares its child's tour interval;
        the strict test must not call the child an ancestor."""
        forest = DistributedEulerForest(2)
        forest.link(0, 1)
        root = forest.root_of(forest.tree_id(0))
        child = 1 - root
        assert forest.is_ancestor(root, child)
        assert not forest.is_ancestor(child, root)
        assert forest.path_edges(0, 1) == [(0, 1)]


class TestReroot:
    def test_reroot_changes_root_only(self):
        forest = DistributedEulerForest(6)
        forest.batch_link([(0, 1), (1, 2), (2, 3), (2, 4)])
        before = components_of(forest, 6)
        forest.reroot(3)
        forest.check_invariants()
        assert forest.root_of(forest.tree_id(3)) == 3
        assert components_of(forest, 6) == before

    def test_reroot_singleton(self):
        forest = DistributedEulerForest(2)
        forest.reroot(1)
        forest.check_invariants()


class TestRandomizedAgainstReference:
    @pytest.mark.parametrize("seed", range(5))
    def test_mixed_batches_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = 18
        dist = DistributedEulerForest(n)
        ref = EulerTourForest(n)
        tree_edges = set()
        for _ in range(40):
            # Random batch of cuts then links, valid against both.
            cuts = []
            if tree_edges:
                count = int(rng.integers(0, min(3, len(tree_edges)) + 1))
                pool = sorted(tree_edges)
                picks = rng.choice(len(pool), size=count, replace=False)
                cuts = [pool[i] for i in picks]
            for edge in cuts:
                tree_edges.discard(edge)
            if cuts:
                dist.batch_cut(cuts)
                for edge in cuts:
                    ref.cut(*edge)
            links = []
            for _ in range(int(rng.integers(1, 4))):
                u = int(rng.integers(0, n))
                v = int(rng.integers(0, n))
                if u == v:
                    continue
                if dist.connected(u, v):
                    continue
                if any(dist.connected(u, a) and dist.connected(v, b)
                       or dist.connected(u, b) and dist.connected(v, a)
                       for a, b in links):
                    continue
                links.append((u, v))
            if links:
                dist.batch_link(links)
                for u, v in links:
                    ref.link(u, v)
                tree_edges |= {canonical(u, v) for u, v in links}
            dist.check_invariants()
            ref.validate()
            assert components_of(dist, n) == sorted(
                tuple(sorted(c)) for c in ref.components()
            )
            assert sorted(dist.all_edges()) == sorted(ref.all_edges())

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10 ** 6))
    def test_tour_validity_property(self, seed):
        rng = np.random.default_rng(seed)
        n = 12
        forest = DistributedEulerForest(n)
        tree_edges = set()
        for _ in range(15):
            if tree_edges and rng.random() < 0.45:
                pool = sorted(tree_edges)
                edge = pool[int(rng.integers(0, len(pool)))]
                forest.batch_cut([edge])
                tree_edges.discard(edge)
            else:
                u = int(rng.integers(0, n))
                v = int(rng.integers(0, n))
                if u != v and not forest.connected(u, v):
                    forest.batch_link([(u, v)])
                    tree_edges.add(canonical(u, v))
            forest.check_invariants()
