"""Unit tests for the MPC model configuration."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.mpc import MPCConfig, polylog


class TestValidation:
    @pytest.mark.parametrize("phi", [0.0, 1.0, -0.2, 1.5])
    def test_phi_range(self, phi):
        with pytest.raises(ConfigurationError):
            MPCConfig(n=100, phi=phi)

    def test_min_vertices(self):
        with pytest.raises(ConfigurationError):
            MPCConfig(n=1)

    def test_bad_factors(self):
        with pytest.raises(ConfigurationError):
            MPCConfig(n=10, mem_factor=0)
        with pytest.raises(ConfigurationError):
            MPCConfig(n=10, total_memory_factor=-1)

    def test_bad_machine_override(self):
        with pytest.raises(ConfigurationError):
            MPCConfig(n=10, num_machines=0)


class TestDerivedQuantities:
    def test_local_memory_scales_with_phi(self):
        small = MPCConfig(n=4096, phi=0.25).local_memory
        large = MPCConfig(n=4096, phi=0.75).local_memory
        assert small < large

    def test_local_memory_formula(self):
        config = MPCConfig(n=256, phi=0.5, mem_factor=2.0)
        assert config.local_memory == math.ceil(2.0 * 16)

    def test_machine_count_covers_budget(self):
        config = MPCConfig(n=1024, phi=0.5)
        total = config.machine_count * config.local_memory
        assert total >= config.total_memory_budget

    def test_machine_count_override(self):
        config = MPCConfig(n=64, num_machines=5)
        assert config.machine_count == 5

    def test_batch_bound_is_local_memory(self):
        config = MPCConfig(n=400, phi=0.5)
        assert config.batch_bound == config.local_memory

    def test_paper_batch_bound_smaller(self):
        config = MPCConfig(n=2 ** 16, phi=0.5)
        assert config.paper_batch_bound() <= config.batch_bound
        assert config.paper_batch_bound() >= 1

    def test_sketch_columns_grow_logarithmically(self):
        c1 = MPCConfig(n=64).sketch_columns
        c2 = MPCConfig(n=4096).sketch_columns
        assert c1 < c2
        assert c2 <= 4 * math.log2(4096)

    def test_fanout_floor(self):
        config = MPCConfig(n=16, phi=0.25, mem_factor=1.0)
        assert config.fanout(words_per_message=10 ** 6) == 2

    def test_describe_mentions_key_figures(self):
        config = MPCConfig(n=64, phi=0.5)
        text = config.describe()
        assert "n=64" in text and "phi=0.5" in text


class TestPolylog:
    def test_tiny_n(self):
        assert polylog(1) == 1.0
        assert polylog(2) == 1.0

    def test_formula(self):
        assert polylog(256, power=2) == pytest.approx(64.0)
