"""Component-id array tests."""

import pytest

from repro.core import ComponentIds


class TestComponentIds:
    def test_initial_identity(self):
        comp = ComponentIds(5)
        assert [comp.id_of(v) for v in range(5)] == [0, 1, 2, 3, 4]
        assert comp.num_components() == 5

    def test_relabel_min_convention(self):
        comp = ComponentIds(6)
        new_id = comp.relabel_min([4, 2, 5])
        assert new_id == 2
        assert comp.same(4, 5) and comp.same(2, 4)
        assert not comp.same(0, 2)
        assert comp.num_components() == 4

    def test_relabel_explicit(self):
        comp = ComponentIds(4)
        comp.relabel([1, 3], 9)
        assert comp.id_of(1) == 9 and comp.id_of(3) == 9

    def test_empty_relabel_min_rejected(self):
        comp = ComponentIds(3)
        with pytest.raises(ValueError):
            comp.relabel_min([])

    def test_groups(self):
        comp = ComponentIds(4)
        comp.relabel_min([0, 1])
        groups = comp.groups()
        assert groups[0] == [0, 1]
        assert groups[2] == [2]

    def test_component_of(self):
        comp = ComponentIds(5)
        comp.relabel_min([0, 2, 4])
        assert comp.component_of(2) == [0, 2, 4]

    def test_words(self):
        assert ComponentIds(7).words == 7

    def test_as_array_is_copy(self):
        comp = ComponentIds(3)
        arr = comp.as_array()
        arr[0] = 99
        assert comp.id_of(0) == 0
