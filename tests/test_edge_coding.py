"""Edge <-> coordinate bijection tests (exhaustive + property)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sketch import decode_index, edge_sign, encode_edge, num_pairs


class TestNumPairs:
    def test_small_values(self):
        assert num_pairs(2) == 1
        assert num_pairs(5) == 10
        assert num_pairs(100) == 4950


class TestRoundTrip:
    @pytest.mark.parametrize("n", [2, 3, 7, 20, 53])
    def test_exhaustive(self, n):
        seen = set()
        for u in range(n):
            for v in range(u + 1, n):
                idx = encode_edge(n, u, v)
                assert 0 <= idx < num_pairs(n)
                assert idx not in seen, "coding must be injective"
                seen.add(idx)
                assert decode_index(n, idx) == (u, v)
        assert len(seen) == num_pairs(n)

    def test_order_independent(self):
        assert encode_edge(10, 7, 2) == encode_edge(10, 2, 7)

    @settings(max_examples=200, deadline=None)
    @given(st.integers(2, 5000), st.data())
    def test_property_round_trip(self, n, data):
        idx = data.draw(st.integers(0, num_pairs(n) - 1))
        u, v = decode_index(n, idx)
        assert 0 <= u < v < n
        assert encode_edge(n, u, v) == idx


class TestValidation:
    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            encode_edge(10, 3, 3)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            encode_edge(10, 0, 10)
        with pytest.raises(ValueError):
            decode_index(10, num_pairs(10))
        with pytest.raises(ValueError):
            decode_index(10, -1)


class TestEdgeSign:
    def test_convention(self):
        assert edge_sign(9, 4, 9) == 1
        assert edge_sign(4, 4, 9) == -1

    def test_signs_cancel(self):
        assert edge_sign(4, 4, 9) + edge_sign(9, 4, 9) == 0

    def test_non_endpoint_rejected(self):
        with pytest.raises(ValueError):
            edge_sign(5, 4, 9)
