"""Dynamic bipartiteness tests (Theorem 7.3)."""

import numpy as np
import pytest

from tests.conftest import make_valid_batch
from repro.baselines import is_bipartite as nx_bipartite
from repro.core import DynamicBipartiteness
from repro.mpc import MPCConfig
from repro.streams import even_cycle_insertions, odd_cycle_insertions
from repro.types import dele, ins


class TestCycles:
    def test_empty_graph_is_bipartite(self):
        alg = DynamicBipartiteness(MPCConfig(n=8, phi=0.5, seed=0))
        assert alg.is_bipartite()

    def test_even_cycle_bipartite(self):
        alg = DynamicBipartiteness(MPCConfig(n=12, phi=0.5, seed=0))
        alg.apply_batch(even_cycle_insertions(10))
        assert alg.is_bipartite()

    def test_odd_cycle_not_bipartite(self):
        alg = DynamicBipartiteness(MPCConfig(n=12, phi=0.5, seed=0))
        alg.apply_batch(odd_cycle_insertions(9))
        assert not alg.is_bipartite()

    def test_triangle_toggle(self):
        alg = DynamicBipartiteness(MPCConfig(n=6, phi=0.5, seed=1))
        alg.apply_batch([ins(0, 1), ins(1, 2)])
        assert alg.is_bipartite()
        alg.apply_batch([ins(0, 2)])
        assert not alg.is_bipartite()
        alg.apply_batch([dele(0, 2)])
        assert alg.is_bipartite()

    def test_disconnected_components_each_count(self):
        alg = DynamicBipartiteness(MPCConfig(n=10, phi=0.5, seed=2))
        alg.apply_batch([ins(0, 1), ins(1, 2), ins(0, 2),  # odd triangle
                         ins(5, 6), ins(6, 7)])            # bipartite path
        assert not alg.is_bipartite()
        alg.apply_batch([dele(1, 2)])
        assert alg.is_bipartite()


class TestRandomGraphs:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx(self, seed):
        rng = np.random.default_rng(seed)
        n = 16
        alg = DynamicBipartiteness(MPCConfig(n=n, phi=0.5, seed=seed))
        live = set()
        for _ in range(12):
            batch = make_valid_batch(rng, n, live, size=4,
                                     delete_fraction=0.3)
            alg.apply_batch(batch)
            assert alg.is_bipartite() == nx_bipartite(n, live)


class TestResources:
    def test_memory_registers_both_instances(self):
        alg = DynamicBipartiteness(MPCConfig(n=8, phi=0.5, seed=0))
        alg.apply_batch([ins(0, 1)])
        breakdown = alg.memory_breakdown()
        assert {"base-instance", "cover-instance"} <= set(breakdown)
        # The double cover costs roughly 2x the base, not more.
        assert breakdown["cover-instance"] <= 4 * breakdown["base-instance"]

    def test_rounds_bounded(self):
        alg = DynamicBipartiteness(MPCConfig(n=16, phi=0.5, seed=0))
        alg.apply_batch(even_cycle_insertions(12))
        assert alg.max_rounds() <= 80
