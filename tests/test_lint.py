"""repro.lint: engine machinery, the rule-pack corpus, and the repo gate.

Four layers:

* corpus -- every rule fires on its known-bad snippet and stays silent
  on its known-good one (the snippets live in
  ``src/repro/lint/corpus/*.case`` with virtual paths, so path-scoped
  rules are exercised exactly as on disk);
* machinery -- suppressions, justification enforcement, baselines,
  exit codes, JSON output;
* the repo itself -- ``src`` and ``tests`` lint clean, every inline
  suppression carries a justification, and the checked-in baseline
  never grows;
* the gate -- seeding a deliberate violation fails with the rule id
  and file:line, which is what makes the CI job meaningful.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint import RULE_PACK_VERSION
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.engine import (
    Finding,
    lint_source,
    parse_suppressions,
    run_paths,
)
from repro.lint.reporters import render_json

ROOT = Path(__file__).resolve().parents[1]
CORPUS = ROOT / "src" / "repro" / "lint" / "corpus"

#: Policy: the checked-in baseline stays empty.  New findings must be
#: fixed or justified inline with ``# repro-lint: disable=...``; raising
#: this number requires changing this test, i.e. a reviewed decision.
MAX_BASELINE_ENTRIES = 0


def _cases():
    cases = sorted(CORPUS.glob("*.case"))
    assert cases, f"corpus missing at {CORPUS}"
    return cases


def _parse_case(path: Path):
    lines = path.read_text(encoding="utf-8").splitlines()
    vpath = lines[0].split(":", 1)[1].strip()
    expect = lines[1].split(":", 1)[1].strip()
    return path.read_text(encoding="utf-8"), vpath, expect


# ---------------------------------------------------------------------------
# Corpus: each rule fires on bad, stays silent on good
# ---------------------------------------------------------------------------

class TestCorpus:
    @pytest.mark.parametrize("case", _cases(), ids=lambda c: c.stem)
    def test_case_behaves_as_annotated(self, case):
        source, vpath, expect = _parse_case(case)
        findings = lint_source(source, vpath)
        fired = sorted({f.rule for f in findings})
        if expect == "clean":
            assert not findings, (
                f"known-good snippet {case.name} raised {fired}: "
                + "; ".join(f.render() for f in findings)
            )
        else:
            assert expect in fired, (
                f"known-bad snippet {case.name} did not fire {expect} "
                f"(got {fired})"
            )

    def test_every_rule_has_a_bad_and_good_case(self):
        from repro.lint.rules import ALL_RULES

        stems = {case.stem for case in _cases()}
        for rule in ALL_RULES:
            slug = rule.id.lower()
            assert f"{slug}_bad" in stems, f"no known-bad case for {rule.id}"
            assert f"{slug}_good" in stems, f"no known-good case for {rule.id}"

    def test_findings_carry_rule_id_and_location(self):
        source, vpath, expect = _parse_case(CORPUS / "rl001_bad.case")
        finding = lint_source(source, vpath)[0]
        rendered = finding.render()
        assert "RL001" in rendered
        assert f"{vpath}:{finding.line}:" in rendered


# ---------------------------------------------------------------------------
# Suppression machinery
# ---------------------------------------------------------------------------

class TestSuppressions:
    BAD_ENV = (
        "import os\n"
        "def f():\n"
        "    return os.environ.get('REPRO_BACKEND')\n"
    )

    def test_unsuppressed_fires(self):
        findings = lint_source(self.BAD_ENV, "src/repro/demo.py")
        assert [f.rule for f in findings] == ["RL004"]

    def test_same_line_suppression_with_justification(self):
        src = self.BAD_ENV.replace(
            "    return os.environ.get('REPRO_BACKEND')",
            "    return os.environ.get('REPRO_BACKEND')"
            "  # repro-lint: disable=RL004 -- test fixture",
        )
        assert lint_source(src, "src/repro/demo.py") == []

    def test_standalone_suppression_covers_next_statement(self):
        src = self.BAD_ENV.replace(
            "    return os.environ.get('REPRO_BACKEND')",
            "    # repro-lint: disable=RL004 -- test fixture\n"
            "    return os.environ.get('REPRO_BACKEND')",
        )
        assert lint_source(src, "src/repro/demo.py") == []

    def test_bare_suppression_is_itself_a_finding(self):
        src = self.BAD_ENV.replace(
            "    return os.environ.get('REPRO_BACKEND')",
            "    return os.environ.get('REPRO_BACKEND')"
            "  # repro-lint: disable=RL004",
        )
        rules = {f.rule for f in lint_source(src, "src/repro/demo.py")}
        # The RL004 finding is suppressed, but the naked suppression is
        # flagged: escape hatches must carry their why.
        assert rules == {"RL000"}

    def test_suppression_for_other_rule_does_not_mask(self):
        src = self.BAD_ENV.replace(
            "    return os.environ.get('REPRO_BACKEND')",
            "    return os.environ.get('REPRO_BACKEND')"
            "  # repro-lint: disable=RL006 -- wrong rule",
        )
        rules = {f.rule for f in lint_source(src, "src/repro/demo.py")}
        assert "RL004" in rules

    def test_parse_suppressions_extracts_rules_and_justification(self):
        sups = parse_suppressions([
            "x = 1  # repro-lint: disable=RL001,RL004 -- because reasons",
        ])
        assert len(sups) == 1
        assert sups[0].rules == frozenset({"RL001", "RL004"})
        assert sups[0].justification == "because reasons"
        assert not sups[0].bare


# ---------------------------------------------------------------------------
# Baseline machinery
# ---------------------------------------------------------------------------

class TestBaseline:
    def test_round_trip_filters_known_findings(self, tmp_path):
        bad = tmp_path / "src" / "repro" / "demo.py"
        bad.parent.mkdir(parents=True)
        bad.write_text(
            "import os\nVALUE = os.environ.get('REPRO_THING')\n"
        )
        report = run_paths([str(tmp_path / "src")])
        assert report.findings
        baseline = tmp_path / "baseline.json"
        write_baseline(str(baseline), report.findings)
        assert load_baseline(str(baseline))
        again = run_paths([str(tmp_path / "src")],
                          baseline_path=str(baseline))
        assert again.findings == []
        assert again.baselined == len(report.findings)
        assert again.exit_code == 0

    def test_missing_baseline_file_means_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == set()

    def test_repo_baseline_never_grows(self):
        path = ROOT / "lint-baseline.json"
        payload = json.loads(path.read_text())
        assert len(payload["findings"]) <= MAX_BASELINE_ENTRIES, (
            "the lint baseline grew: fix the new findings or justify "
            "them inline instead of baselining them"
        )


# ---------------------------------------------------------------------------
# The repo itself is clean, and every suppression is justified
# ---------------------------------------------------------------------------

class TestRepoGate:
    def test_src_and_tests_lint_clean(self):
        report = run_paths([str(ROOT / "src"), str(ROOT / "tests")],
                           baseline_path=str(ROOT / "lint-baseline.json"))
        assert report.findings == [], "\n".join(
            f.render() for f in report.findings
        )

    def test_every_inline_suppression_is_justified(self):
        for path in sorted((ROOT / "src").rglob("*.py")):
            sups = parse_suppressions(
                path.read_text(encoding="utf-8").splitlines()
            )
            for sup in sups:
                assert not sup.bare, (
                    f"{path}:{sup.line}: suppression without a "
                    f"justification"
                )

    def test_doc_drift_guard_sees_all_knobs(self):
        # Deleting a knob from the quickstart docs must make RL004's
        # project phase fire -- prove the wiring by checking the knob
        # inventory the rule derives matches the documented set.
        quickstart = (ROOT / "examples" / "quickstart.py").read_text()
        for name in ("REPRO_BACKEND", "REPRO_BACKEND_WORKERS",
                     "REPRO_BACKEND_TIMEOUT", "REPRO_BACKEND_RETRIES",
                     "REPRO_BACKEND_BACKOFF", "REPRO_BACKEND_FAULTS",
                     "REPRO_KERNELS", "REPRO_KERNELS_PROFILE"):
            assert name in quickstart

    def test_doc_drift_fires_on_undocumented_knob(self, tmp_path):
        (tmp_path / "src" / "repro").mkdir(parents=True)
        (tmp_path / "examples").mkdir()
        (tmp_path / "src" / "repro" / "knobs.py").write_text(
            "NAME = 'REPRO_UNDOCUMENTED_KNOB'\n"
        )
        (tmp_path / "examples" / "quickstart.py").write_text(
            '"""docs mentioning nothing"""\n'
        )
        report = run_paths([str(tmp_path / "src")])
        assert any(
            f.rule == "RL004" and "REPRO_UNDOCUMENTED_KNOB" in f.message
            for f in report.findings
        )


# ---------------------------------------------------------------------------
# CLI: exit codes, JSON shape, seeded violation
# ---------------------------------------------------------------------------

def _run_cli(*args, cwd=None):
    return subprocess.run(
        [sys.executable, "-m", "repro.lint", *args],
        capture_output=True, text=True, cwd=cwd or ROOT,
        env={"PYTHONPATH": str(ROOT / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestCli:
    def test_clean_run_exits_zero(self):
        proc = _run_cli("src", "--baseline", "lint-baseline.json")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_seeded_violation_fails_with_rule_and_location(self, tmp_path):
        victim = tmp_path / "src" / "repro" / "seeded.py"
        victim.parent.mkdir(parents=True)
        victim.write_text(
            "from multiprocessing import shared_memory\n"
            "\n"
            "def start():\n"
            "    seg = shared_memory.SharedMemory(create=True, size=64)\n"
            "    return seg\n"
        )
        proc = _run_cli(str(victim))
        assert proc.returncode == 1
        assert "RL001" in proc.stdout
        assert "seeded.py:4" in proc.stdout

    def test_json_format_carries_rule_pack_and_fingerprints(self, tmp_path):
        victim = tmp_path / "src" / "repro" / "seeded.py"
        victim.parent.mkdir(parents=True)
        victim.write_text(
            "import os\nV = os.environ.get('REPRO_X')\n"
        )
        proc = _run_cli(str(victim), "--format=json")
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert payload["rule_pack"] == RULE_PACK_VERSION
        assert payload["findings"]
        entry = payload["findings"][0]
        assert {"rule", "path", "line", "col", "message",
                "fingerprint"} <= set(entry)

    def test_unknown_rule_id_is_usage_error(self):
        proc = _run_cli("src", "--select", "RL777")
        assert proc.returncode == 2

    def test_list_rules_names_the_pack(self):
        proc = _run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in ("RL001", "RL002", "RL003", "RL004", "RL005",
                        "RL006"):
            assert rule_id in proc.stdout

    def test_render_json_is_valid_json(self):
        report = run_paths([str(ROOT / "src" / "repro" / "lint")])
        payload = json.loads(render_json(report))
        assert payload["files"] > 0


# ---------------------------------------------------------------------------
# The harness stamp: what BENCH_ingest.json embeds
# ---------------------------------------------------------------------------

def test_lint_stamp_is_clean_and_cached():
    from repro.lint.stamp import lint_stamp

    stamp = lint_stamp()
    assert stamp["rule_pack"] == RULE_PACK_VERSION
    assert stamp["findings"] == 0, "\n".join(stamp["errors"])
    # One lint pass per process: the benchmark conftest gate and every
    # BENCH_ingest.json write share the same cached verdict.
    assert lint_stamp() is stamp


# ---------------------------------------------------------------------------
# Fingerprints are line-independent (baseline stability)
# ---------------------------------------------------------------------------

def test_fingerprint_ignores_line_numbers():
    a = Finding(rule="RL004", path="src/x.py", line=3, col=1,
                message="m")
    b = Finding(rule="RL004", path="src/x.py", line=97, col=9,
                message="m")
    assert a.fingerprint == b.fingerprint
    c = Finding(rule="RL005", path="src/x.py", line=3, col=1,
                message="m")
    assert a.fingerprint != c.fingerprint


# ---------------------------------------------------------------------------
# RL007: kernel-tier parity specifics beyond the corpus
# ---------------------------------------------------------------------------

class TestKernelTierParity:
    def test_bypass_imports_fire_outside_the_package(self):
        for src in (
            "from repro.kernels.numpy_tier import mulmod_many\n",
            "from repro.kernels import compiled_tier\n",
            "import repro.kernels.numpy_tier\n",
        ):
            findings = lint_source(src, "src/repro/sketch/demo.py")
            assert [f.rule for f in findings] == ["RL007"], src

    def test_dispatcher_and_support_imports_stay_clean(self):
        src = (
            "from repro import kernels\n"
            "from repro.kernels import profile, registry\n"
        )
        assert lint_source(src, "src/repro/sketch/demo.py") == []

    def test_tier_modules_may_import_each_other(self):
        src = "from repro.kernels.numpy_tier import mulmod_many\n"
        assert lint_source(src, "src/repro/kernels/compiled_tier.py") == []

    def _kernel_tree(self, tmp_path, compiled_body):
        pkg = tmp_path / "src" / "repro" / "kernels"
        pkg.mkdir(parents=True)
        (pkg / "numpy_tier.py").write_text(
            "from repro.kernels.registry import numpy_kernel\n\n\n"
            "@numpy_kernel('mulmod')\n"
            "def mulmod(a, b):\n"
            "    return a\n"
        )
        (pkg / "compiled_tier.py").write_text(compiled_body)
        return tmp_path / "src"

    def test_project_phase_catches_cross_file_drift(self, tmp_path):
        src = self._kernel_tree(
            tmp_path,
            "from repro.kernels.registry import compiled_kernel\n\n\n"
            "@compiled_kernel('mulmod')\n"
            "def mulmod(b, a):\n"   # swapped parameter order
            "    return a\n",
        )
        report = run_paths([str(src)])
        assert [f.rule for f in report.findings] == ["RL007"]
        assert "signatures differ" in report.findings[0].message

    def test_project_phase_clean_on_matching_tiers(self, tmp_path):
        src = self._kernel_tree(
            tmp_path,
            "from repro.kernels.registry import compiled_kernel\n\n\n"
            "@compiled_kernel('mulmod')\n"
            "def mulmod(a, b):\n"
            "    return a\n",
        )
        assert run_paths([str(src)]).findings == []
