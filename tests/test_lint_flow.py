"""The flow engine (repro.lint.flow) and its rules RL008..RL011.

Corpus ``.case`` pairs already pin the fire/silent behaviour of each
rule end-to-end; the tests here exercise the *engine* underneath --
call resolution, path search, leak-path enumeration -- plus the cache
and CLI surfaces added alongside it (``--stats``/``--graph``).
"""

import ast
import json
import subprocess
import sys
import textwrap
from pathlib import Path

from repro.lint.engine import FileContext, Program, lint_source, run_paths
from repro.lint.flow import FlowGraph, shm_leak_paths
from repro.lint.rules import BULK_OPS

REPO = Path(__file__).resolve().parent.parent


def _ctx(path, source):
    source = textwrap.dedent(source)
    return FileContext(path=path, tree=ast.parse(source), source=source,
                       lines=source.splitlines())


def _graph(*pairs):
    return FlowGraph.build([_ctx(p, s) for p, s in pairs], BULK_OPS)


# ---------------------------------------------------------------------------
# Call graph construction and resolution
# ---------------------------------------------------------------------------

class TestFlowGraph:
    def test_self_call_resolves_within_class(self):
        graph = _graph(("src/repro/core/a.py", """
            class A:
                def outer(self):
                    return self.inner()

                def inner(self):
                    return 1
        """))
        (outer,) = [f for f in graph.functions.values()
                    if f.qname.endswith("A.outer")]
        targets = [t.qname for _, t in graph.callees(outer.qname)]
        assert targets == ["src/repro/core/a.py::A.inner"]

    def test_ambiguous_method_name_does_not_cross_link(self):
        # `health.update(...)` must NOT resolve to an unrelated class
        # that happens to define `update` -- this exact false edge once
        # linked the session layer to the sampler hot path.
        graph = _graph(
            ("src/repro/core/a.py", """
                class Caller:
                    def tick(self, health):
                        health.update(self.counters())

                    def counters(self):
                        return {}
            """),
            ("src/repro/core/b.py", """
                class Sampler:
                    def update(self, edge):
                        self.family.sample_bulk([edge])
            """),
        )
        (tick,) = [f for f in graph.functions.values()
                   if f.qname.endswith("Caller.tick")]
        targets = [t.qname for _, t in graph.callees(tick.qname)]
        assert "src/repro/core/b.py::Sampler.update" not in targets
        # ...but the self-call still resolves.
        assert "src/repro/core/a.py::Caller.counters" in targets

    def test_plain_name_call_resolves_cross_file(self):
        graph = _graph(
            ("src/repro/core/a.py", """
                def entry():
                    return helper()
            """),
            ("src/repro/core/b.py", """
                def helper():
                    return 1
            """),
        )
        (entry,) = [f for f in graph.functions.values()
                    if f.qname.endswith("::entry")]
        targets = [t.qname for _, t in graph.callees(entry.qname)]
        assert targets == ["src/repro/core/b.py::helper"]

    def test_to_json_shape(self):
        graph = _graph(("src/repro/core/a.py", """
            def entry():
                return helper()

            def helper():
                return 1
        """))
        payload = graph.to_json()
        assert {n["qname"] for n in payload["nodes"]} == {
            "src/repro/core/a.py::entry",
            "src/repro/core/a.py::helper",
        }
        assert payload["edges"]


class TestUnchargedBulkPaths:
    SRC = """
        class Facade:
            def __init__(self, cluster):
                self.cluster = cluster

            def query_many(self, us):
                return self._fanout(us)

            def charged_many(self, us):
                self.cluster.charge_gather(len(us))
                return self._fanout(us)

            def _fanout(self, us):
                return self.family.query_bulk(us)
    """

    def test_uncharged_path_is_found_with_witness(self):
        graph = _graph(("src/repro/session/f.py", self.SRC))
        (entry,) = [f for f in graph.functions.values()
                    if f.qname.endswith("Facade.query_many")]
        paths = graph.uncharged_bulk_paths(entry)
        assert len(paths) == 1
        chain, (op, _line) = paths[0]
        assert op == "query_bulk"
        assert [f.qname.rsplit(".", 1)[-1] for f in chain] == [
            "query_many", "_fanout"]

    def test_charging_frame_covers_its_subtree(self):
        graph = _graph(("src/repro/session/f.py", self.SRC))
        (entry,) = [f for f in graph.functions.values()
                    if f.qname.endswith("Facade.charged_many")]
        assert graph.uncharged_bulk_paths(entry) == []


class TestShmLeakPaths:
    def test_exception_edge_leak(self):
        ctx = _ctx("src/repro/mpc/t.py", """
            def leaky(n):
                shm = SharedMemory(create=True, size=n)
                publish(shm.name)
                return shm
        """)
        (func,) = [n for n in ast.walk(ctx.tree)
                   if isinstance(n, ast.FunctionDef)]
        leaks = shm_leak_paths(func)
        assert leaks

    def test_guarded_handle_is_clean(self):
        ctx = _ctx("src/repro/mpc/t.py", """
            def guarded(self, n):
                shm = SharedMemory(create=True, size=n)
                try:
                    self._handles[n] = shm
                except Exception:
                    shm.close()
                    shm.unlink()
                    raise
                return shm
        """)
        (func,) = [n for n in ast.walk(ctx.tree)
                   if isinstance(n, ast.FunctionDef)]
        assert shm_leak_paths(func) == []


# ---------------------------------------------------------------------------
# RL010 determinism discipline (rule-level, beyond the corpus pair)
# ---------------------------------------------------------------------------

class TestDeterminism:
    def _fired(self, body):
        src = "@hot_path\ndef f(xs):\n" + textwrap.indent(
            textwrap.dedent(body), "    ")
        return {f.rule for f in lint_source(src, "src/repro/core/x.py")}

    def test_flags_ambient_numpy_rng(self):
        assert "RL010" in self._fired("return np.random.randint(0, 8)\n")

    def test_flags_wall_clock(self):
        assert "RL010" in self._fired("return time.time()\n")

    def test_flags_set_iteration_into_array(self):
        assert "RL010" in self._fired(
            "return np.array(list(set(xs)))\n")

    def test_clean_integer_code_passes(self):
        assert "RL010" not in self._fired(
            "return np.bitwise_and(xs, np.int64(63))\n")

    def test_out_of_scope_function_ignored(self):
        src = "def f():\n    return time.time()\n"
        fired = {f.rule for f in lint_source(src, "src/repro/core/x.py")}
        assert "RL010" not in fired


# ---------------------------------------------------------------------------
# Engine surfaces: program phase, timings, AST cache, CLI flags
# ---------------------------------------------------------------------------

class TestEngineSurfaces:
    def test_run_paths_reports_timings_and_program(self):
        report = run_paths([str(REPO / "src" / "repro" / "lint")])
        assert report.program is not None
        assert report.timings
        assert all(t >= 0.0 for t in report.timings.values())
        assert "RL008" in report.timings

    def test_context_cache_hits_on_second_run(self):
        from repro.lint import engine

        target = [str(REPO / "src" / "repro" / "lint" / "flow.py")]
        run_paths(target)
        key = str((REPO / "src" / "repro" / "lint" / "flow.py").resolve())
        assert key in engine._CTX_CACHE
        sig, ctx = engine._CTX_CACHE[key]
        run_paths(target)
        # Same (mtime, size) signature -> the cached context object is
        # reused, not reparsed.
        assert engine._CTX_CACHE[key][1].tree is ctx.tree

    def test_cli_stats_and_graph(self, tmp_path):
        (tmp_path / "mod.py").write_text("def f():\n    return 1\n")
        graph_out = tmp_path / "graph.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", str(tmp_path),
             "--stats", "--graph", str(graph_out)],
            capture_output=True, text=True,
            cwd=REPO, env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        assert "RL008" in proc.stdout  # stats table lists every rule
        payload = json.loads(graph_out.read_text())
        assert any(n["qname"].endswith("::f") for n in payload["nodes"])

    def test_protocol_report_payload(self, tmp_path):
        out = tmp_path / "proto.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint",
             str(REPO / "src" / "repro" / "mpc" / "backend.py"),
             "--protocol-report", str(out)],
            capture_output=True, text=True,
            cwd=REPO, env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(out.read_text())
        assert payload["checked"], "backend.py was not model-checked"
        (result,) = payload["results"].values()
        assert result["ok"] is True
        assert result["states"] > 0
