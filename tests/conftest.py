"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mpc import Cluster, MPCConfig


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_config():
    return MPCConfig(n=64, phi=0.5, seed=7)


@pytest.fixture
def small_cluster(small_config):
    return Cluster(small_config)


def make_valid_batch(rng, n, live, size, delete_fraction=0.4,
                     weighted=False):
    """A model-valid batch: no within-batch edge reuse, deletes target
    live edges only.  Mutates ``live`` to the post-batch edge set."""
    from repro.types import dele, ins

    updates = []
    touched = set()
    for _ in range(size):
        pool = sorted(live - touched)
        if pool and rng.random() < delete_fraction:
            edge = pool[int(rng.integers(0, len(pool)))]
            touched.add(edge)
            live.discard(edge)
            updates.append(dele(*edge))
        else:
            for _ in range(80):
                u = int(rng.integers(0, n))
                v = int(rng.integers(0, n))
                if u == v:
                    continue
                edge = (min(u, v), max(u, v))
                if edge not in live and edge not in touched:
                    touched.add(edge)
                    live.add(edge)
                    weight = float(rng.integers(1, 64)) if weighted else 1.0
                    updates.append(ins(u, v, weight))
                    break
    return updates
