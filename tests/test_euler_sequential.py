"""Reference Euler-tour forest tests."""

import numpy as np
import pytest

from repro.euler import (
    EulerTourForest,
    Tour,
    join_tours,
    rotate_tour,
    split_tour,
)


class TestTour:
    def test_singleton(self):
        tour = Tour(5)
        assert len(tour) == 0
        assert tour.vertices() == {5}
        tour.validate()

    def test_two_vertex_tour(self):
        tour = Tour(0, [(0, 1), (1, 0)])
        tour.validate()
        assert tour.num_vertices == 2
        assert tour.first_exit(0) == 0
        assert tour.first_exit(1) == 1

    def test_validate_rejects_broken_walk(self):
        bad = Tour(0, [(0, 1), (2, 0)])
        with pytest.raises(AssertionError):
            bad.validate()

    def test_validate_rejects_wrong_root(self):
        bad = Tour(1, [(0, 1), (1, 0)])
        with pytest.raises(AssertionError):
            bad.validate()


class TestRotation:
    def test_rotation_preserves_tree(self):
        tour = Tour(0, [(0, 1), (1, 2), (2, 1), (1, 0)])
        rotated = rotate_tour(tour, 2)
        rotated.validate()
        assert rotated.root == 2
        assert rotated.vertices() == tour.vertices()

    def test_rotation_to_same_root_is_identity(self):
        tour = Tour(0, [(0, 1), (1, 0)])
        assert rotate_tour(tour, 0).edges == tour.edges


class TestJoinSplit:
    def test_join_then_split_round_trip(self):
        left = Tour(0, [(0, 1), (1, 0)])
        right = Tour(2, [(2, 3), (3, 2)])
        joined = join_tours(left, 1, right, 3)
        joined.validate()
        assert joined.vertices() == {0, 1, 2, 3}
        rest, severed = split_tour(joined, 1, 3)
        rest.validate()
        severed.validate()
        assert rest.vertices() == {0, 1}
        assert severed.vertices() == {2, 3}
        assert severed.root == 3

    def test_split_missing_edge_rejected(self):
        tour = Tour(0, [(0, 1), (1, 0)])
        with pytest.raises(ValueError):
            split_tour(tour, 0, 2)


class TestForest:
    def test_initial_state(self):
        forest = EulerTourForest(5)
        forest.validate()
        assert not forest.connected(0, 1)
        assert len(list(forest.components())) == 5

    def test_link_cut_cycle(self):
        forest = EulerTourForest(6)
        forest.link(0, 1)
        forest.link(1, 2)
        forest.link(4, 5)
        forest.validate()
        assert forest.connected(0, 2)
        assert not forest.connected(0, 4)
        forest.cut(1, 2)
        forest.validate()
        assert not forest.connected(0, 2)
        assert forest.connected(0, 1)

    def test_double_link_rejected(self):
        forest = EulerTourForest(3)
        forest.link(0, 1)
        with pytest.raises(ValueError):
            forest.link(1, 0)

    def test_cut_cross_tree_rejected(self):
        forest = EulerTourForest(4)
        forest.link(0, 1)
        with pytest.raises(ValueError):
            forest.cut(0, 2)

    def test_path_edges(self):
        forest = EulerTourForest(7)
        for u, v in [(0, 1), (1, 2), (2, 3), (1, 4)]:
            forest.link(u, v)
        assert forest.path_edges(0, 3) == [(0, 1), (1, 2), (2, 3)]
        assert forest.path_edges(4, 2) == [(1, 4), (1, 2)] or \
            forest.path_edges(4, 2) == [(1, 4), (1, 2)]
        assert forest.path_edges(3, 3) == []

    def test_path_across_trees_rejected(self):
        forest = EulerTourForest(4)
        with pytest.raises(ValueError):
            forest.path_edges(0, 3)

    def test_random_link_cut_stress(self):
        rng = np.random.default_rng(7)
        n = 24
        forest = EulerTourForest(n)
        tree_edges = set()
        for _ in range(300):
            if tree_edges and rng.random() < 0.4:
                edge = sorted(tree_edges)[int(rng.integers(0,
                                              len(tree_edges)))]
                forest.cut(*edge)
                tree_edges.discard(edge)
            else:
                u = int(rng.integers(0, n))
                v = int(rng.integers(0, n))
                if u != v and not forest.connected(u, v):
                    forest.link(u, v)
                    tree_edges.add((min(u, v), max(u, v)))
            forest.validate()

    def test_tree_edges_listing(self):
        forest = EulerTourForest(5)
        forest.link(0, 1)
        forest.link(1, 2)
        assert sorted(forest.tree_edges(0)) == [(0, 1), (1, 2)]
        assert sorted(forest.all_edges()) == [(0, 1), (1, 2)]

    def test_reroot_keeps_structure(self):
        forest = EulerTourForest(4)
        forest.link(0, 1)
        forest.link(1, 2)
        forest.reroot(2)
        forest.validate()
        assert forest.connected(0, 2)
