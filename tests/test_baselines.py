"""Baseline and oracle tests."""

import numpy as np
import pytest

from tests.conftest import make_valid_batch
from repro.baselines import (
    AGMStaticConnectivity,
    DynamicConnectivityOracle,
    FullGraphConnectivity,
    UnionFind,
    component_sets,
    greedy_matching_size,
    maximum_matching_size,
    msf_weight,
)
from repro.mpc import MPCConfig
from repro.types import dele, ins


class TestUnionFind:
    def test_union_and_find(self):
        uf = UnionFind(5)
        assert uf.union(0, 1)
        assert not uf.union(1, 0)
        assert uf.connected(0, 1)
        assert uf.components == 4


class TestOracle:
    def test_matches_manual_components(self):
        oracle = DynamicConnectivityOracle(5)
        oracle.insert(0, 1)
        oracle.insert(1, 2)
        oracle.delete(1, 2)
        assert oracle.component_sets() == [(0, 1), (2,), (3,), (4,)]
        assert oracle.num_edges == 1

    def test_validates_updates(self):
        oracle = DynamicConnectivityOracle(3)
        oracle.insert(0, 1)
        with pytest.raises(ValueError):
            oracle.insert(1, 0)
        with pytest.raises(ValueError):
            oracle.delete(0, 2)


class TestAGMStatic:
    def test_update_rounds_constant_query_rounds_logarithmic(self):
        n = 64
        alg = AGMStaticConnectivity(MPCConfig(n=n, phi=0.5, seed=1))
        oracle = DynamicConnectivityOracle(n)
        # A long path forces multiple AGM halving iterations: sampling
        # one incident edge per vertex cannot contract a path in one go.
        from repro.streams import as_batches, path_insertions
        for batch in as_batches(path_insertions(n, seed=2), 8):
            alg.apply_batch(batch)
            oracle.apply_batch(batch)
        update_rounds = alg.max_rounds()
        solution, query_metrics = alg.query_with_metrics()
        assert update_rounds <= 12, "sketch updates are O(1) rounds"
        # The query pays per halving iteration (the paper's point: no
        # maintained forest means O(log n) contraction rounds at query
        # time; at laptop n the iteration count is small but > 1).
        assert alg.stats["query_iterations"] >= 2
        assert query_metrics.rounds >= 2 * alg.stats["query_iterations"]
        forest_components = n - len(solution.edges)
        assert forest_components == oracle.num_components()

    def test_query_recovers_forest_of_current_graph(self):
        n = 32
        alg = AGMStaticConnectivity(MPCConfig(n=n, phi=0.5, seed=2))
        alg.apply_batch([ins(i, i + 1) for i in range(10)])
        alg.apply_batch([dele(3, 4)])
        solution, _ = alg.query_with_metrics()
        assert len(solution.edges) == 9
        assert (3, 4) not in solution.edges

    def test_connected_via_query(self):
        alg = AGMStaticConnectivity(MPCConfig(n=16, phi=0.5, seed=3))
        alg.apply_batch([ins(0, 1), ins(1, 2)])
        assert alg.connected(0, 2)
        assert not alg.connected(0, 5)


class TestFullGraph:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_oracle_under_churn(self, seed):
        rng = np.random.default_rng(seed)
        n = 32
        alg = FullGraphConnectivity(MPCConfig(n=n, phi=0.5, seed=seed))
        oracle = DynamicConnectivityOracle(n)
        for _ in range(15):
            live = {e for e in oracle.edges()}
            batch = make_valid_batch(rng, n, live, size=6)
            alg.apply_batch(batch)
            oracle.apply_batch(batch)
            assert alg.num_components() == oracle.num_components()
            alg.forest.check_invariants()

    def test_memory_grows_with_m(self):
        n = 64
        alg = FullGraphConnectivity(MPCConfig(n=n, phi=0.5, seed=1))
        alg.apply_batch([ins(0, 1)])
        sparse = alg.total_memory_words()
        batch = [ins(u, v) for u in range(0, 20)
                 for v in range(u + 1, 20) if (u, v) != (0, 1)]
        alg.apply_batch(batch[:alg.batch_limit])
        dense = alg.total_memory_words()
        assert dense > sparse, "Theta(n+m) must grow with m"


class TestOfflineHelpers:
    def test_maximum_matching(self):
        edges = [(0, 1), (2, 3), (1, 2)]
        assert maximum_matching_size(6, edges) == 2

    def test_greedy_matching(self):
        assert greedy_matching_size([(0, 1), (1, 2), (3, 4)]) == 2

    def test_msf_weight(self):
        assert msf_weight(3, [(0, 1, 5.0), (1, 2, 2.0), (0, 2, 1.0)]) == 3.0

    def test_component_sets(self):
        assert component_sets(4, [(0, 1)]) == [(0, 1), (2,), (3,)]
