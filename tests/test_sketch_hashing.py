"""Hash family and bit-trick tests."""

import numpy as np
import pytest

from repro.sketch import (
    MERSENNE_P,
    FourWiseHash,
    KWiseHash,
    PairwiseHash,
    random_field_element,
    trailing_zeros,
)


class TestKWiseHash:
    def test_range(self, rng):
        h = KWiseHash(3, 17, rng)
        assert all(0 <= h(x) < 17 for x in range(1000))

    def test_deterministic(self):
        h1 = KWiseHash(2, 100, np.random.default_rng(5))
        h2 = KWiseHash(2, 100, np.random.default_rng(5))
        assert [h1(x) for x in range(50)] == [h2(x) for x in range(50)]

    def test_different_seeds_differ(self):
        h1 = KWiseHash(2, 10 ** 6, np.random.default_rng(1))
        h2 = KWiseHash(2, 10 ** 6, np.random.default_rng(2))
        assert [h1(x) for x in range(20)] != [h2(x) for x in range(20)]

    def test_rejects_bad_params(self, rng):
        with pytest.raises(ValueError):
            KWiseHash(0, 10, rng)
        with pytest.raises(ValueError):
            KWiseHash(2, 0, rng)

    def test_roughly_uniform(self, rng):
        """Chi-square-ish sanity: bucket counts within 3x of the mean."""
        h = PairwiseHash(8, rng)
        counts = [0] * 8
        for x in range(8000):
            counts[h(x)] += 1
        assert min(counts) > 1000 / 3
        assert max(counts) < 3000

    def test_many_matches_scalar(self, rng):
        h = FourWiseHash(1000, rng)
        xs = list(range(100))
        assert h.many(xs) == [h(x) for x in xs]

    def test_field_value_below_p(self, rng):
        h = KWiseHash(4, 10, rng)
        assert all(0 <= h.field_value(x) < MERSENNE_P
                   for x in range(0, 10 ** 6, 99991))


class TestFieldElement:
    def test_nonzero(self, rng):
        assert all(random_field_element(rng) != 0 for _ in range(100))

    def test_below_p(self, rng):
        assert all(0 < random_field_element(rng) < MERSENNE_P
                   for _ in range(100))


class TestTrailingZeros:
    @pytest.mark.parametrize("x,expected", [
        (1, 0), (2, 1), (4, 2), (12, 2), (96, 5), (3, 0),
    ])
    def test_values(self, x, expected):
        assert trailing_zeros(x, cap=10) == expected

    def test_zero_hits_cap(self):
        assert trailing_zeros(0, cap=7) == 7

    def test_cap_applies(self):
        assert trailing_zeros(1 << 20, cap=5) == 5

    def test_geometric_distribution(self, rng):
        """P[level >= l] ~ 2^-l over uniform inputs."""
        h = PairwiseHash(1 << 20, rng)
        levels = [trailing_zeros(h(x), 19) for x in range(20000)]
        at_least_3 = sum(1 for lv in levels if lv >= 3) / len(levels)
        assert 0.06 < at_least_3 < 0.20  # ideal 0.125
