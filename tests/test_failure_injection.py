"""Failure injection and extreme-shape stress tests.

What happens when the w.h.p. guarantees are starved (one sketch
column), when the graph is as small or as pathological as the model
allows, and when capacity budgets are deliberately violated.
"""

import numpy as np
import pytest

from repro.baselines import DynamicConnectivityOracle
from repro.core import MPCConnectivity
from repro.errors import CapacityExceededError, SketchFailureError
from repro.mpc import Cluster, MPCConfig
from repro.mpc.machine import Message
from repro.streams import star_insertions
from repro.types import dele, ins


class TestStarvedSketches:
    def test_single_column_eventually_fails_or_splits_safely(self):
        """With one column, deletion storms must either recover or fall
        back to a conservative split -- never corrupt the forest."""
        n = 48
        total_failures = 0
        for seed in range(6):
            alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=seed),
                                  columns=1)
            oracle = DynamicConnectivityOracle(n)
            rng = np.random.default_rng(seed)
            # Dense cluster, then delete most of a spanning structure.
            edges = [(u, v) for u in range(16) for v in range(u + 1, 16)]
            for i in range(0, len(edges), 10):
                batch = [ins(*e) for e in edges[i:i + 10]]
                alg.apply_batch(batch)
                oracle.apply_batch(batch)
            picks = rng.permutation(len(edges))[:60]
            victims = [edges[i] for i in picks]
            for i in range(0, len(victims), 8):
                batch = [dele(*e) for e in victims[i:i + 8]]
                alg.apply_batch(batch)
                oracle.apply_batch(batch)
                alg.forest.check_invariants()
                # Conservative splits may OVER-split, never under-split:
                assert alg.num_components() >= oracle.num_components()
            total_failures += alg.stats["sketch_failures"]
        assert total_failures > 0, \
            "one column must be starved somewhere in 6 storm runs"

    def test_strict_mode_raises_on_starved_sketch(self):
        n = 32
        raised = False
        for seed in range(8):
            alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=seed),
                                  columns=1, strict=True)
            edges = [(u, v) for u in range(12) for v in range(u + 1, 12)]
            try:
                for i in range(0, len(edges), 12):
                    alg.apply_batch([ins(*e) for e in edges[i:i + 12]])
                for i in range(0, len(edges), 8):
                    alg.apply_batch([dele(*e) for e in edges[i:i + 8]])
            except SketchFailureError:
                raised = True
                break
        assert raised, "strict mode must surface a starved sketch"


class TestExtremeShapes:
    def test_minimal_graph(self):
        alg = MPCConnectivity(MPCConfig(n=2, phi=0.5, seed=0))
        alg.apply_batch([ins(0, 1)])
        assert alg.connected(0, 1)
        alg.apply_batch([dele(0, 1)])
        assert not alg.connected(0, 1)
        assert alg.num_components() == 2

    def test_full_star_lifecycle(self):
        n = 32
        alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=1))
        star = star_insertions(n)
        half = len(star) // 2
        alg.apply_batch(star[:half])
        alg.apply_batch(star[half:])
        assert alg.num_components() == 1
        # Shatter the entire star, then rebuild it reversed.
        spokes = [dele(0, v) for v in range(1, n)]
        alg.apply_batch(spokes[:half])
        alg.apply_batch(spokes[half:])
        assert alg.num_components() == n
        rebuild = [ins(v, 0) for v in range(1, n)]
        alg.apply_batch(rebuild[:half])
        alg.apply_batch(rebuild[half:])
        assert alg.num_components() == 1
        alg.forest.check_invariants()

    def test_repeated_insert_delete_same_edge(self):
        alg = MPCConnectivity(MPCConfig(n=4, phi=0.5, seed=2))
        for _ in range(25):
            alg.apply_batch([ins(0, 1)])
            alg.apply_batch([dele(0, 1)])
        assert not alg.connected(0, 1)
        assert alg.stats["sketch_failures"] == 0

    def test_batch_exactly_at_limit(self):
        config = MPCConfig(n=64, phi=0.5, seed=3)
        alg = MPCConnectivity(config)
        limit = alg.batch_limit
        batch = [ins(i, i + 1) for i in range(min(limit, 63))]
        alg.apply_batch(batch)  # must not raise
        assert alg.num_edges == len(batch)

    def test_two_cliques_bridge_cycling(self):
        """Delete and re-find the only bridge between two cliques; the
        replacement must always be the bridge itself (no other edge
        crosses)."""
        n = 16
        alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=4))
        left = [(u, v) for u in range(8) for v in range(u + 1, 8)]
        right = [(u, v) for u in range(8, 16) for v in range(u + 1, 16)]
        for i in range(0, len(left), 12):
            alg.apply_batch([ins(*e) for e in left[i:i + 12]])
        for i in range(0, len(right), 12):
            alg.apply_batch([ins(*e) for e in right[i:i + 12]])
        assert alg.num_components() == 2
        alg.apply_batch([ins(0, 8)])
        assert alg.num_components() == 1
        alg.apply_batch([dele(0, 8)])
        assert not alg.connected(0, 8)
        assert alg.num_components() == 2
        alg.apply_batch([ins(7, 15)])
        assert alg.connected(0, 15)


class TestCapacityInjection:
    def test_strict_cluster_rejects_oversized_message(self):
        config = MPCConfig(n=16, phi=0.5, seed=0, strict_capacity=True)
        cluster = Cluster(config)
        with pytest.raises(CapacityExceededError) as excinfo:
            cluster.exchange([Message(src=0, dst=1, payload=None,
                                      words=10 ** 6)])
        assert excinfo.value.machine_id in (0, 1)
        assert excinfo.value.used == 10 ** 6

    def test_lenient_cluster_records_everything(self):
        config = MPCConfig(n=16, phi=0.5, seed=0, strict_capacity=False)
        cluster = Cluster(config)
        for _ in range(3):
            cluster.exchange([Message(src=0, dst=1, payload=None,
                                      words=10 ** 6)])
        # Each oversized exchange violates both the send and recv budget.
        assert len(cluster.metrics.violations) == 6

    def test_violations_surface_in_phase_metrics(self):
        config = MPCConfig(n=16, phi=0.5, seed=0, strict_capacity=False)
        cluster = Cluster(config)
        cluster.begin_phase("inject")
        cluster.exchange([Message(src=0, dst=1, payload=None,
                                  words=10 ** 6)])
        snapshot = cluster.end_phase()
        assert snapshot.capacity_violations == 2


# ---------------------------------------------------------------------------
# Worker-fleet fault injection: the self-healing supervisor contract
# ---------------------------------------------------------------------------
#
# A `kill -9` (or hang, dropped ack, truncated ring record) of any
# worker mid-phase must yield either a bit-identically completed phase
# after a respawn or a clean degrade to the in-process cores with
# identical answers -- never a hang, never corruption, never a latched-
# broken backend.

from repro.errors import SketchError  # noqa: E402
from repro.mpc.backend import SharedMemoryBackend  # noqa: E402
from repro.mpc.faults import Fault, FaultPlan  # noqa: E402
from repro.sketch import SketchFamily  # noqa: E402

FLEET = 2


def _family_pair(backend, n=40, columns=6, seed=9):
    seq = SketchFamily(n, columns=columns,
                       rng=np.random.default_rng(seed),
                       backend="sequential")
    shm = SketchFamily(n, columns=columns,
                       rng=np.random.default_rng(seed),
                       backend=backend)
    return seq, shm


def _edge_arrays(n, k, seed=0):
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < k:
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u != v:
            edges.add((min(u, v), max(u, v)))
    edges = sorted(edges)
    return (np.array([u for u, _ in edges], dtype=np.int64),
            np.array([v for _, v in edges], dtype=np.int64))


def _drive_op(family, op, n=40):
    """Run one family-level operation that routes backend op ``op``;
    returns a comparable answer structure."""
    if op == "apply":
        us, vs = _edge_arrays(n, 20, seed=5)
        family.apply_edges_bulk(us, vs, np.ones(20, dtype=np.int64))
        return None
    if op in ("query", "sample", "is_zero"):
        samplers = [family.new_vertex_sketch(v).sampler
                    for v in range(n)]
        if op == "query":
            zeros, found = family.query_iteration_bulk(samplers, 0)
            return zeros.tolist(), found
        if op == "sample":
            return family.query_bulk(samplers, 1)
        return family.cuts_empty_bulk(samplers).tolist()
    groups = [np.arange(i, min(i + 5, n), dtype=np.int64)
              for i in range(0, n, 5)]
    if op == "gquery":
        zeros, found = family.query_iteration_groups(groups, 0)
        return zeros.tolist(), found
    if op == "gzero":
        return family.cuts_empty_groups(groups).tolist()
    if op == "gscan":
        members = np.arange(n // 2, dtype=np.int64)
        cols = np.arange(family.columns, dtype=np.int64)
        zero, edges = family.scan_group(members, cols)
        return zero, edges
    raise AssertionError(f"unknown op {op}")


class TestFaultPlanParsing:
    def test_parse_single_kill(self):
        plan = FaultPlan.parse("kill:w=1:n=3:op=apply")
        fault = plan._armed[0]
        assert (fault.kind, fault.worker, fault.nth, fault.op) == \
            ("kill", 1, 3, "apply")
        assert not fault.repeat

    def test_parse_chaos(self):
        plan = FaultPlan.parse("chaos:kill:every=400:seed=7")
        assert plan.chaos_every == 400
        assert plan.chaos_seed == 7
        assert plan.chaos_kind == "kill"

    def test_parse_empty_is_none(self):
        assert FaultPlan.parse(None) is None
        assert FaultPlan.parse("") is None
        assert FaultPlan.parse("  ;  ") is None

    @pytest.mark.parametrize("spec", [
        "explode:w=0",                 # unknown kind
        "kill",                        # missing worker
        "kill:w=abc",                  # non-integer worker
        "kill:w=-1",                   # negative worker
        "kill:w=0:n=0",                # nth is 1-based
        "kill:w=0:op=frobnicate",      # unknown routed op
        "hang:w=0:s=-2",               # negative seconds
        "kill:w=0:bogus=1",            # unknown setting
        "chaos:kill:seed=1",           # chaos without every
        "chaos:warp:every=10",         # unknown chaos kind
    ])
    def test_garbage_specs_raise_naming_the_source(self, spec):
        with pytest.raises(SketchError, match="REPRO_BACKEND_FAULTS"):
            FaultPlan.parse(spec)

    def test_draw_is_deterministic(self):
        a = FaultPlan(chaos_every=10, chaos_seed=3)
        b = FaultPlan(chaos_every=10, chaos_seed=3)
        seq_a = [a.draw(i % 2, "apply") is not None for i in range(100)]
        seq_b = [b.draw(i % 2, "apply") is not None for i in range(100)]
        assert seq_a == seq_b
        assert any(seq_a)

    def test_one_shot_fault_fires_once(self):
        plan = FaultPlan.kill_before(0, nth=2)
        assert plan.draw(0, "query") is None
        assert plan.draw(0, "query") is not None
        assert plan.draw(0, "query") is None
        assert plan.exhausted


class TestFaultSpecEdgeCases:
    """Spec-grammar corners: the error must name the offending token,
    not just the variable, so a bad CI env line is a one-glance fix."""

    @pytest.mark.parametrize("spec", ["", "   ", ";", " ; ;; "])
    def test_empty_and_separator_only_specs_mean_no_plan(self, spec):
        assert FaultPlan.parse(spec) is None

    def test_env_unset_and_env_empty_mean_no_plan(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND_FAULTS", raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv("REPRO_BACKEND_FAULTS", "  ")
        assert FaultPlan.from_env() is None

    def test_unknown_kind_names_the_token(self):
        with pytest.raises(SketchError, match=r"explode") as exc:
            FaultPlan.parse("explode:w=0")
        assert "REPRO_BACKEND_FAULTS" in str(exc.value)

    def test_negative_nth_names_the_token(self):
        with pytest.raises(SketchError, match=r"n='-1'"):
            FaultPlan.parse("kill:w=0:n=-1")

    def test_negative_nth_from_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND_FAULTS", "kill:w=0:n=-3")
        with pytest.raises(SketchError,
                           match=r"REPRO_BACKEND_FAULTS.*n='-3'"):
            FaultPlan.from_env()

    def test_overlapping_per_worker_targets_fire_in_listed_order(self):
        # Two faults aimed at the same worker's same op window are
        # legal; the first-listed entry wins each draw and the second
        # stays armed for the next eligible send.
        plan = FaultPlan.parse("hang:w=0:n=1:s=1;kill:w=0:n=1")
        first = plan.draw(0, "apply")
        assert first is not None and first.kind == "hang"
        second = plan.draw(0, "apply")
        assert second is not None and second.kind == "kill"
        assert plan.exhausted

    def test_overlapping_targets_respect_op_filters(self):
        # Same worker, disjoint op filters: each send consults both but
        # only the matching fault fires, so filters never shadow each
        # other.
        plan = FaultPlan.parse("drop:w=1:op=query;kill:w=1:op=apply")
        fired = plan.draw(1, "apply")
        assert fired is not None and fired.kind == "kill"
        fired = plan.draw(1, "query")
        assert fired is not None and fired.kind == "drop"

    def test_chaos_seed_reuse_replays_identically(self):
        spec = "chaos:kill:every=7:seed=42"
        a, b = FaultPlan.parse(spec), FaultPlan.parse(spec)
        schedule_a = [(w, a.draw(w, "apply") is not None)
                      for i in range(120) for w in (i % 3,)]
        schedule_b = [(w, b.draw(w, "apply") is not None)
                      for i in range(120) for w in (i % 3,)]
        assert schedule_a == schedule_b
        assert any(hit for _, hit in schedule_a)

    def test_chaos_different_seeds_diverge(self):
        a = FaultPlan.parse("chaos:kill:every=5:seed=0")
        b = FaultPlan.parse("chaos:kill:every=5:seed=1")
        sched = lambda p: [p.draw(0, "apply") is not None  # noqa: E731
                           for _ in range(200)]
        assert sched(a) != sched(b)


class TestWorkerKillMatrix:
    """Kill a worker immediately before each routed op; the phase must
    complete bit-identically to the sequential backend after respawn."""

    @pytest.mark.parametrize("op", ["apply", "query", "sample",
                                    "is_zero", "gquery", "gzero",
                                    "gscan"])
    def test_kill_mid_phase_recovers_bit_identically(self, op):
        # gscan rotates single-worker jobs starting at worker 0; every
        # other op fans out over both workers, so worker 1 always has
        # a share to lose.
        victim = 0 if op == "gscan" else 1
        backend = SharedMemoryBackend(
            num_workers=FLEET, call_timeout=30.0,
            faults=FaultPlan.kill_before(victim, nth=1, op=op),
        )
        try:
            seq, shm = _family_pair(backend)
            if op != "apply":
                us, vs = _edge_arrays(40, 60)
                ones = np.ones(60, dtype=np.int64)
                seq.apply_edges_bulk(us, vs, ones)
                shm.apply_edges_bulk(us, vs, ones)
            expected = _drive_op(seq, op)
            actual = _drive_op(shm, op)
            assert expected == actual
            assert np.array_equal(seq.pool.cells, shm.pool.cells)
            assert np.array_equal(seq.pool.row_mass, shm.pool.row_mass)
            assert seq.pool.f_mass == shm.pool.f_mass
            assert backend.usable and backend.degraded is None
            assert backend.health["respawns"] >= 1
            assert backend.health["faults_injected"] == 1
            # The fleet keeps serving after recovery.
            us2, vs2 = _edge_arrays(40, 10, seed=11)
            ones2 = np.ones(10, dtype=np.int64)
            seq.apply_edges_bulk(us2, vs2, ones2)
            shm.apply_edges_bulk(us2, vs2, ones2)
            assert np.array_equal(seq.pool.cells, shm.pool.cells)
        finally:
            backend.close()


class TestOtherFaultKinds:
    def test_hung_worker_times_out_and_recovers(self):
        # The worker sleeps past the call deadline without acking: the
        # dispatch must time out (never hang), kill, respawn, retry.
        backend = SharedMemoryBackend(
            num_workers=FLEET, call_timeout=3.0,
            faults=FaultPlan(faults=[
                Fault("hang", 1, nth=1, op="apply", seconds=60.0)
            ]),
        )
        try:
            seq, shm = _family_pair(backend)
            expected = _drive_op(seq, "apply")
            actual = _drive_op(shm, "apply")
            assert expected == actual is None
            assert np.array_equal(seq.pool.cells, shm.pool.cells)
            assert backend.usable and backend.degraded is None
            assert backend.health["respawns"] >= 1
        finally:
            backend.close()

    def test_short_delay_completes_without_recovery(self):
        backend = SharedMemoryBackend(
            num_workers=FLEET, call_timeout=30.0,
            faults=FaultPlan(faults=[
                Fault("delay", 1, nth=1, op="apply", seconds=0.3)
            ]),
        )
        try:
            seq, shm = _family_pair(backend)
            _drive_op(seq, "apply")
            _drive_op(shm, "apply")
            assert np.array_equal(seq.pool.cells, shm.pool.cells)
            assert backend.health["respawns"] == 0
            assert backend.health["retries"] == 0
        finally:
            backend.close()

    def test_dropped_scatter_ack_is_never_reapplied(self):
        # The worker executes the scatter but swallows the ack.  The
        # status-slot protocol must classify the op as completed --
        # re-applying it would double the deltas and break parity.
        backend = SharedMemoryBackend(
            num_workers=FLEET, call_timeout=3.0,
            faults=FaultPlan(faults=[
                Fault("drop", 1, nth=1, op="apply")
            ]),
        )
        try:
            seq, shm = _family_pair(backend)
            _drive_op(seq, "apply")
            _drive_op(shm, "apply")
            assert np.array_equal(seq.pool.cells, shm.pool.cells)
            assert np.array_equal(seq.pool.row_mass, shm.pool.row_mass)
            assert backend.usable and backend.degraded is None
            # No retry happened: the lost ack was proved complete.
            assert backend.health["retries"] == 0
        finally:
            backend.close()

    def test_truncated_ring_record_desyncs_and_recovers(self):
        backend = SharedMemoryBackend(
            num_workers=FLEET, call_timeout=30.0,
            faults="truncate:w=0:n=1",
        )
        try:
            seq, shm = _family_pair(backend)
            _drive_op(seq, "apply")
            _drive_op(shm, "apply")
            assert np.array_equal(seq.pool.cells, shm.pool.cells)
            assert backend.usable and backend.degraded is None
            assert backend.health["respawns"] >= 1
        finally:
            backend.close()


class TestGracefulDegradation:
    def test_exhausted_retries_degrade_with_identical_answers(self):
        # Worker 1 dies on *every* send: after `retries` respawn/retry
        # cycles the backend must degrade to the in-process cores --
        # same shared cells, bit-identical answers, still usable.
        backend = SharedMemoryBackend(
            num_workers=FLEET, call_timeout=30.0, retries=1,
            backoff=0.01, faults=FaultPlan.kill_always(1),
        )
        try:
            seq, shm = _family_pair(backend)
            us, vs = _edge_arrays(40, 60)
            ones = np.ones(60, dtype=np.int64)
            seq.apply_edges_bulk(us, vs, ones)
            shm.apply_edges_bulk(us, vs, ones)
            assert backend.degraded is not None
            assert backend.usable, "degraded is not broken"
            assert backend.health["degrades"] == 1
            assert "degraded" in backend.describe()
            assert np.array_equal(seq.pool.cells, shm.pool.cells)
            assert np.array_equal(seq.pool.row_mass, shm.pool.row_mass)
            # Every op keeps answering, identically, after degradation.
            for op in ("query", "sample", "is_zero", "gquery", "gzero",
                       "gscan"):
                assert _drive_op(seq, op) == _drive_op(shm, op)
            seq.apply_edges_bulk(us[:9], vs[:9], -ones[:9])
            shm.apply_edges_bulk(us[:9], vs[:9], -ones[:9])
            assert np.array_equal(seq.pool.cells, shm.pool.cells)
        finally:
            backend.close()

    def test_degraded_backend_attaches_new_pools(self):
        backend = SharedMemoryBackend(
            num_workers=FLEET, call_timeout=30.0, retries=0,
            backoff=0.0, faults=FaultPlan.kill_always(0),
        )
        try:
            seq, shm = _family_pair(backend)
            _drive_op(seq, "apply")
            _drive_op(shm, "apply")
            assert backend.degraded is not None
            # A family attached *after* degradation works too.
            seq2, shm2 = _family_pair(backend, seed=13)
            _drive_op(seq2, "apply")
            _drive_op(shm2, "apply")
            assert np.array_equal(seq2.pool.cells, shm2.pool.cells)
            assert _drive_op(seq2, "query") == _drive_op(shm2, "query")
        finally:
            backend.close()
