"""Failure injection and extreme-shape stress tests.

What happens when the w.h.p. guarantees are starved (one sketch
column), when the graph is as small or as pathological as the model
allows, and when capacity budgets are deliberately violated.
"""

import numpy as np
import pytest

from repro.baselines import DynamicConnectivityOracle
from repro.core import MPCConnectivity
from repro.errors import CapacityExceededError, SketchFailureError
from repro.mpc import Cluster, MPCConfig
from repro.mpc.machine import Message
from repro.streams import star_insertions
from repro.types import dele, ins


class TestStarvedSketches:
    def test_single_column_eventually_fails_or_splits_safely(self):
        """With one column, deletion storms must either recover or fall
        back to a conservative split -- never corrupt the forest."""
        n = 48
        total_failures = 0
        for seed in range(6):
            alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=seed),
                                  columns=1)
            oracle = DynamicConnectivityOracle(n)
            rng = np.random.default_rng(seed)
            # Dense cluster, then delete most of a spanning structure.
            edges = [(u, v) for u in range(16) for v in range(u + 1, 16)]
            for i in range(0, len(edges), 10):
                batch = [ins(*e) for e in edges[i:i + 10]]
                alg.apply_batch(batch)
                oracle.apply_batch(batch)
            picks = rng.permutation(len(edges))[:60]
            victims = [edges[i] for i in picks]
            for i in range(0, len(victims), 8):
                batch = [dele(*e) for e in victims[i:i + 8]]
                alg.apply_batch(batch)
                oracle.apply_batch(batch)
                alg.forest.check_invariants()
                # Conservative splits may OVER-split, never under-split:
                assert alg.num_components() >= oracle.num_components()
            total_failures += alg.stats["sketch_failures"]
        assert total_failures > 0, \
            "one column must be starved somewhere in 6 storm runs"

    def test_strict_mode_raises_on_starved_sketch(self):
        n = 32
        raised = False
        for seed in range(8):
            alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=seed),
                                  columns=1, strict=True)
            edges = [(u, v) for u in range(12) for v in range(u + 1, 12)]
            try:
                for i in range(0, len(edges), 12):
                    alg.apply_batch([ins(*e) for e in edges[i:i + 12]])
                for i in range(0, len(edges), 8):
                    alg.apply_batch([dele(*e) for e in edges[i:i + 8]])
            except SketchFailureError:
                raised = True
                break
        assert raised, "strict mode must surface a starved sketch"


class TestExtremeShapes:
    def test_minimal_graph(self):
        alg = MPCConnectivity(MPCConfig(n=2, phi=0.5, seed=0))
        alg.apply_batch([ins(0, 1)])
        assert alg.connected(0, 1)
        alg.apply_batch([dele(0, 1)])
        assert not alg.connected(0, 1)
        assert alg.num_components() == 2

    def test_full_star_lifecycle(self):
        n = 32
        alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=1))
        star = star_insertions(n)
        half = len(star) // 2
        alg.apply_batch(star[:half])
        alg.apply_batch(star[half:])
        assert alg.num_components() == 1
        # Shatter the entire star, then rebuild it reversed.
        spokes = [dele(0, v) for v in range(1, n)]
        alg.apply_batch(spokes[:half])
        alg.apply_batch(spokes[half:])
        assert alg.num_components() == n
        rebuild = [ins(v, 0) for v in range(1, n)]
        alg.apply_batch(rebuild[:half])
        alg.apply_batch(rebuild[half:])
        assert alg.num_components() == 1
        alg.forest.check_invariants()

    def test_repeated_insert_delete_same_edge(self):
        alg = MPCConnectivity(MPCConfig(n=4, phi=0.5, seed=2))
        for _ in range(25):
            alg.apply_batch([ins(0, 1)])
            alg.apply_batch([dele(0, 1)])
        assert not alg.connected(0, 1)
        assert alg.stats["sketch_failures"] == 0

    def test_batch_exactly_at_limit(self):
        config = MPCConfig(n=64, phi=0.5, seed=3)
        alg = MPCConnectivity(config)
        limit = alg.batch_limit
        batch = [ins(i, i + 1) for i in range(min(limit, 63))]
        alg.apply_batch(batch)  # must not raise
        assert alg.num_edges == len(batch)

    def test_two_cliques_bridge_cycling(self):
        """Delete and re-find the only bridge between two cliques; the
        replacement must always be the bridge itself (no other edge
        crosses)."""
        n = 16
        alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=4))
        left = [(u, v) for u in range(8) for v in range(u + 1, 8)]
        right = [(u, v) for u in range(8, 16) for v in range(u + 1, 16)]
        for i in range(0, len(left), 12):
            alg.apply_batch([ins(*e) for e in left[i:i + 12]])
        for i in range(0, len(right), 12):
            alg.apply_batch([ins(*e) for e in right[i:i + 12]])
        assert alg.num_components() == 2
        alg.apply_batch([ins(0, 8)])
        assert alg.num_components() == 1
        alg.apply_batch([dele(0, 8)])
        assert not alg.connected(0, 8)
        assert alg.num_components() == 2
        alg.apply_batch([ins(7, 15)])
        assert alg.connected(0, 15)


class TestCapacityInjection:
    def test_strict_cluster_rejects_oversized_message(self):
        config = MPCConfig(n=16, phi=0.5, seed=0, strict_capacity=True)
        cluster = Cluster(config)
        with pytest.raises(CapacityExceededError) as excinfo:
            cluster.exchange([Message(src=0, dst=1, payload=None,
                                      words=10 ** 6)])
        assert excinfo.value.machine_id in (0, 1)
        assert excinfo.value.used == 10 ** 6

    def test_lenient_cluster_records_everything(self):
        config = MPCConfig(n=16, phi=0.5, seed=0, strict_capacity=False)
        cluster = Cluster(config)
        for _ in range(3):
            cluster.exchange([Message(src=0, dst=1, payload=None,
                                      words=10 ** 6)])
        # Each oversized exchange violates both the send and recv budget.
        assert len(cluster.metrics.violations) == 6

    def test_violations_surface_in_phase_metrics(self):
        config = MPCConfig(n=16, phi=0.5, seed=0, strict_capacity=False)
        cluster = Cluster(config)
        cluster.begin_phase("inject")
        cluster.exchange([Message(src=0, dst=1, payload=None,
                                  words=10 ** 6)])
        snapshot = cluster.end_phase()
        assert snapshot.capacity_violations == 2
