"""AGM graph-sketch tests: the cut-edge sampling property (Lemma 3.5)."""

import numpy as np
import pytest

from repro.sketch import MergedSketch, SketchFamily


def build(n=30, columns=8, seed=4):
    family = SketchFamily(n, columns, np.random.default_rng(seed))
    sketches = {v: family.new_vertex_sketch(v) for v in range(n)}
    return family, sketches


def insert(sketches, u, v):
    sketches[u].apply_edge(u, v, 1)
    sketches[v].apply_edge(u, v, 1)


def delete(sketches, u, v):
    sketches[u].apply_edge(u, v, -1)
    sketches[v].apply_edge(u, v, -1)


class TestVertexSketch:
    def test_non_endpoint_update_rejected(self):
        family, sketches = build()
        with pytest.raises(ValueError):
            sketches[5].apply_edge(1, 2, 1)

    def test_single_vertex_samples_incident_edge(self):
        _, sketches = build()
        insert(sketches, 3, 17)
        merged = MergedSketch.of([sketches[3]])
        assert merged.sample_cut_edge_any() == (3, 17)

    def test_words_per_vertex(self):
        family, sketches = build(columns=6)
        assert sketches[0].words == family.words_per_vertex


class TestMergedSketch:
    def test_internal_edges_cancel(self):
        """Lemma 3.3: X_A's support is exactly the cut E(A, V-A)."""
        _, sketches = build()
        # Component A = {0,1,2,3} fully wired internally, one cut edge.
        for u, v in [(0, 1), (1, 2), (2, 3), (0, 2), (0, 3)]:
            insert(sketches, u, v)
        insert(sketches, 3, 20)
        merged = MergedSketch.of([sketches[v] for v in (0, 1, 2, 3)])
        assert not merged.cut_is_empty()
        assert merged.sample_cut_edge_any() == (3, 20)

    def test_empty_cut_detected(self):
        _, sketches = build()
        for u, v in [(0, 1), (1, 2)]:
            insert(sketches, u, v)
        merged = MergedSketch.of([sketches[v] for v in (0, 1, 2)])
        assert merged.cut_is_empty()
        assert merged.sample_cut_edge_any() is None

    def test_cut_closes_after_deletion(self):
        _, sketches = build()
        insert(sketches, 0, 1)
        insert(sketches, 1, 9)
        merged = MergedSketch.of([sketches[0], sketches[1]])
        assert merged.sample_cut_edge_any() == (1, 9)
        delete(sketches, 1, 9)
        merged = MergedSketch.of([sketches[0], sketches[1]])
        assert merged.cut_is_empty()

    def test_sample_among_multiple_cut_edges(self):
        _, sketches = build(seed=9)
        cut = {(0, 10), (1, 11), (2, 12), (3, 13)}
        for u, v in [(0, 1), (1, 2), (2, 3)]:
            insert(sketches, u, v)
        for u, v in cut:
            insert(sketches, u, v)
        merged = MergedSketch.of([sketches[v] for v in (0, 1, 2, 3)])
        for column in range(6):
            got = merged.sample_cut_edge(column)
            if got is not None:
                assert got in cut

    def test_whole_graph_merge_is_zero(self):
        """Summing every vertex's sketch cancels every edge."""
        _, sketches = build(n=20, seed=2)
        rng = np.random.default_rng(0)
        for _ in range(40):
            u, v = rng.choice(20, size=2, replace=False)
            try:
                insert(sketches, int(u), int(v))
            except Exception:
                pass
        merged = MergedSketch.of(list(sketches.values()))
        assert merged.cut_is_empty()

    def test_mixed_families_rejected(self):
        _, sketches_a = build(seed=1)
        _, sketches_b = build(seed=2)
        with pytest.raises(ValueError):
            MergedSketch.of([sketches_a[0], sketches_b[1]])

    def test_empty_merge_rejected(self):
        with pytest.raises(ValueError):
            MergedSketch.of([])
