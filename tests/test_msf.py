"""Minimum spanning forest tests (Theorem 1.2): exact insertion-only
and (1+eps)-approximate dynamic."""

import networkx as nx
import numpy as np
import pytest

from tests.conftest import make_valid_batch
from repro.baselines import msf_weight
from repro.core import ApproxMSF, ExactMSFInsertOnly
from repro.errors import ConfigurationError, InvalidUpdateError
from repro.mpc import MPCConfig
from repro.types import dele, ins


class TestExactMSF:
    def test_simple_tree(self):
        alg = ExactMSFInsertOnly(MPCConfig(n=4, phi=0.5, seed=0))
        alg.apply_batch([ins(0, 1, 5.0), ins(1, 2, 3.0)])
        assert alg.msf_weight() == 8.0
        sol = alg.query_msf()
        assert sol.edges == [(0, 1), (1, 2)]
        assert sol.weights == [5.0, 3.0]

    def test_cycle_keeps_light_edges(self):
        alg = ExactMSFInsertOnly(MPCConfig(n=3, phi=0.5, seed=0))
        alg.apply_batch([ins(0, 1, 1.0), ins(1, 2, 2.0), ins(0, 2, 9.0)])
        assert alg.msf_weight() == 3.0

    def test_swap_on_lighter_edge(self):
        alg = ExactMSFInsertOnly(MPCConfig(n=3, phi=0.5, seed=0))
        alg.apply_batch([ins(0, 1, 10.0), ins(1, 2, 10.0)])
        alg.apply_batch([ins(0, 2, 1.0)])
        assert alg.msf_weight() == 11.0
        assert (0, 2) in alg.query_msf().edges

    def test_deletions_rejected(self):
        alg = ExactMSFInsertOnly(MPCConfig(n=4, phi=0.5, seed=0))
        alg.apply_batch([ins(0, 1, 1.0)])
        with pytest.raises(InvalidUpdateError):
            alg.apply_batch([dele(0, 1, 1.0)])

    def test_interacting_swaps_one_batch(self):
        """The mixed-cycle counterexample that defeats a single swap
        pass (DESIGN.md deviation D-note): a-b=10 heavy, the batch's two
        light edges force the eviction of an edge that is heaviest on no
        single fundamental cycle."""
        # Vertices: a=0, b=1, c=2, d=3.
        alg = ExactMSFInsertOnly(MPCConfig(n=4, phi=0.5, seed=0))
        alg.apply_batch([ins(1, 2, 5.0),   # f = bc
                         ins(0, 1, 10.0),  # g = ab
                         ins(0, 3, 4.0)])  # m = ad
        alg.apply_batch([ins(0, 2, 2.0),   # e1
                         ins(2, 3, 3.0)])  # e2
        # True MST: {e1=2, e2=3, f=5} = 10.
        assert alg.msf_weight() == 10.0
        assert alg.stats["max_passes"] >= 2

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_networkx_over_random_batches(self, seed):
        rng = np.random.default_rng(seed)
        n = 32
        alg = ExactMSFInsertOnly(MPCConfig(n=n, phi=0.5, seed=seed))
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        live = set()
        for _ in range(15):
            batch = make_valid_batch(rng, n, live, size=6,
                                     delete_fraction=0.0, weighted=True)
            alg.apply_batch(batch)
            for up in batch:
                graph.add_edge(*up.edge, weight=up.weight)
            ref = sum(d["weight"] for _, _, d in
                      nx.minimum_spanning_edges(graph, data=True))
            assert alg.msf_weight() == pytest.approx(ref)
            alg.forest.check_invariants()

    def test_rounds_bounded(self):
        rng = np.random.default_rng(9)
        n = 32
        alg = ExactMSFInsertOnly(MPCConfig(n=n, phi=0.5, seed=1))
        live = set()
        for _ in range(10):
            alg.apply_batch(make_valid_batch(rng, n, live, size=8,
                                             delete_fraction=0.0,
                                             weighted=True))
        assert alg.max_rounds() <= 150  # O(passes / phi), passes small


class TestApproxMSF:
    def test_bad_eps_rejected(self):
        with pytest.raises(ConfigurationError):
            ApproxMSF(MPCConfig(n=8, phi=0.5, seed=0), eps=0.0)

    def test_weight_out_of_range_rejected(self):
        alg = ApproxMSF(MPCConfig(n=8, phi=0.5, seed=0), max_weight=10)
        with pytest.raises(InvalidUpdateError):
            alg.apply_batch([ins(0, 1, 11.0)])

    def test_single_edge_weight_estimate(self):
        alg = ApproxMSF(MPCConfig(n=4, phi=0.5, seed=0), eps=0.25,
                        max_weight=16)
        alg.apply_batch([ins(0, 1, 7.0)])
        est = alg.weight_estimate()
        assert 7.0 - 1e-9 <= est <= 1.25 * 7.0 + 1e-9

    @pytest.mark.parametrize("eps", [0.1, 0.25, 0.5])
    def test_estimate_within_factor(self, eps):
        rng = np.random.default_rng(3)
        n = 24
        alg = ApproxMSF(MPCConfig(n=n, phi=0.5, seed=3), eps=eps,
                        max_weight=64)
        live = set()
        weighted_edges = {}
        for _ in range(10):
            batch = make_valid_batch(rng, n, live, size=5,
                                     delete_fraction=0.2, weighted=True)
            alg.apply_batch(batch)
            for up in batch:
                if up.is_insert:
                    weighted_edges[up.edge] = up.weight
                else:
                    weighted_edges.pop(up.edge, None)
        ref = msf_weight(n, [(u, v, w) for (u, v), w
                             in weighted_edges.items()])
        est = alg.weight_estimate()
        assert ref - 1e-6 <= est <= (1 + eps) * ref + 1e-6

    def test_forest_is_valid_and_near_optimal(self):
        rng = np.random.default_rng(5)
        n = 24
        alg = ApproxMSF(MPCConfig(n=n, phi=0.5, seed=5), eps=0.25,
                        max_weight=64)
        live = set()
        weighted_edges = {}
        for _ in range(8):
            batch = make_valid_batch(rng, n, live, size=6,
                                     delete_fraction=0.25, weighted=True)
            alg.apply_batch(batch)
            for up in batch:
                if up.is_insert:
                    weighted_edges[up.edge] = up.weight
                else:
                    weighted_edges.pop(up.edge, None)
        sol = alg.query_forest()
        # Forest spans exactly like the true graph.
        graph = nx.Graph()
        graph.add_nodes_from(range(n))
        graph.add_edges_from(weighted_edges)
        assert len(sol.edges) == n - nx.number_connected_components(graph)
        assert all(edge in weighted_edges for edge in sol.edges)
        ref = msf_weight(n, [(u, v, w) for (u, v), w
                             in weighted_edges.items()])
        assert sol.total_weight <= 1.25 * ref + 1e-6

    def test_deletion_updates_estimate(self):
        alg = ApproxMSF(MPCConfig(n=4, phi=0.5, seed=0), eps=0.25,
                        max_weight=16)
        alg.apply_batch([ins(0, 1, 2.0), ins(1, 2, 4.0), ins(0, 2, 8.0)])
        before = alg.weight_estimate()
        alg.apply_batch([dele(1, 2, 4.0)])
        after = alg.weight_estimate()
        # MSF weight goes 6 -> 10 (8-edge replaces the 4).
        assert after > before
