"""The real distributed primitives: correctness and the measured-rounds
== closed-form-charge contract that keeps the accountant honest."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpc import (
    Cluster,
    MPCConfig,
    broadcast_value,
    converge_cast,
    distributed_sort,
    distributed_sort_flat,
    gather_to_root,
)


def fresh_cluster(n=64, phi=0.5, machines=None, seed=0):
    return Cluster(MPCConfig(n=n, phi=phi, seed=seed,
                             num_machines=machines))


class TestBroadcast:
    @pytest.mark.parametrize("machines", [1, 2, 7, 33, 130])
    def test_everyone_receives(self, machines):
        cluster = fresh_cluster(machines=machines)
        values = broadcast_value(cluster, "payload")
        assert values == ["payload"] * machines

    @pytest.mark.parametrize("machines", [2, 7, 33, 130])
    def test_measured_rounds_equal_charge(self, machines):
        cluster = fresh_cluster(machines=machines)
        before = cluster.metrics.rounds
        broadcast_value(cluster, 42, words=1)
        measured = cluster.metrics.rounds - before
        charged = cluster.charge_broadcast(words=1)
        assert measured == charged

    def test_nondefault_root(self):
        cluster = fresh_cluster(machines=9)
        values = broadcast_value(cluster, "v", root=4)
        assert values == ["v"] * 9


class TestConvergeCast:
    @pytest.mark.parametrize("machines", [1, 2, 5, 31, 70])
    def test_sum_aggregation(self, machines):
        cluster = fresh_cluster(machines=machines)
        result = converge_cast(cluster, list(range(machines)),
                               lambda a, b: a + b)
        assert result == sum(range(machines))

    @pytest.mark.parametrize("machines", [2, 5, 31, 70])
    def test_measured_rounds_equal_charge(self, machines):
        cluster = fresh_cluster(machines=machines)
        before = cluster.metrics.rounds
        converge_cast(cluster, [1] * machines, lambda a, b: a + b)
        measured = cluster.metrics.rounds - before
        charged = cluster.charge_converge(words=1)
        assert measured == charged

    def test_wrong_arity_rejected(self):
        cluster = fresh_cluster(machines=4)
        with pytest.raises(ValueError):
            converge_cast(cluster, [1, 2], lambda a, b: a + b)

    def test_gather_concatenates_in_machine_order(self):
        cluster = fresh_cluster(machines=6)
        parts = [[i] for i in range(6)]
        gathered = gather_to_root(cluster, parts)
        assert gathered == [0, 1, 2, 3, 4, 5]


class TestDistributedSort:
    @pytest.mark.parametrize("machines", [1, 2, 9, 40])
    def test_sorts_globally(self, machines):
        cluster = fresh_cluster(machines=machines)
        rng = np.random.default_rng(3)
        items = [int(x) for x in rng.integers(0, 10 ** 6, 500)]
        result = distributed_sort_flat(cluster, items)
        assert result == sorted(items)

    def test_respects_key(self):
        cluster = fresh_cluster(machines=8)
        items = [(i % 5, i) for i in range(100)]
        result = distributed_sort_flat(cluster, items,
                                       key=lambda t: (-t[0], t[1]))
        assert result == sorted(items, key=lambda t: (-t[0], t[1]))

    @pytest.mark.parametrize("machines", [2, 9])
    def test_measured_rounds_equal_charge_small_clusters(self, machines):
        """When the splitter vector fits the tree fanout, the one-level
        sample sort achieves exactly the [GSZ11] charge."""
        cluster = fresh_cluster(machines=machines)
        per_machine = [[int(x) for x in
                        np.random.default_rng(m).integers(0, 999, 10)]
                       for m in range(machines)]
        before = cluster.metrics.rounds
        distributed_sort(cluster, per_machine)
        measured = cluster.metrics.rounds - before
        charged = cluster.charge_sort(10 * machines)
        assert measured == charged

    def test_one_level_sort_never_beats_theory(self):
        """On wide clusters the single-level implementation pays extra
        splitter-dissemination rounds; the theoretical charge (which
        models the recursive [GSZ11] construction) is a lower bound."""
        cluster = fresh_cluster(machines=40)
        per_machine = [[int(x) for x in
                        np.random.default_rng(m).integers(0, 999, 20)]
                       for m in range(40)]
        before = cluster.metrics.rounds
        distributed_sort(cluster, per_machine)
        measured = cluster.metrics.rounds - before
        charged = cluster.charge_sort(20 * 40)
        assert measured >= charged

    def test_empty_machines_tolerated(self):
        cluster = fresh_cluster(machines=5)
        per_machine = [[], [3, 1], [], [2], []]
        result = distributed_sort(cluster, per_machine)
        flat = [x for part in result for x in part]
        assert flat == [1, 2, 3]

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(-10 ** 6, 10 ** 6), max_size=200))
    def test_sort_property(self, items):
        cluster = fresh_cluster(machines=7)
        assert distributed_sort_flat(cluster, items) == sorted(items)


class TestCapacityUnderPrimitives:
    def test_no_violations_for_small_payloads(self):
        cluster = fresh_cluster(machines=20)
        broadcast_value(cluster, 1, words=1)
        converge_cast(cluster, [1] * 20, lambda a, b: a + b, words=1)
        assert cluster.metrics.violations == []
