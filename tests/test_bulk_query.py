"""Bulk queries must be bit-identical to the sequential path.

The query-side mirror of ``tests/test_bulk_ingestion.py``: every layer
of the vectorized recovery pipeline -- prefix decoding
(``recover_from_prefix`` via ``RecoveryMatrix.recover_many``), batched
zero tests, stacked sampler queries (``sample_many`` / ``is_zero_many``
/ ``sample_columns``), the vectorized edge decoding, and the
family-level ``query_bulk`` router -- is checked against its scalar
counterpart across random update/delete streams.  Also covers the
query-path papercuts: shape validation in ``sum_of``, LRU hash memos,
scratch-pooled merges, and the AGM column-cursor no-op fix.
"""

import numpy as np
import pytest

from repro.core.connectivity import MPCConnectivity
from repro.errors import SketchError
from repro.mpc.config import MPCConfig
from repro.sketch import (
    L0Sampler,
    LRUMemo,
    MergeScratch,
    MERSENNE_P,
    RecoveryMatrix,
    SamplerRandomness,
    SketchFamily,
    decode_index,
    decode_indices,
)
from repro.types import dele, ins


def churn_sampler(randomness, seed, count=200, cancel=False):
    """A sampler fed a random +-1 stream (optionally fully cancelled)."""
    stream = np.random.default_rng(seed)
    idxs = stream.integers(0, randomness.universe, count).astype(np.int64)
    deltas = stream.choice([-1, 1], count).astype(np.int64)
    sampler = L0Sampler(randomness)
    sampler.update_many(idxs, deltas)
    if cancel:
        sampler.update_many(idxs, -deltas)
    return sampler


class TestRecoverManyEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_recover_many_matches_recover(self, seed, rng):
        rnd = SamplerRandomness(4000, 6, rng)
        sampler = churn_sampler(rnd, seed, count=300)
        cols = np.arange(rnd.columns, dtype=np.int64)
        got = sampler.matrix.recover_many(cols, 4000,
                                          rnd.fingerprint_ok_many)
        expected = [sampler.matrix.recover(c, 4000, rnd.fingerprint_ok)
                    for c in range(rnd.columns)]
        assert [None if g < 0 else int(g) for g in got] == expected

    def test_recover_many_repeated_and_reordered_columns(self, rng):
        rnd = SamplerRandomness(1000, 5, rng)
        sampler = churn_sampler(rnd, 9, count=120)
        cols = np.array([3, 0, 3, 1, 4, 4], dtype=np.int64)
        got = sampler.matrix.recover_many(cols, 1000,
                                          rnd.fingerprint_ok_many)
        expected = [sampler.matrix.recover(int(c), 1000,
                                           rnd.fingerprint_ok)
                    for c in cols]
        assert [None if g < 0 else int(g) for g in got] == expected

    def test_recover_many_empty_is_empty(self, rng):
        rnd = SamplerRandomness(100, 3, rng)
        matrix = RecoveryMatrix(rnd.columns, rnd.levels)
        out = matrix.recover_many(np.empty(0, dtype=np.int64), 100,
                                  rnd.fingerprint_ok_many)
        assert out.shape == (0,)

    @pytest.mark.parametrize("cancel", [False, True])
    def test_column_is_zero_many_matches_scalar(self, cancel, rng):
        rnd = SamplerRandomness(800, 7, rng)
        sampler = churn_sampler(rnd, 5, count=90, cancel=cancel)
        got = sampler.matrix.column_is_zero_many()
        expected = [sampler.matrix.column_is_zero(c)
                    for c in range(rnd.columns)]
        assert [bool(g) for g in got] == expected
        subset = np.array([2, 0, 5], dtype=np.int64)
        got_subset = sampler.matrix.column_is_zero_many(subset)
        assert [bool(g) for g in got_subset] == [expected[2], expected[0],
                                                 expected[5]]

    def test_recovery_after_heavy_churn_renormalization(self, rng):
        """The vectorized decode agrees after limb renormalization."""
        from repro.sketch.sparse_recovery import RENORM_MASS

        rnd = SamplerRandomness(300, 4, rng)
        sampler = L0Sampler(rnd)
        sampler.matrix._f_mass = RENORM_MASS  # force an early renorm
        sampler.update(7, 1)
        cols = np.arange(rnd.columns, dtype=np.int64)
        got = sampler.matrix.recover_many(cols, 300,
                                          rnd.fingerprint_ok_many)
        expected = [sampler.matrix.recover(c, 300, rnd.fingerprint_ok)
                    for c in range(rnd.columns)]
        assert [None if g < 0 else int(g) for g in got] == expected
        assert 7 in [int(g) for g in got if g >= 0]


class TestSamplerBatchQueries:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_sample_many_matches_sample_column(self, seed, rng):
        rnd = SamplerRandomness(2500, 6, rng)
        samplers = [
            churn_sampler(rnd, seed * 31 + i, count=10 + 13 * i,
                          cancel=(i % 4 == 0))
            for i in range(12)
        ]
        for col in range(rnd.columns):
            got = L0Sampler.sample_many(samplers, col)
            expected = [s.sample_column(col) for s in samplers]
            assert ([None if g < 0 else int(g) for g in got]
                    == expected), col

    def test_sample_many_per_sampler_columns(self, rng):
        rnd = SamplerRandomness(900, 5, rng)
        samplers = [churn_sampler(rnd, i, count=40) for i in range(5)]
        cols = np.array([4, 0, 2, 2, 3], dtype=np.int64)
        got = L0Sampler.sample_many(samplers, cols)
        expected = [s.sample_column(int(c))
                    for s, c in zip(samplers, cols)]
        assert [None if g < 0 else int(g) for g in got] == expected

    @pytest.mark.parametrize("seed", [0, 1])
    def test_is_zero_many_matches_is_zero(self, seed, rng):
        rnd = SamplerRandomness(1200, 5, rng)
        samplers = [
            churn_sampler(rnd, seed * 17 + i, count=25,
                          cancel=(i % 2 == 0))
            for i in range(9)
        ]
        got = L0Sampler.is_zero_many(samplers)
        assert [bool(g) for g in got] == [s.is_zero() for s in samplers]

    def test_sample_columns_matches_loop(self, rng):
        rnd = SamplerRandomness(1500, 8, rng)
        sampler = churn_sampler(rnd, 3, count=200)
        cols = np.array([5, 1, 1, 7, 0, 3], dtype=np.int64)
        got = sampler.sample_columns(cols)
        expected = [sampler.sample_column(int(c)) for c in cols]
        assert [None if g < 0 else int(g) for g in got] == expected

    def test_sample_rotation_matches_manual_scan(self, rng):
        rnd = SamplerRandomness(600, 6, rng)
        sampler = churn_sampler(rnd, 21, count=60)
        for start in range(rnd.columns):
            reference = None
            for offset in range(rnd.columns):
                col = (start + offset) % rnd.columns
                found = sampler.sample_column(col)
                if found is not None:
                    reference = found
                    break
            assert sampler.sample(start_column=start) == reference

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_query_many_fuses_zero_and_sample(self, seed, rng):
        rnd = SamplerRandomness(1800, 6, rng)
        samplers = [
            churn_sampler(rnd, seed * 13 + i, count=15 + 9 * i,
                          cancel=(i % 3 == 0))
            for i in range(10)
        ]
        for col in range(rnd.columns):
            zeros, found = L0Sampler.query_many(samplers, col)
            assert [bool(z) for z in zeros] == [s.is_zero()
                                               for s in samplers]
            expected = [None if s.is_zero() else s.sample_column(col)
                        for s in samplers]
            assert [None if f < 0 else int(f) for f in found] == expected

    def test_stacked_cells_pool_fast_paths(self):
        """Pool-backed samplers stack without per-sampler copies."""
        family = SketchFamily(12, columns=4, rng=np.random.default_rng(2))
        sketches = {v: family.new_vertex_sketch(v) for v in range(12)}
        family.apply_edges_bulk(np.array([0, 3], dtype=np.int64),
                                np.array([7, 5], dtype=np.int64),
                                np.ones(2, dtype=np.int64))
        everyone = [sketches[v].sampler for v in range(12)]
        # Identity gather: the stack *is* the pool block (no copy).
        assert L0Sampler._stacked_cells(everyone) is family.pool.cells
        subset = [sketches[v].sampler for v in (5, 0, 7)]
        stacked = L0Sampler._stacked_cells(subset)
        assert np.array_equal(stacked,
                              np.stack([s.matrix.cells for s in subset]))
        # Mixed pool-view / standalone falls back to the generic stack.
        mixed = [sketches[0].sampler, sketches[3].sampler.copy()]
        assert np.array_equal(
            L0Sampler._stacked_cells(mixed),
            np.stack([s.matrix.cells for s in mixed]),
        )
        # Query answers agree across all three stacking strategies.
        for group in (everyone, subset, mixed):
            zeros, found = L0Sampler.query_many(group, 1)
            for s, z, f in zip(group, zeros, found):
                assert bool(z) == s.is_zero()
                expect = None if s.is_zero() else s.sample_column(1)
                assert (None if f < 0 else int(f)) == expect

    def test_batched_queries_reject_empty_and_mixed(self, rng):
        rnd_a = SamplerRandomness(100, 3, rng)
        rnd_b = SamplerRandomness(100, 3, rng)
        with pytest.raises(SketchError):
            L0Sampler.sample_many([], 0)
        with pytest.raises(SketchError):
            L0Sampler.is_zero_many([])
        with pytest.raises(SketchError):
            L0Sampler.query_many([], 0)
        mixed = [L0Sampler(rnd_a), L0Sampler(rnd_b)]
        with pytest.raises(SketchError):
            L0Sampler.sample_many(mixed, 0)
        with pytest.raises(SketchError):
            L0Sampler.is_zero_many(mixed)


class TestDecodeIndicesBulk:
    def test_decode_indices_matches_scalar(self):
        for n in (2, 3, 7, 64, 257):
            total = n * (n - 1) // 2
            idxs = np.arange(total, dtype=np.int64)
            us, vs = decode_indices(n, idxs)
            for idx, u, v in zip(idxs, us, vs):
                assert decode_index(n, int(idx)) == (int(u), int(v))

    def test_decode_indices_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            decode_indices(10, np.array([45], dtype=np.int64))
        with pytest.raises(ValueError):
            decode_indices(10, np.array([-1], dtype=np.int64))

    def test_decode_indices_empty(self):
        us, vs = decode_indices(10, np.empty(0, dtype=np.int64))
        assert us.shape == (0,) and vs.shape == (0,)


class TestFamilyQueryRouter:
    def test_query_bulk_matches_scalar_sampling(self):
        n = 48
        family = SketchFamily(n, columns=6, rng=np.random.default_rng(7))
        sketches = {v: family.new_vertex_sketch(v) for v in range(n)}
        stream = np.random.default_rng(8)
        edges = set()
        while len(edges) < 120:
            u, v = (int(x) for x in stream.integers(0, n, 2))
            if u != v:
                edges.add((min(u, v), max(u, v)))
        edges = sorted(edges)
        us = np.array([u for u, _ in edges], dtype=np.int64)
        vs = np.array([v for _, v in edges], dtype=np.int64)
        family.apply_edges_bulk(us, vs, np.ones(len(edges),
                                                dtype=np.int64))
        samplers = [sketches[v].sampler for v in range(n)]
        for col in (0, 3, 5):
            got = family.query_bulk(samplers, col)
            expected = []
            for s in samplers:
                idx = s.sample_column(col)
                expected.append(None if idx is None
                                else family.decode(idx))
            assert got == expected
        empty = family.cuts_empty_bulk(samplers)
        assert [bool(z) for z in empty] == [s.is_zero() for s in samplers]
        # The fused per-iteration router agrees with its two halves.
        zeros, edges_fused = family.query_iteration_bulk(samplers, 3)
        assert np.array_equal(zeros, empty)
        expected_fused = [
            None if s.is_zero() else
            (None if (idx := s.sample_column(3)) is None
             else family.decode(idx))
            for s in samplers
        ]
        assert edges_fused == expected_fused

    def test_merged_sketch_sample_cut_edges(self):
        from repro.sketch import MergedSketch

        n = 24
        family = SketchFamily(n, columns=5, rng=np.random.default_rng(4))
        sketches = {v: family.new_vertex_sketch(v) for v in range(n)}
        family.apply_edges_bulk(
            np.array([0, 1, 2, 5], dtype=np.int64),
            np.array([9, 9, 3, 6], dtype=np.int64),
            np.ones(4, dtype=np.int64),
        )
        merged = MergedSketch.of([sketches[v] for v in (0, 1, 2, 3)])
        cols = np.arange(family.columns, dtype=np.int64)
        got = merged.sample_cut_edges(cols)
        expected = [merged.sample_cut_edge(int(c)) for c in cols]
        assert got == expected


class TestMergeValidationAndScratch:
    def test_sum_of_mixed_shapes_raises_sketch_error(self):
        with pytest.raises(SketchError):
            RecoveryMatrix.sum_of([RecoveryMatrix(2, 3),
                                   RecoveryMatrix(2, 4)])
        with pytest.raises(SketchError):
            RecoveryMatrix.sum_of([RecoveryMatrix(2, 3),
                                   RecoveryMatrix(3, 3)])

    def test_sum_of_empty_raises_sketch_error(self):
        with pytest.raises(SketchError):
            RecoveryMatrix.sum_of([])
        with pytest.raises(SketchError):
            L0Sampler.merged([])

    def test_sketch_error_is_value_error(self):
        # Backwards compatibility: callers catching ValueError still do.
        assert issubclass(SketchError, ValueError)

    def test_scratch_merge_matches_plain_merge(self, rng):
        rnd = SamplerRandomness(700, 4, rng)
        samplers = [churn_sampler(rnd, i, count=30) for i in range(6)]
        scratch = MergeScratch()
        pooled = L0Sampler.merged(samplers, scratch=scratch)
        plain = L0Sampler.merged(samplers)
        assert np.array_equal(pooled.matrix.cells, plain.matrix.cells)
        assert pooled.sample() == plain.sample()

    def test_scratch_blocks_are_recycled(self, rng):
        rnd = SamplerRandomness(400, 3, rng)
        samplers = [churn_sampler(rnd, i, count=20) for i in range(4)]
        scratch = MergeScratch()
        first = L0Sampler.merged(samplers, scratch=scratch)
        block = first.matrix.cells
        scratch.reset()
        second = L0Sampler.merged(samplers[:2], scratch=scratch)
        # Same physical block, zeroed and refilled -- no new allocation.
        assert second.matrix.cells is block
        assert scratch.pooled == 1
        reference = L0Sampler.merged(samplers[:2])
        assert np.array_equal(second.matrix.cells, reference.matrix.cells)


class TestLRUMemo:
    def test_hot_key_survives_capacity_churn(self):
        memo = LRUMemo(4)
        memo.put("hot", 1)
        for i in range(100):
            memo.get("hot")            # refresh as most-recently-used
            memo.put(i, i)             # churn through capacity
        assert "hot" in memo
        assert memo.get("hot") == 1
        assert len(memo) <= 4

    def test_fifo_would_have_evicted(self):
        # The regression the LRU switch fixes: under FIFO eviction the
        # oldest insertion dies regardless of how recently it was hit.
        memo = LRUMemo(3)
        memo.put("a", 1)
        memo.put("b", 2)
        memo.put("c", 3)
        assert memo.get("a") == 1      # touch: "a" is now most recent
        memo.put("d", 4)               # evicts "b" (LRU), not "a"
        assert "a" in memo and "b" not in memo

    def test_hit_rate_on_repeating_batch(self, rng):
        """A hot working set re-queried through churn keeps hitting."""
        rnd = SamplerRandomness(10**7, 2, rng)
        rnd._zpow_cache = LRUMemo(16)  # small capacity to force churn
        hot = list(range(8))
        cold = iter(range(1000, 10**6))
        for _ in range(50):
            for idx in hot:
                rnd.zpow(idx)
            rnd.zpow(next(cold))       # churn past capacity over time
        cache = rnd._zpow_cache
        # First round misses the 8 hot keys; every later round hits.
        assert cache.hits >= 49 * 8
        hit_rate = cache.hits / (cache.hits + cache.misses)
        assert hit_rate > 0.8
        for idx in hot:
            assert idx in cache

    def test_memo_values_stay_correct_through_eviction(self, rng):
        rnd = SamplerRandomness(10**6, 2, rng)
        rnd._zpow_cache = LRUMemo(4)
        values = {idx: rnd.zpow(idx) for idx in range(64)}
        for idx, expected in values.items():
            assert rnd.zpow(idx) == expected
            assert rnd.zpow(idx) == pow(rnd.z, idx, MERSENNE_P)


class TestAGMCursorAccounting:
    def test_noop_deletion_phase_keeps_cursor(self):
        """A deletion phase whose fragments all have empty cuts must
        not burn a sketch column (the no-op cursor regression)."""
        config = MPCConfig(n=16, phi=0.5, seed=3)
        alg = MPCConnectivity(config)
        alg.apply_batch([ins(0, 1)])
        assert alg._column_cursor == 0
        # Deleting the only edge splits {0, 1}; both fragments have
        # empty cuts, so zero halving iterations run.
        alg.apply_batch([dele(0, 1)])
        assert alg.stats["agm_iterations"] == 0
        assert alg._column_cursor == 0
        # Repeated no-op phases still do not consume randomness.
        for _ in range(3):
            alg.apply_batch([ins(0, 1)])
            alg.apply_batch([dele(0, 1)])
        assert alg._column_cursor == 0

    def test_real_replacement_still_advances_cursor(self):
        config = MPCConfig(n=16, phi=0.5, seed=4)
        alg = MPCConnectivity(config)
        # Triangle: deleting one tree edge forces a halving iteration
        # that recovers the replacement from the surviving cycle edge.
        alg.apply_batch([ins(0, 1), ins(1, 2), ins(0, 2)])
        alg.apply_batch([dele(0, 1)])
        assert alg.connected(0, 1)
        assert alg.stats["agm_iterations"] >= 1
        assert alg._column_cursor == alg.stats["agm_iterations"] \
            % alg.family.columns
