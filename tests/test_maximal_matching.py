"""NO21-substitute batch-dynamic maximal matching tests."""

import numpy as np
import pytest

from repro.core import BatchDynamicMaximalMatching
from repro.errors import ConfigurationError


class TestBasics:
    def test_bad_kappa(self):
        with pytest.raises(ConfigurationError):
            BatchDynamicMaximalMatching(kappa=0)

    def test_rounds_grow_as_kappa_shrinks(self):
        fast = BatchDynamicMaximalMatching(kappa=0.5)
        slow = BatchDynamicMaximalMatching(kappa=1 / 64)
        assert slow.rounds_per_batch > fast.rounds_per_batch

    def test_insert_matches_greedily(self):
        mm = BatchDynamicMaximalMatching()
        mm.apply_batch(inserts=[(0, 1), (2, 3)], deletes=[])
        assert mm.matching_size() == 2
        mm.check_maximal()

    def test_conflicting_inserts(self):
        mm = BatchDynamicMaximalMatching()
        mm.apply_batch(inserts=[(0, 1), (1, 2), (2, 3)], deletes=[])
        mm.check_maximal()
        assert mm.matching_size() in (1, 2)

    def test_delete_unmatched_edge_keeps_matching(self):
        mm = BatchDynamicMaximalMatching()
        mm.apply_batch(inserts=[(0, 1), (1, 2)], deletes=[])
        size = mm.matching_size()
        mm.apply_batch(inserts=[], deletes=[(1, 2)])
        assert mm.matching_size() == size
        mm.check_maximal()

    def test_delete_matched_edge_rematches(self):
        mm = BatchDynamicMaximalMatching()
        # Path 0-1-2-3: matching must become maximal again after the
        # matched middle edge is deleted.
        mm.apply_batch(inserts=[(1, 2)], deletes=[])
        mm.apply_batch(inserts=[(0, 1), (2, 3)], deletes=[])
        assert mm.matching_size() == 1
        mm.apply_batch(inserts=[], deletes=[(1, 2)])
        assert mm.matching_size() == 2
        mm.check_maximal()

    def test_duplicate_and_phantom_updates_ignored(self):
        mm = BatchDynamicMaximalMatching()
        mm.apply_batch(inserts=[(0, 1), (0, 1)], deletes=[(5, 6)])
        assert mm.num_edges == 1
        mm.check_maximal()

    def test_words_track_graph_size(self):
        mm = BatchDynamicMaximalMatching()
        mm.apply_batch(inserts=[(0, 1), (1, 2), (2, 3)], deletes=[])
        assert mm.words >= 2 * 3


class TestRandomizedMaximality:
    @pytest.mark.parametrize("seed", range(5))
    def test_always_maximal(self, seed):
        rng = np.random.default_rng(seed)
        mm = BatchDynamicMaximalMatching()
        live = set()
        for _ in range(40):
            inserts, deletes = [], []
            touched = set()
            for _ in range(int(rng.integers(1, 6))):
                pool = sorted(live - touched)
                if pool and rng.random() < 0.4:
                    edge = pool[int(rng.integers(0, len(pool)))]
                    live.discard(edge)
                    touched.add(edge)
                    deletes.append(edge)
                else:
                    u = int(rng.integers(0, 30))
                    v = int(rng.integers(0, 30))
                    if u == v:
                        continue
                    edge = (min(u, v), max(u, v))
                    if edge not in live and edge not in touched:
                        live.add(edge)
                        touched.add(edge)
                        inserts.append(edge)
            mm.apply_batch(inserts=inserts, deletes=deletes)
            mm.check_maximal()
            assert mm.num_edges == len(live)
