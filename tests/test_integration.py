"""Cross-module integration tests: one evolving graph, every maintained
solution checked against the oracle on the same stream."""

import numpy as np
import pytest

from tests.conftest import make_valid_batch
from repro.baselines import (
    AGMStaticConnectivity,
    DynamicConnectivityOracle,
    FullGraphConnectivity,
    maximum_matching_size,
)
from repro.core import (
    AKLYMatching,
    DynamicBipartiteness,
    MPCConnectivity,
    StreamingConnectivity,
)
from repro.mpc import MPCConfig
from repro.streams import ChurnStream


class TestAllConnectivityVariantsAgree:
    def test_shared_stream(self):
        n = 32
        seeds = MPCConfig(n=n, phi=0.5, seed=42)
        ours = MPCConnectivity(seeds)
        agm = AGMStaticConnectivity(MPCConfig(n=n, phi=0.5, seed=43))
        full = FullGraphConnectivity(MPCConfig(n=n, phi=0.5, seed=44))
        streaming = StreamingConnectivity(n, seed=45)
        oracle = DynamicConnectivityOracle(n)

        stream = ChurnStream(n, seed=7, delete_fraction=0.35,
                             target_edges=2 * n)
        for batch in stream.batches(20, 6):
            ours.apply_batch(batch)
            agm.apply_batch(batch)
            full.apply_batch(batch)
            for up in batch.insertions:
                streaming.insert(up.u, up.v)
            for up in batch.deletions:
                streaming.delete(up.u, up.v)
            oracle.apply_batch(batch)

            expected = oracle.num_components()
            assert ours.num_components() == expected
            assert full.num_components() == expected
            assert streaming.num_components() == expected
        agm_solution, _ = agm.query_with_metrics()
        assert n - len(agm_solution.edges) == oracle.num_components()

    def test_rounds_hierarchy(self):
        """Query rounds: maintained forest O(1) << AGM O(log n)."""
        n = 64
        ours = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=1))
        agm = AGMStaticConnectivity(MPCConfig(n=n, phi=0.5, seed=2))
        stream = ChurnStream(n, seed=3, delete_fraction=0.2)
        for batch in stream.batches(10, 8):
            ours.apply_batch(batch)
            agm.apply_batch(batch)
        _, ours_query = ours.query_with_metrics()
        _, agm_query = agm.query_with_metrics()
        assert ours_query.rounds < agm_query.rounds

    def test_memory_hierarchy(self):
        """Total memory: ours independent of m, full-graph linear.

        The maintained forest saturates at n-1 tree edges, after which
        our footprint is flat while the full-graph baseline keeps
        absorbing every non-tree edge.
        """
        n = 48
        ours = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=1))
        full = FullGraphConnectivity(MPCConfig(n=n, phi=0.5, seed=1))
        rng = np.random.default_rng(0)
        live = set()
        ours_trace, full_trace = [], []
        for _ in range(20):
            batch = make_valid_batch(rng, n, live, size=10,
                                     delete_fraction=0.0)
            ours.apply_batch(batch)
            full.apply_batch(batch)
            ours_trace.append(ours.total_memory_words())
            full_trace.append(full.total_memory_words())
        half = len(ours_trace) // 2
        ours_late_growth = ours_trace[-1] - ours_trace[half]
        full_late_growth = full_trace[-1] - full_trace[half]
        assert ours_late_growth <= 4 * n
        assert full_late_growth > 3 * max(ours_late_growth, 1)


class TestBipartitenessWithMatching:
    def test_bipartite_graph_has_large_matching(self):
        """Sanity across subsystems: an even cycle is bipartite and has
        a perfect matching that AKLY approximates."""
        n = 32
        bip = DynamicBipartiteness(MPCConfig(n=n, phi=0.5, seed=5))
        matcher = AKLYMatching(MPCConfig(n=n, phi=0.5, seed=6), alpha=2.0)
        from repro.streams import even_cycle_insertions
        updates = even_cycle_insertions(n)
        bip.apply_batch(updates[:16])
        bip.apply_batch(updates[16:])
        matcher.apply_batch(updates[:16])
        matcher.apply_batch(updates[16:])
        assert bip.is_bipartite()
        opt = maximum_matching_size(n, [up.edge for up in updates])
        assert opt == n // 2
        assert matcher.matching_size() >= 1


class TestLongRun:
    def test_two_hundred_phases_stay_consistent(self):
        n = 24
        alg = MPCConnectivity(MPCConfig(n=n, phi=0.5, seed=11))
        oracle = DynamicConnectivityOracle(n)
        stream = ChurnStream(n, seed=12, delete_fraction=0.45,
                             target_edges=n)
        for batch in stream.batches(200, 4):
            alg.apply_batch(batch)
            oracle.apply_batch(batch)
        assert alg.num_components() == oracle.num_components()
        assert alg.stats["sketch_failures"] == 0
        alg.forest.check_invariants()
        rounds = alg.rounds_per_phase()
        assert max(rounds) <= 80, "rounds stay constant over a long run"
